//! Property tests for the calendar queue: every pop sequence must be identical to
//! the reference ordered agenda (a `BTreeMap` keyed by `(at, seq)`), including under
//! interleaved pushes, ties broken by `seq`, and schedules derived from real
//! topologies (`ring(64)`, `fat_tree(8)`).

use sdn_netsim::calendar::{CalendarQueue, EventRef};
use sdn_netsim::SimTime;
use sdn_rng::Rng;
use sdn_topology::builders;
use std::collections::BTreeMap;

/// The reference agenda the simulator's ordering contract is defined against: a
/// totally ordered map from `(at, seq)` to the arena slot.
#[derive(Default)]
struct ReferenceAgenda {
    map: BTreeMap<(SimTime, u64), u32>,
}

impl ReferenceAgenda {
    fn push(&mut self, ev: EventRef) {
        let previous = self.map.insert((ev.at, ev.seq), ev.slot);
        assert!(previous.is_none(), "duplicate (at, seq) key in schedule");
    }

    fn pop(&mut self) -> Option<EventRef> {
        let (&(at, seq), &slot) = self.map.iter().next()?;
        self.map.remove(&(at, seq));
        Some(EventRef { at, seq, slot })
    }
}

/// Drives both agendas through the same push/pop script and asserts every popped
/// event matches, field for field.
fn assert_equivalent(schedule: &[EventRef], interleave_pops_every: usize) {
    let mut calendar = CalendarQueue::new();
    let mut reference = ReferenceAgenda::default();
    for (i, &ev) in schedule.iter().enumerate() {
        calendar.push(ev);
        reference.push(ev);
        if interleave_pops_every > 0 && i % interleave_pops_every == interleave_pops_every - 1 {
            assert_eq!(calendar.pop(), reference.pop(), "interleaved pop {i}");
        }
    }
    loop {
        let got = calendar.pop();
        let want = reference.pop();
        assert_eq!(got, want, "drain order diverged");
        if want.is_none() {
            break;
        }
    }
    assert!(calendar.is_empty());
}

#[test]
fn randomized_schedules_match_reference_order() {
    let mut rng = Rng::seed_from_u64(0xCA1E_17DA);
    for case in 0..40u64 {
        let n = 1 + (rng.next_u64() % 800) as usize;
        // Mix the three calendar regimes: same-day bursts, wheel-range spreads, and
        // beyond-horizon outliers (the wheel horizon is ~1.05 simulated seconds).
        let span = match case % 3 {
            0 => 1_000,
            1 => 800_000,
            _ => 20_000_000,
        };
        let schedule: Vec<EventRef> = (0..n)
            .map(|seq| EventRef {
                at: SimTime::from_micros(rng.next_u64() % span),
                seq: seq as u64,
                slot: seq as u32,
            })
            .collect();
        assert_equivalent(&schedule, (case % 5) as usize);
    }
}

#[test]
fn tied_ticks_pop_in_seq_order() {
    // Many events on few distinct ticks: ordering is decided by `seq` alone.
    let mut rng = Rng::seed_from_u64(7);
    let schedule: Vec<EventRef> = (0..500)
        .map(|seq| EventRef {
            at: SimTime::from_micros((rng.next_u64() % 4) * 250),
            seq,
            slot: seq as u32,
        })
        .collect();
    assert_equivalent(&schedule, 0);
    assert_equivalent(&schedule, 3);
}

/// Builds a schedule shaped like the simulator's: for every arc of the topology a
/// burst of deliveries at `base + latency`, plus periodic per-node timers — the
/// actual key distribution the calendar sees during a campaign run.
fn topology_schedule(name: &str, rounds: u64) -> Vec<EventRef> {
    let topology = if name == "ring(64)" {
        builders::ring(64, 3)
    } else {
        builders::by_name(name, 3)
    };
    let mut rng = Rng::seed_from_u64(0xD15C);
    let mut schedule = Vec::new();
    let mut seq = 0u64;
    for round in 0..rounds {
        let base = round * 200_000; // one 200 ms task-delay period per round
        for link in topology.graph.links() {
            let latency = 50 + rng.next_u64() % 500;
            schedule.push(EventRef {
                at: SimTime::from_micros(base + latency),
                seq,
                slot: link.a.index(),
            });
            seq += 1;
        }
        for (i, _) in topology.graph.nodes().enumerate() {
            schedule.push(EventRef {
                at: SimTime::from_micros(base + 200_000 + (i as u64 * 7) % 1_000),
                seq,
                slot: i as u32,
            });
            seq += 1;
        }
    }
    schedule
}

#[test]
fn ring64_derived_schedule_matches_reference_order() {
    let schedule = topology_schedule("ring(64)", 12);
    assert_equivalent(&schedule, 0);
    assert_equivalent(&schedule, 2);
}

#[test]
fn fat_tree8_derived_schedule_matches_reference_order() {
    let schedule = topology_schedule("fat_tree(8)", 6);
    assert_equivalent(&schedule, 0);
    assert_equivalent(&schedule, 4);
}
