//! An indexed calendar queue: the event agenda behind [`crate::sim::Simulator`].
//!
//! The simulator used to order events through a `BinaryHeap` keyed on `(at, seq)`.
//! A binary heap pays `O(log n)` pointer-chasing comparisons on every push and pop;
//! at datacenter sizes (fat_tree(16), jellyfish(1024)) the agenda holds tens of
//! thousands of in-flight deliveries and the heap becomes a measurable fraction of
//! the hot loop. This module applies the FlatGraph trick of PR 4 to *time*: the
//! agenda is a calendar (bucket queue) indexed by the simulated tick, so the common
//! operations are `O(1)` array pushes plus a single sort of each day's small bucket.
//!
//! Layout:
//!
//! - Time is divided into fixed-width **days** of `2^DAY_SHIFT` microseconds.
//! - `near` holds the events of the current day, sorted *descending* by `(at, seq)`
//!   so the next event is popped off the back in `O(1)`.
//! - `wheel` is a ring of `NBUCKETS` unsorted buckets; bucket `d & MASK` holds the
//!   events of day `d` for every `d` in `(cur_day, cur_day + NBUCKETS)`. Each day in
//!   that window maps to a distinct bucket, and a bucket is fully drained into
//!   `near` when its day arrives, so a bucket never mixes two days.
//! - `overflow` holds events beyond the wheel horizon (≈ `NBUCKETS * 2^DAY_SHIFT`
//!   microseconds, about one simulated second at the default geometry), sorted
//!   descending; events migrate into the wheel as the horizon slides past them.
//!
//! Pops are strictly ordered by `(at, seq)` — bit-identical to the reference
//! `BTreeMap`/`BinaryHeap` agenda order, which the property tests in
//! `tests/calendar_order.rs` assert over randomized and topology-derived schedules.
//!
//! The queue stores lightweight [`EventRef`]s (a time, a tie-breaking sequence
//! number, and a slot index into the simulator's event arena); payloads never move
//! through the calendar.

use crate::time::SimTime;

/// Log2 of the day width in microseconds: 256 µs per day.
const DAY_SHIFT: u32 = 8;
/// Number of wheel buckets (must be a power of two): horizon ≈ 1.05 simulated
/// seconds, which covers every control-plane delay in the repo (link latencies in
/// the hundreds of microseconds, detection delays of tens of milliseconds, task
/// timers of hundreds of milliseconds) without touching the overflow list.
const NBUCKETS: usize = 4096;
const MASK: u64 = (NBUCKETS as u64) - 1;

/// A queue entry: the schedule key plus the arena slot holding the event body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventRef {
    /// Scheduled delivery time.
    pub at: SimTime,
    /// Global tie-breaker: events at equal `at` pop in ascending `seq` order.
    pub seq: u64,
    /// Index into the owner's event arena.
    pub slot: u32,
}

impl EventRef {
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }

    fn day(&self) -> u64 {
        self.at.as_micros() >> DAY_SHIFT
    }
}

/// The indexed calendar queue. See the module docs for the layout.
#[derive(Debug)]
pub struct CalendarQueue {
    /// Current day's events, sorted descending by `(at, seq)`; popped off the back.
    near: Vec<EventRef>,
    /// Ring of future days within the horizon; buckets are unsorted.
    wheel: Vec<Vec<EventRef>>,
    /// Number of events currently stored in `wheel` (cheap all-empty test).
    wheel_len: usize,
    /// Events beyond the horizon, sorted descending by `(at, seq)`.
    overflow: Vec<EventRef>,
    /// The day `near` belongs to; every event in the wheel or overflow is later.
    cur_day: u64,
    len: usize,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CalendarQueue {
    /// Creates an empty queue anchored at time zero.
    pub fn new() -> Self {
        CalendarQueue {
            near: Vec::new(),
            wheel: (0..NBUCKETS).map(|_| Vec::new()).collect(),
            wheel_len: 0,
            overflow: Vec::new(),
            cur_day: 0,
            len: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no event is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an event reference.
    ///
    /// Events may carry any time: entries at or before the current day go straight
    /// into the sorted near list (this happens when the clock was advanced past a
    /// quiet stretch by `run_until` and a fault handler then schedules work "now").
    pub fn push(&mut self, ev: EventRef) {
        self.len += 1;
        let day = ev.day();
        if day <= self.cur_day {
            let idx = self.near.partition_point(|e| e.key() > ev.key());
            self.near.insert(idx, ev);
        } else if day - self.cur_day < NBUCKETS as u64 {
            self.wheel[(day & MASK) as usize].push(ev);
            self.wheel_len += 1;
        } else {
            let idx = self.overflow.partition_point(|e| e.key() > ev.key());
            self.overflow.insert(idx, ev);
        }
    }

    /// Removes and returns the earliest event (smallest `(at, seq)`).
    pub fn pop(&mut self) -> Option<EventRef> {
        if self.near.is_empty() {
            self.advance();
        }
        let ev = self.near.pop()?;
        self.len -= 1;
        Some(ev)
    }

    /// The earliest queued event without removing it.
    ///
    /// Takes `&mut self` because peeking may advance the internal day cursor to the
    /// next non-empty bucket; the observable queue content is unchanged.
    pub fn peek(&mut self) -> Option<&EventRef> {
        if self.near.is_empty() {
            self.advance();
        }
        self.near.last()
    }

    /// Moves the day cursor forward until `near` holds the next day's events.
    fn advance(&mut self) {
        debug_assert!(self.near.is_empty());
        if self.len == 0 {
            return;
        }
        while self.near.is_empty() {
            if self.wheel_len == 0 {
                // Everything lives beyond the horizon: jump straight to the day of
                // the earliest overflow event, then re-partition the overflow tail
                // into the freshly positioned wheel window.
                debug_assert!(!self.overflow.is_empty());
                self.cur_day = self.overflow[self.overflow.len() - 1].day();
            } else {
                self.cur_day += 1;
            }
            self.migrate_overflow();
            let bucket = &mut self.wheel[(self.cur_day & MASK) as usize];
            if !bucket.is_empty() {
                self.wheel_len -= bucket.len();
                self.near.append(bucket);
                // Descending sort: pops come off the back in ascending order.
                // Re-sorting also folds in anything `migrate_overflow` put into
                // `near` for this same day.
                self.near
                    .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
            }
        }
    }

    /// Pulls overflow events that the sliding horizon now covers into the wheel
    /// (or straight into `near` when they belong to the current day).
    fn migrate_overflow(&mut self) {
        let horizon = self.cur_day + NBUCKETS as u64;
        while let Some(last) = self.overflow.last() {
            let day = last.day();
            if day >= horizon {
                break;
            }
            let ev = match self.overflow.pop() {
                Some(ev) => ev,
                None => break,
            };
            if day <= self.cur_day {
                // Overflow is sorted descending, so these arrive in ascending
                // order and append to the (empty or ascending-from-back) near
                // list in the right place.
                let idx = self.near.partition_point(|e| e.key() > ev.key());
                self.near.insert(idx, ev);
            } else {
                self.wheel[(day & MASK) as usize].push(ev);
                self.wheel_len += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_micros: u64, seq: u64) -> EventRef {
        EventRef {
            at: SimTime::from_micros(at_micros),
            seq,
            slot: seq as u32,
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(ev(500, 2));
        q.push(ev(100, 1));
        q.push(ev(500, 0));
        q.push(ev(100, 3));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.at.as_micros(), e.seq))
            .collect();
        assert_eq!(order, vec![(100, 1), (100, 3), (500, 0), (500, 2)]);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_cross_the_horizon() {
        let mut q = CalendarQueue::new();
        // Way beyond the wheel horizon (≈ 1.05 s): lands in overflow.
        q.push(ev(3_000_000_000, 0));
        q.push(ev(5, 1));
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.peek().unwrap().seq, 0);
        assert_eq!(q.pop().unwrap().at.as_micros(), 3_000_000_000);
        assert!(q.pop().is_none());
    }

    #[test]
    fn push_behind_cursor_still_pops_first() {
        let mut q = CalendarQueue::new();
        q.push(ev(10_000_000, 0));
        // Peek advances the cursor to the 10 s day...
        assert_eq!(q.peek().unwrap().seq, 0);
        // ...but a later push at an earlier time must still pop first.
        q.push(ev(2_000_000, 1));
        q.push(ev(1_000, 2));
        assert_eq!(q.pop().unwrap().seq, 2);
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 0);
    }

    #[test]
    fn wheel_wraps_across_many_revolutions() {
        let mut q = CalendarQueue::new();
        let mut expect = Vec::new();
        // Spread events over ~8 wheel revolutions with colliding residues.
        for i in 0..2_000u64 {
            let at = (i * 7919) % 8_388_608; // < 2^23 µs ≈ 8.4 s
            q.push(ev(at, i));
            expect.push((SimTime::from_micros(at), i));
        }
        expect.sort();
        let got: Vec<(SimTime, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.at, e.seq))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = CalendarQueue::new();
        let mut clock = 0u64;
        let mut seq = 0u64;
        let mut popped = Vec::new();
        for round in 0..500u64 {
            // Push a burst relative to the current clock, mimicking callbacks.
            for k in 0..3 {
                let at = clock + (round * 37 + k * 251) % 600_000;
                q.push(ev(at, seq));
                seq += 1;
            }
            if let Some(e) = q.pop() {
                assert!(e.at.as_micros() >= clock, "time went backwards");
                clock = e.at.as_micros();
                popped.push((e.at, e.seq));
            }
        }
        while let Some(e) = q.pop() {
            assert!(e.at.as_micros() >= clock);
            clock = e.at.as_micros();
            popped.push((e.at, e.seq));
        }
        let mut sorted = popped.clone();
        sorted.sort();
        assert_eq!(popped, sorted, "pops must come out in (at, seq) order");
        assert_eq!(popped.len(), 1500);
    }
}
