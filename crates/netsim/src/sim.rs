//! The discrete-event simulator that ties topology, links, faults, and nodes together.
//!
//! A [`Simulator`] owns the ground-truth connected topology `Gc`, the operational state
//! of every link and node, the event queue, and the node state machines. The harness in
//! the `renaissance` crate drives it: run for a while, inject faults, check the
//! legitimacy predicate, repeat.
//!
//! # Performance architecture
//!
//! The hot loop is pop-event → run-callback → push-effects, millions of times per
//! campaign cell, so every structure on that path is indexed by dense ids instead of
//! tree-ordered maps:
//!
//! - the agenda is a [`CalendarQueue`] (bucket queue over the simulated tick) holding
//!   lightweight [`EventRef`]s, not a `BinaryHeap` of whole events;
//! - event bodies live in a slab (`slots` + LIFO free list) so pushing and popping
//!   never moves payloads;
//! - deliveries on the same link at the same tick are batched into one contiguous
//!   buffer drawn from a per-run pool, so a controller's fan-out of command batches
//!   costs one agenda entry per (link, tick) instead of one per message, and a
//!   payload is only cloned when the medium duplicates it;
//! - node state machines, fail/start flags, and observed neighborhoods are dense
//!   `Vec`s indexed by the `u32` inside [`NodeId`] — the hot loop never touches a
//!   `NodeId`-keyed map.
//!
//! All of this is bit-identity-preserving: events still pop in exactly `(at, seq)`
//! order, every delivered message still draws the same RNG values in the same order,
//! and the metrics counters advance in the same sequence as the unbatched reference
//! semantics (the property tests in `tests/calendar_order.rs` and the BENCH baselines
//! both pin this down).

use crate::calendar::{CalendarQueue, EventRef};
use crate::link::{BurstState, LinkConfig, LinkStatus, TransmissionOutcome};
use crate::metrics::NetworkMetrics;
use crate::node::{Context, Node, Payload, TimerId};
use crate::time::{SimDuration, SimTime};
use sdn_rng::Rng;
use sdn_topology::ids::Link;
use sdn_topology::{Graph, NodeId};
use std::collections::BTreeMap;

/// One message scheduled inside a batched delivery event.
#[derive(Debug)]
struct BatchedMsg<M> {
    msg: M,
    bytes: usize,
    duplicate: bool,
}

/// Internal event kinds, stored out-of-line in the event slab.
#[derive(Debug)]
enum EventKind<M> {
    /// Every message crossing the link `from -> to` at one tick, in send order.
    Deliver {
        from: NodeId,
        to: NodeId,
        batch: Vec<BatchedMsg<M>>,
    },
    Timer {
        node: NodeId,
        timer: TimerId,
    },
    RefreshObservations,
}

/// Configuration of a [`Simulator`].
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Link behaviour applied to every link unless overridden per link.
    pub default_link: LinkConfig,
    /// How long after a link/node failure (or repair) the neighbors' local topology
    /// discovery notices it. Models the paper's Theta failure detector threshold.
    pub detection_delay: SimDuration,
    /// Seed for all randomness (losses, jitter, per-callback random values).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            default_link: LinkConfig::default(),
            detection_delay: SimDuration::from_millis(50),
            seed: 0xC0FFEE,
        }
    }
}

/// A deterministic discrete-event network simulator.
///
/// Type parameters: `M` is the message type exchanged by nodes, `N` is the node state
/// machine type (usually an enum over controller / switch / host).
///
/// # Example
///
/// ```
/// use sdn_netsim::{SimConfig, Simulator};
/// use sdn_netsim::node::{Context, Node, TimerId};
/// use sdn_netsim::time::{SimDuration, SimTime};
/// use sdn_topology::{Graph, NodeId};
///
/// /// A node that forwards every received number to all its neighbors once.
/// struct Gossip { seen: bool }
/// impl Node<u64> for Gossip {
///     fn on_start(&mut self, ctx: &mut Context<u64>) {
///         if ctx.id() == NodeId::new(0) {
///             ctx.broadcast(1);
///         }
///     }
///     fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Context<u64>) {
///         if !self.seen {
///             self.seen = true;
///             ctx.broadcast(msg + 1);
///         }
///     }
/// }
///
/// let g = Graph::from_links([(NodeId::new(0), NodeId::new(1)), (NodeId::new(1), NodeId::new(2))]);
/// let mut sim = Simulator::new(&g, SimConfig::default());
/// for n in g.nodes() { sim.add_node(n, Gossip { seen: false }); }
/// sim.start();
/// sim.run_until(SimTime::from_secs(1));
/// assert!(sim.node(NodeId::new(2)).unwrap().seen);
/// ```
pub struct Simulator<M: Payload, N: Node<M>> {
    now: SimTime,
    seq: u64,
    /// The agenda: `(at, seq)`-ordered references into the event slab.
    events: CalendarQueue,
    /// Event slab: bodies stay put while their references travel the calendar.
    slots: Vec<Option<EventKind<M>>>,
    /// Free slab slots, reused LIFO (deterministic).
    free: Vec<u32>,
    /// Recycled batch buffers for delivery events.
    batch_pool: Vec<Vec<BatchedMsg<M>>>,
    /// The most recent open delivery batch: `(at, from, to, slot)`. A push that
    /// matches it appends to that batch; any other push or any pop closes it,
    /// which keeps batched messages contiguous in the original `(at, seq)` order.
    open_batch: Option<(SimTime, NodeId, NodeId, u32)>,
    /// Node state machines, dense by `NodeId` index; `None` = not registered.
    nodes: Vec<Option<N>>,
    started: Vec<bool>,
    failed: Vec<bool>,
    topology: Graph,
    /// The operational topology `Go`, maintained incrementally under every
    /// link/node status transition instead of being rebuilt per query.
    operational: Graph,
    /// Bumped whenever `Go` or the observed neighborhoods actually change;
    /// stable across no-op events. Consumers key caches on this.
    generation: u64,
    /// Total events processed by [`Simulator::step`] — the throughput numerator.
    /// Batched deliveries count one per message, like the unbatched reference.
    events_processed: u64,
    link_status: BTreeMap<Link, LinkStatus>,
    link_overrides: BTreeMap<Link, LinkConfig>,
    /// Per-direction link overrides; take precedence over the undirected map, so a
    /// gray link can drop packets one way while staying clean the other way.
    directed_overrides: BTreeMap<(NodeId, NodeId), LinkConfig>,
    /// Gilbert–Elliott state and dedicated RNG stream per burst-configured link
    /// direction. Seeded from `(config.seed, from, to, epoch)` when the override is
    /// installed, so a link's loss pattern is independent of global interleaving.
    burst_states: BTreeMap<(NodeId, NodeId), BurstState>,
    /// Bumped on every link-config change; mixed into burst-stream seeds so a link
    /// degraded, restored, and degraded again sees a fresh loss pattern.
    link_config_epoch: u64,
    /// Count of link-config calls that named a link absent from `Gc`.
    link_config_warnings: u64,
    /// Observed neighborhoods, dense by `NodeId` index; `observed_present`
    /// distinguishes "observes nothing" from "not a topology node".
    observed: Vec<Vec<NodeId>>,
    observed_present: Vec<bool>,
    /// Double buffer for [`Simulator::refresh_observations`].
    observed_scratch: Vec<Vec<NodeId>>,
    scratch_present: Vec<bool>,
    /// Reusable effect buffers lent to callbacks through [`Context`].
    outbox_buf: Vec<(NodeId, M)>,
    timers_buf: Vec<(SimDuration, TimerId)>,
    config: SimConfig,
    rng: Rng,
    metrics: NetworkMetrics,
}

impl<M: Payload, N: Node<M>> Simulator<M, N> {
    /// Creates a simulator over the connected topology `Gc`.
    pub fn new(topology: &Graph, config: SimConfig) -> Self {
        let rng = Rng::seed_from_u64(config.seed);
        let mut sim = Simulator {
            now: SimTime::ZERO,
            seq: 0,
            events: CalendarQueue::new(),
            slots: Vec::new(),
            free: Vec::new(),
            batch_pool: Vec::new(),
            open_batch: None,
            nodes: Vec::new(),
            started: Vec::new(),
            failed: Vec::new(),
            topology: topology.clone(),
            operational: topology.clone(),
            generation: 0,
            events_processed: 0,
            link_status: BTreeMap::new(),
            link_overrides: BTreeMap::new(),
            directed_overrides: BTreeMap::new(),
            burst_states: BTreeMap::new(),
            link_config_epoch: 0,
            link_config_warnings: 0,
            observed: Vec::new(),
            observed_present: Vec::new(),
            observed_scratch: Vec::new(),
            scratch_present: Vec::new(),
            outbox_buf: Vec::new(),
            timers_buf: Vec::new(),
            config,
            rng,
            metrics: NetworkMetrics::default(),
        };
        sim.refresh_observations();
        sim
    }

    /// Grows the dense per-node vectors to cover index `i`.
    fn grow_node_tables(&mut self, i: usize) {
        if self.nodes.len() <= i {
            self.nodes.resize_with(i + 1, || None);
            self.started.resize(i + 1, false);
            self.failed.resize(i + 1, false);
        }
        if self.observed.len() <= i {
            self.observed.resize_with(i + 1, Vec::new);
            self.observed_present.resize(i + 1, false);
            self.observed_scratch.resize_with(i + 1, Vec::new);
            self.scratch_present.resize(i + 1, false);
        }
    }

    fn has_state_machine(&self, id: NodeId) -> bool {
        self.nodes
            .get(id.as_usize())
            .is_some_and(|slot| slot.is_some())
    }

    /// Registers the state machine for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of the topology or already has a state machine.
    pub fn add_node(&mut self, id: NodeId, node: N) {
        assert!(
            self.topology.contains_node(id),
            "node {id} is not part of the topology"
        );
        let i = id.as_usize();
        self.grow_node_tables(i);
        assert!(self.nodes[i].is_none(), "node {id} registered twice");
        self.nodes[i] = Some(node);
    }

    /// Calls [`Node::on_start`] on every registered node that has not started yet.
    pub fn start(&mut self) {
        for i in 0..self.nodes.len() {
            if self.nodes[i].is_some() && !self.started[i] {
                self.started[i] = true;
                // The dense index always fits: nodes are registered through NodeId.
                self.run_callback(NodeId::new(i as u32), |node, ctx| node.on_start(ctx));
            }
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The ground-truth connected topology `Gc` (permanently removed links/nodes absent).
    pub fn topology(&self) -> &Graph {
        &self.topology
    }

    /// The operational topology `Go`: `Gc` minus temporarily failed links and
    /// fail-stopped nodes.
    ///
    /// Maintained incrementally under status transitions — this accessor is O(1),
    /// not a rebuild. [`Simulator::rebuild_operational_graph`] is the from-scratch
    /// reference implementation the incremental graph is tested against.
    pub fn operational_graph(&self) -> &Graph {
        &self.operational
    }

    /// Rebuilds `Go` from scratch out of `Gc`, the link statuses, and the failed
    /// node set. Reference implementation for tests and benches; always equal to
    /// [`Simulator::operational_graph`].
    pub fn rebuild_operational_graph(&self) -> Graph {
        let mut g = Graph::new();
        for node in self.topology.nodes() {
            if !self.is_node_failed(node) {
                g.add_node(node);
            }
        }
        for link in self.topology.links() {
            if self.link_is_operational(link.a, link.b) {
                g.add_link(link.a, link.b);
            }
        }
        g
    }

    /// A counter that bumps exactly when the operational topology `Go` or the
    /// observed neighborhoods change, and stays stable across no-op events
    /// (failing an already-failed link, reviving a live node, ...). Consumers
    /// use it to dirty-track anything derived from the operational topology.
    pub fn topology_generation(&self) -> u64 {
        self.generation
    }

    /// Total number of events processed so far — deliveries, timers, and
    /// observation refreshes. The numerator of the `events_per_sec` throughput
    /// metric the bench campaign reports.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Immutable access to a node's state machine.
    pub fn node(&self, id: NodeId) -> Option<&N> {
        self.nodes.get(id.as_usize()).and_then(Option::as_ref)
    }

    /// Mutable access to a node's state machine — this is how the harness injects
    /// *transient state corruption* (the paper's rare transient faults).
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut N> {
        self.nodes.get_mut(id.as_usize()).and_then(Option::as_mut)
    }

    /// Iterates over all registered nodes in ascending identifier order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|n| (NodeId::new(i as u32), n)))
    }

    /// The network-wide message metrics.
    pub fn metrics(&self) -> &NetworkMetrics {
        &self.metrics
    }

    /// Resets the message metrics (e.g. at the start of a measured experiment phase).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    /// Returns `true` when `id` has fail-stopped.
    pub fn is_node_failed(&self, id: NodeId) -> bool {
        self.failed.get(id.as_usize()).copied().unwrap_or(false)
    }

    /// Returns `true` when the link exists in `Gc`, is administratively up, and both
    /// endpoints are alive.
    pub fn link_is_operational(&self, a: NodeId, b: NodeId) -> bool {
        if !self.topology.has_link(a, b) {
            return false;
        }
        if self.is_node_failed(a) || self.is_node_failed(b) {
            return false;
        }
        self.link_status
            .get(&Link::new(a, b))
            .copied()
            .unwrap_or(LinkStatus::Up)
            .is_operational()
    }

    /// The neighbors node `id` currently *observes* through local topology discovery.
    pub fn observed_neighbors(&self, id: NodeId) -> Vec<NodeId> {
        self.observed(id).to_vec()
    }

    /// Borrowed view of the observed neighborhood — the allocation-free variant of
    /// [`Simulator::observed_neighbors`].
    pub fn observed(&self, id: NodeId) -> &[NodeId] {
        let i = id.as_usize();
        if self.observed_present.get(i).copied().unwrap_or(false) {
            &self.observed[i]
        } else {
            &[]
        }
    }

    /// Overrides the link behaviour of one specific link, symmetrically: both
    /// directions get `config`, and any per-direction overrides for the pair are
    /// cleared so the last call wins. Burst-configured overrides (re)seed the
    /// per-direction RNG streams.
    ///
    /// Returns `true` when the link exists in `Gc`. A call naming a nonexistent
    /// link still installs the override (it applies if the link is added later)
    /// but is counted in [`Simulator::link_config_warnings`].
    pub fn set_link_config(&mut self, a: NodeId, b: NodeId, config: LinkConfig) -> bool {
        self.link_config_epoch += 1;
        self.directed_overrides.remove(&(a, b));
        self.directed_overrides.remove(&(b, a));
        self.link_overrides.insert(Link::new(a, b), config);
        self.reseed_burst(a, b, &config);
        self.reseed_burst(b, a, &config);
        self.note_link_known(a, b)
    }

    /// Overrides the link behaviour of one *direction* only (`from -> to`);
    /// takes precedence over the undirected override and the default. This is the
    /// asymmetric gray-failure primitive: degrade one direction, leave the other
    /// clean. Returns `true` when the link exists in `Gc` (see
    /// [`Simulator::set_link_config`] for the nonexistent-link contract).
    pub fn set_link_config_directed(
        &mut self,
        from: NodeId,
        to: NodeId,
        config: LinkConfig,
    ) -> bool {
        self.link_config_epoch += 1;
        self.directed_overrides.insert((from, to), config);
        self.reseed_burst(from, to, &config);
        self.note_link_known(from, to)
    }

    /// Removes every override (undirected and both directions) for the pair,
    /// returning the link to the default behaviour. Returns `true` when at least
    /// one override was removed.
    pub fn clear_link_config(&mut self, a: NodeId, b: NodeId) -> bool {
        self.link_config_epoch += 1;
        let mut removed = self.link_overrides.remove(&Link::new(a, b)).is_some();
        removed |= self.directed_overrides.remove(&(a, b)).is_some();
        removed |= self.directed_overrides.remove(&(b, a)).is_some();
        self.burst_states.remove(&(a, b));
        self.burst_states.remove(&(b, a));
        removed
    }

    /// How many link-config calls named a link absent from `Gc` so far.
    pub fn link_config_warnings(&self) -> u64 {
        self.link_config_warnings
    }

    fn note_link_known(&mut self, a: NodeId, b: NodeId) -> bool {
        let known = self.topology.has_link(a, b);
        if !known {
            self.link_config_warnings += 1;
        }
        known
    }

    /// Installs or removes the burst stream for one direction to match `config`.
    fn reseed_burst(&mut self, from: NodeId, to: NodeId, config: &LinkConfig) {
        if config.burst.is_some() {
            let seed = burst_stream_seed(self.config.seed, from, to, self.link_config_epoch);
            self.burst_states.insert((from, to), BurstState::new(seed));
        } else {
            self.burst_states.remove(&(from, to));
        }
    }

    /// Replaces the default link behaviour applied to links without an override.
    pub fn set_default_link_config(&mut self, config: LinkConfig) {
        self.config.default_link = config;
    }

    /// The default link behaviour applied to links without an override.
    pub fn default_link_config(&self) -> LinkConfig {
        self.config.default_link
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Marks a link as temporarily failed (still part of `Gc`). Packets in flight keep
    /// their original delivery schedule; new packets are dropped.
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) {
        self.link_status.insert(Link::new(a, b), LinkStatus::Down);
        self.sync_operational_link(a, b);
        self.schedule_observation_refresh();
    }

    /// Restores a temporarily failed link.
    pub fn restore_link(&mut self, a: NodeId, b: NodeId) {
        self.link_status.insert(Link::new(a, b), LinkStatus::Up);
        self.sync_operational_link(a, b);
        self.schedule_observation_refresh();
    }

    /// Permanently removes a link from `Gc` (the paper's permanent link failure).
    pub fn remove_link(&mut self, a: NodeId, b: NodeId) -> bool {
        let existed = self.topology.remove_link(a, b);
        self.link_status.remove(&Link::new(a, b));
        self.sync_operational_link(a, b);
        self.schedule_observation_refresh();
        existed
    }

    /// Adds a (new) link to `Gc`.
    pub fn add_link(&mut self, a: NodeId, b: NodeId) {
        self.topology.add_link(a, b);
        self.link_status.insert(Link::new(a, b), LinkStatus::Up);
        // `Gc` may have gained brand-new endpoints; live ones join `Go` too.
        for node in [a, b] {
            self.grow_node_tables(node.as_usize());
            if !self.is_node_failed(node) && !self.operational.contains_node(node) {
                self.operational.add_node(node);
                self.generation += 1;
            }
        }
        self.sync_operational_link(a, b);
        self.schedule_observation_refresh();
    }

    /// Fail-stops a node: it no longer receives messages or timer callbacks, and its
    /// links become non-operational.
    pub fn fail_node(&mut self, id: NodeId) {
        let i = id.as_usize();
        self.grow_node_tables(i);
        let newly_failed = !self.failed[i];
        self.failed[i] = true;
        if newly_failed && self.operational.remove_node(id) {
            self.generation += 1;
        }
        self.schedule_observation_refresh();
    }

    /// Revives a previously fail-stopped node (its state machine is kept as-is; callers
    /// that want a fresh node should replace it via [`Simulator::replace_node`]).
    pub fn revive_node(&mut self, id: NodeId) {
        let i = id.as_usize();
        let was_failed = self.failed.get(i).copied().unwrap_or(false);
        if was_failed {
            self.failed[i] = false;
        }
        if was_failed && self.topology.contains_node(id) {
            self.operational.add_node(id);
            let peers: Vec<NodeId> = self.topology.neighbors(id).collect();
            for peer in peers {
                if self.link_is_operational(id, peer) {
                    self.operational.add_link(id, peer);
                }
            }
            self.generation += 1;
        }
        self.schedule_observation_refresh();
    }

    /// Replaces the state machine of `id` (e.g. reviving a controller with empty state),
    /// returning the previous one if it existed.
    ///
    /// Bumps the generation: a fresh state machine invalidates anything cached about
    /// the node even though `Go` itself is unchanged.
    pub fn replace_node(&mut self, id: NodeId, node: N) -> Option<N> {
        let i = id.as_usize();
        self.grow_node_tables(i);
        let prev = self.nodes[i].replace(node);
        self.started[i] = false;
        self.generation += 1;
        prev
    }

    /// Adds a brand new node to the topology together with its links and state machine.
    pub fn add_node_with_links(&mut self, id: NodeId, links: &[NodeId], node: N) {
        self.topology.add_node(id);
        self.grow_node_tables(id.as_usize());
        if !self.is_node_failed(id) && !self.operational.contains_node(id) {
            self.operational.add_node(id);
            self.generation += 1;
        }
        for &peer in links {
            self.topology.add_link(id, peer);
            self.grow_node_tables(peer.as_usize());
            if !self.is_node_failed(peer) && !self.operational.contains_node(peer) {
                self.operational.add_node(peer);
                self.generation += 1;
            }
            self.sync_operational_link(id, peer);
        }
        self.add_node(id, node);
        self.schedule_observation_refresh();
    }

    /// Permanently removes a node and its links from the simulation.
    pub fn remove_node(&mut self, id: NodeId) {
        self.topology.remove_node(id);
        if self.operational.remove_node(id) {
            self.generation += 1;
        }
        let i = id.as_usize();
        if i < self.nodes.len() {
            self.nodes[i] = None;
            self.failed[i] = false;
            self.started[i] = false;
        }
        self.schedule_observation_refresh();
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Returns `true` while the event queue is non-empty.
    pub fn has_pending_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Processes a single event, if any, and returns `true` if one was processed.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.events.pop() else {
            return false;
        };
        // Popping closes the open batch: nothing may append to an event that is
        // being (or has been) delivered.
        self.open_batch = None;
        debug_assert!(ev.at >= self.now, "event from the past");
        self.now = ev.at.max(self.now);
        let Some(kind) = self.slots.get_mut(ev.slot as usize).and_then(Option::take) else {
            debug_assert!(false, "event reference to a vacant slot");
            return true;
        };
        self.free.push(ev.slot);
        match kind {
            EventKind::Deliver {
                from,
                to,
                mut batch,
            } => {
                for entry in batch.drain(..) {
                    self.events_processed += 1;
                    // The destination must still be alive; links that failed while
                    // the packet was in flight do not retroactively destroy it.
                    if self.is_node_failed(to) || !self.has_state_machine(to) {
                        // The in-flight message is lost: charged to its sender.
                        self.metrics.record_undeliverable(from);
                        continue;
                    }
                    self.metrics.record_delivery(to, entry.bytes);
                    if entry.duplicate {
                        self.metrics.record_duplicate(to);
                    }
                    let msg = entry.msg;
                    self.run_callback(to, |node, ctx| node.on_message(from, msg, ctx));
                }
                self.batch_pool.push(batch);
            }
            EventKind::Timer { node, timer } => {
                self.events_processed += 1;
                if self.is_node_failed(node) || !self.has_state_machine(node) {
                    return true;
                }
                self.run_callback(node, |n, ctx| n.on_timer(timer, ctx));
            }
            EventKind::RefreshObservations => {
                self.events_processed += 1;
                self.refresh_observations();
            }
        }
        true
    }

    /// Runs until the simulated clock reaches `deadline` (events scheduled after the
    /// deadline stay queued) and sets the clock to exactly `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(ev) = self.events.peek() {
            if ev.at > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `duration` of simulated time.
    pub fn run_for(&mut self, duration: SimDuration) {
        let deadline = self.now + duration;
        self.run_until(deadline);
    }

    /// Runs until the event queue drains or the clock would pass `max_time`.
    /// Returns `true` if the queue drained.
    pub fn run_until_idle(&mut self, max_time: SimTime) -> bool {
        loop {
            match self.events.peek() {
                None => return true,
                Some(ev) if ev.at > max_time => return false,
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn alloc_slot(&mut self, kind: EventKind<M>) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = Some(kind);
            slot
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Some(kind));
            slot
        }
    }

    /// Pushes a non-delivery event; closes any open delivery batch so batched
    /// messages stay contiguous in the global `(at, seq)` order.
    fn push_event(&mut self, at: SimTime, kind: EventKind<M>) {
        self.open_batch = None;
        let slot = self.alloc_slot(kind);
        let seq = self.seq;
        self.seq += 1;
        self.events.push(EventRef { at, seq, slot });
    }

    /// Schedules one message for delivery, merging it into the open batch when it
    /// targets the same link at the same tick.
    ///
    /// Merged messages do not consume a sequence number; because the open batch is
    /// closed by any non-matching push and by any pop, the messages of one batch
    /// correspond to a gap-free run of the reference (unbatched) event order, so
    /// delivering them back-to-back is bit-identical to the old agenda.
    fn push_deliver(&mut self, at: SimTime, from: NodeId, to: NodeId, entry: BatchedMsg<M>) {
        if let Some((bat, bfrom, bto, slot)) = self.open_batch {
            if bat == at && bfrom == from && bto == to {
                if let Some(EventKind::Deliver { batch, .. }) =
                    self.slots.get_mut(slot as usize).and_then(Option::as_mut)
                {
                    batch.push(entry);
                    return;
                }
            }
        }
        let mut batch = self.batch_pool.pop().unwrap_or_default();
        batch.push(entry);
        let slot = self.alloc_slot(EventKind::Deliver { from, to, batch });
        let seq = self.seq;
        self.seq += 1;
        self.events.push(EventRef { at, seq, slot });
        self.open_batch = Some((at, from, to, slot));
    }

    /// Re-derives the operational status of the link `(a, b)` and applies the delta
    /// to the incrementally maintained `Go`, bumping the generation if it changed.
    fn sync_operational_link(&mut self, a: NodeId, b: NodeId) {
        let changed = if self.link_is_operational(a, b) {
            // Both endpoints are alive (otherwise the link is not operational), so
            // they are already nodes of `Go` and this adds only the edge.
            self.operational.add_link(a, b)
        } else {
            self.operational.remove_link(a, b)
        };
        if changed {
            self.generation += 1;
        }
    }

    fn schedule_observation_refresh(&mut self) {
        if self.config.detection_delay.is_zero() {
            self.refresh_observations();
        } else {
            let at = self.now + self.config.detection_delay;
            self.push_event(at, EventKind::RefreshObservations);
        }
    }

    fn refresh_observations(&mut self) {
        // Build the new neighborhoods into the scratch double buffer (reusing its
        // allocations), then swap only if anything actually changed: a refresh that
        // observes nothing new (e.g. scheduled by a no-op fault) must not
        // invalidate caches keyed on the generation.
        let mut scratch = std::mem::take(&mut self.observed_scratch);
        let mut scratch_present = std::mem::take(&mut self.scratch_present);
        scratch_present.iter_mut().for_each(|p| *p = false);
        let mut changed = false;
        for node in self.topology.nodes() {
            let i = node.as_usize();
            if scratch.len() <= i {
                scratch.resize_with(i + 1, Vec::new);
                scratch_present.resize(i + 1, false);
            }
            let buf = &mut scratch[i];
            buf.clear();
            buf.extend(
                self.topology
                    .neighbors(node)
                    .filter(|&peer| self.link_is_operational(node, peer)),
            );
            scratch_present[i] = true;
            if !self.observed_present.get(i).copied().unwrap_or(false) || self.observed[i] != *buf {
                changed = true;
            }
        }
        if !changed {
            // A node that vanished from the topology is also a change.
            changed = self
                .observed_present
                .iter()
                .enumerate()
                .any(|(i, &present)| present && !scratch_present.get(i).copied().unwrap_or(false));
        }
        if changed {
            if self.observed.len() < scratch.len() {
                self.observed.resize_with(scratch.len(), Vec::new);
                self.observed_present.resize(scratch_present.len(), false);
            }
            std::mem::swap(&mut self.observed, &mut scratch);
            std::mem::swap(&mut self.observed_present, &mut scratch_present);
            self.generation += 1;
        }
        self.observed_scratch = scratch;
        self.scratch_present = scratch_present;
    }

    fn link_config(&self, a: NodeId, b: NodeId) -> LinkConfig {
        if let Some(cfg) = self.directed_overrides.get(&(a, b)) {
            return *cfg;
        }
        self.link_overrides
            .get(&Link::new(a, b))
            .copied()
            .unwrap_or(self.config.default_link)
    }

    fn run_callback<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut N, &mut Context<M>),
    {
        let i = id.as_usize();
        let Some(mut node) = self.nodes.get_mut(i).and_then(Option::take) else {
            return;
        };
        // Lend the observed-neighbor vector to the callback instead of cloning it:
        // nothing can touch `observed` while the callback runs (effects are applied
        // only after it returns), so the vector is moved out and moved back.
        let lent = self.observed_present.get(i).copied().unwrap_or(false);
        let neighbors = if lent {
            std::mem::take(&mut self.observed[i])
        } else {
            Vec::new()
        };
        let random = self.rng.next_u64();
        let outbox = std::mem::take(&mut self.outbox_buf);
        let timers = std::mem::take(&mut self.timers_buf);
        let mut ctx = Context::with_buffers(id, self.now, neighbors, random, outbox, timers);
        f(&mut node, &mut ctx);
        self.nodes[i] = Some(node);
        let Context {
            neighbors,
            mut outbox,
            mut timers,
            ..
        } = ctx;
        if lent {
            self.observed[i] = neighbors;
        }
        for (delay, timer) in timers.drain(..) {
            let at = self.now + delay;
            self.push_event(at, EventKind::Timer { node: id, timer });
        }
        self.timers_buf = timers;
        for (to, msg) in outbox.drain(..) {
            self.transmit(id, to, msg);
        }
        self.outbox_buf = outbox;
    }

    fn transmit(&mut self, from: NodeId, to: NodeId, msg: M) {
        let bytes = msg.wire_size();
        self.metrics.record_send(from, bytes);
        // The incrementally maintained `Go` answers the operational-link question in
        // one dense lookup; a live link implies both endpoints are alive, so the
        // only extra check is that the destination has a registered state machine.
        if from == to || !self.operational.has_link(from, to) || !self.has_state_machine(to) {
            self.metrics.record_undeliverable(from);
            return;
        }
        let config = self.link_config(from, to);
        // Burst-configured links draw every random decision from their dedicated
        // per-direction stream, so their loss pattern is a pure function of
        // (seed, link, packet index) — independent of what other links transmit.
        // Flat links keep the legacy shared-RNG draw order, bit-for-bit.
        let outcome = if config.burst.is_some() {
            let state = self.burst_states.entry((from, to)).or_insert_with(|| {
                BurstState::new(burst_stream_seed(self.config.seed, from, to, 0))
            });
            config.sample_bursty(state)
        } else {
            config.sample(&mut self.rng)
        };
        match outcome {
            TransmissionOutcome::Lost => {
                self.metrics.record_drop(from);
            }
            TransmissionOutcome::Delivered { copies, delay } => {
                let total_delay = delay + config.serialization_delay(bytes);
                let at = self.now + total_delay;
                // The common case is a single copy: move the message into the event.
                // Only medium-level duplication pays for clones, and the original
                // (non-duplicate first, duplicates after) event order is preserved.
                let mut copy = 0;
                while copy + 1 < copies {
                    self.push_deliver(
                        at,
                        from,
                        to,
                        BatchedMsg {
                            msg: msg.clone(),
                            bytes,
                            duplicate: copy > 0,
                        },
                    );
                    copy += 1;
                }
                self.push_deliver(
                    at,
                    from,
                    to,
                    BatchedMsg {
                        msg,
                        bytes,
                        duplicate: copy > 0,
                    },
                );
            }
        }
    }
}

/// Derives the seed of one link direction's burst RNG stream by mixing the run
/// seed, the directed endpoints, and the config epoch through a splitmix-style
/// finalizer. Deterministic across platforms — no hasher state involved.
fn burst_stream_seed(seed: u64, from: NodeId, to: NodeId, epoch: u64) -> u64 {
    let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
    for v in [from.as_usize() as u64, to.as_usize() as u64, epoch] {
        x ^= v.wrapping_mul(0xBF58_476D_1CE4_E5B9).rotate_left(31);
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 29;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo node: replies to every message with `value + 1`, and node 0 kicks things
    /// off from its start callback.
    struct Echo {
        received: Vec<(NodeId, u64)>,
        reply: bool,
    }

    impl Echo {
        fn new(reply: bool) -> Self {
            Echo {
                received: Vec::new(),
                reply,
            }
        }
    }

    impl Node<u64> for Echo {
        fn on_start(&mut self, ctx: &mut Context<u64>) {
            if ctx.id() == NodeId::new(0) {
                ctx.broadcast(1);
            }
        }
        fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Context<u64>) {
            self.received.push((from, msg));
            // Only the very first message is answered, so exchanges stay finite.
            if self.reply && msg == 1 {
                ctx.send(from, msg + 1);
            }
        }
        fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<u64>) {
            // Timers are used by one test to trigger a delayed send.
            ctx.broadcast(100 + timer.0);
        }
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn line3() -> Graph {
        Graph::from_links([(n(0), n(1)), (n(1), n(2))])
    }

    fn sim_with_echo(reply: bool) -> Simulator<u64, Echo> {
        let g = line3();
        let mut sim = Simulator::new(
            &g,
            SimConfig {
                detection_delay: SimDuration::ZERO,
                ..SimConfig::default()
            },
        );
        for node in g.nodes() {
            sim.add_node(node, Echo::new(reply));
        }
        sim
    }

    #[test]
    fn messages_flow_between_neighbors() {
        let mut sim = sim_with_echo(true);
        sim.start();
        sim.run_until(SimTime::from_secs(1));
        // 0 sent 1 to 1; 1 replied with 2.
        assert_eq!(sim.node(n(1)).unwrap().received, vec![(n(0), 1)]);
        assert_eq!(sim.node(n(0)).unwrap().received, vec![(n(1), 2)]);
        // 2 is not a neighbor of 0, so it got nothing.
        assert!(sim.node(n(2)).unwrap().received.is_empty());
        assert_eq!(sim.metrics().total_sent(), 2);
        assert_eq!(sim.metrics().total_received(), 2);
    }

    #[test]
    fn failed_link_blocks_delivery() {
        let mut sim = sim_with_echo(false);
        sim.fail_link(n(0), n(1));
        sim.start();
        sim.run_until(SimTime::from_secs(1));
        // With zero detection delay the failed link disappears from node 0's observed
        // neighborhood, so it never even tries to send.
        assert!(sim.node(n(1)).unwrap().received.is_empty());
        assert_eq!(sim.metrics().total_sent(), 0);
        assert!(!sim.link_is_operational(n(0), n(1)));
        assert!(sim.link_is_operational(n(1), n(2)));
        // Restoring the link lets later traffic through.
        sim.restore_link(n(0), n(1));
        assert!(sim.link_is_operational(n(0), n(1)));
    }

    #[test]
    fn send_to_non_neighbor_is_undeliverable() {
        /// Sends to a node two hops away, which the simulator must refuse to deliver:
        /// the control plane is in-band, multi-hop needs switch forwarding.
        struct Blind;
        impl Node<u64> for Blind {
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                if ctx.id() == n(0) {
                    ctx.send(n(2), 7);
                }
            }
            fn on_message(&mut self, _: NodeId, _: u64, _: &mut Context<u64>) {
                panic!("nothing should ever be delivered in this test");
            }
        }
        let g = line3();
        let mut sim: Simulator<u64, Blind> = Simulator::new(&g, SimConfig::default());
        for node in g.nodes() {
            sim.add_node(node, Blind);
        }
        sim.start();
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.metrics().undeliverable(), 1);
        assert_eq!(sim.metrics().total_received(), 0);
    }

    #[test]
    fn failed_node_receives_nothing_and_links_go_down() {
        let mut sim = sim_with_echo(false);
        sim.fail_node(n(1));
        sim.start();
        sim.run_until(SimTime::from_secs(1));
        assert!(sim.is_node_failed(n(1)));
        assert!(sim.node(n(1)).unwrap().received.is_empty());
        assert!(!sim.link_is_operational(n(0), n(1)));
        let go = sim.operational_graph();
        assert!(!go.contains_node(n(1)));
        assert_eq!(go.link_count(), 0);
        sim.revive_node(n(1));
        assert!(sim.link_is_operational(n(0), n(1)));
    }

    #[test]
    fn observed_neighbors_follow_detection_delay() {
        let g = line3();
        let mut sim: Simulator<u64, Echo> = Simulator::new(
            &g,
            SimConfig {
                detection_delay: SimDuration::from_millis(100),
                ..SimConfig::default()
            },
        );
        for node in g.nodes() {
            sim.add_node(node, Echo::new(false));
        }
        sim.start();
        assert_eq!(sim.observed_neighbors(n(1)), vec![n(0), n(2)]);
        sim.fail_link(n(0), n(1));
        // Before the detection delay elapses the stale neighbor is still observed.
        assert_eq!(sim.observed_neighbors(n(1)), vec![n(0), n(2)]);
        sim.run_for(SimDuration::from_millis(200));
        assert_eq!(sim.observed_neighbors(n(1)), vec![n(2)]);
    }

    #[test]
    fn permanent_removal_updates_topology() {
        let mut sim = sim_with_echo(false);
        assert!(sim.remove_link(n(1), n(2)));
        assert!(!sim.remove_link(n(1), n(2)));
        assert!(!sim.topology().has_link(n(1), n(2)));
        sim.add_link(n(0), n(2));
        assert!(sim.topology().has_link(n(0), n(2)));
        sim.remove_node(n(2));
        assert!(!sim.topology().contains_node(n(2)));
        assert!(sim.node(n(2)).is_none());
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Node<u64> for TimerNode {
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                if ctx.id() == n(0) {
                    ctx.schedule(SimDuration::from_millis(20), TimerId(2));
                    ctx.schedule(SimDuration::from_millis(10), TimerId(1));
                }
            }
            fn on_message(&mut self, _: NodeId, _: u64, _: &mut Context<u64>) {}
            fn on_timer(&mut self, timer: TimerId, _: &mut Context<u64>) {
                self.fired.push(timer.0);
            }
        }
        let g = Graph::from_links([(n(0), n(1))]);
        let mut tsim: Simulator<u64, TimerNode> = Simulator::new(&g, SimConfig::default());
        tsim.add_node(n(0), TimerNode { fired: vec![] });
        tsim.add_node(n(1), TimerNode { fired: vec![] });
        tsim.start();
        tsim.run_until(SimTime::from_secs(1));
        assert_eq!(tsim.node(n(0)).unwrap().fired, vec![1, 2]);
        assert!(tsim.node(n(1)).unwrap().fired.is_empty());
    }

    #[test]
    fn lossy_default_link_drops_packets() {
        let g = Graph::from_links([(n(0), n(1))]);
        let mut sim: Simulator<u64, Echo> = Simulator::new(
            &g,
            SimConfig {
                default_link: LinkConfig::default().with_loss(1.0),
                detection_delay: SimDuration::ZERO,
                seed: 1,
            },
        );
        sim.add_node(n(0), Echo::new(false));
        sim.add_node(n(1), Echo::new(false));
        sim.start();
        sim.run_until(SimTime::from_secs(1));
        assert!(sim.node(n(1)).unwrap().received.is_empty());
        assert_eq!(sim.metrics().dropped(), 1);
    }

    #[test]
    fn duplicating_link_delivers_twice() {
        let g = Graph::from_links([(n(0), n(1))]);
        let mut sim: Simulator<u64, Echo> = Simulator::new(
            &g,
            SimConfig {
                default_link: LinkConfig::default().with_duplication(1.0),
                detection_delay: SimDuration::ZERO,
                seed: 1,
            },
        );
        sim.add_node(n(0), Echo::new(false));
        sim.add_node(n(1), Echo::new(false));
        sim.start();
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.node(n(1)).unwrap().received.len(), 2);
        assert_eq!(sim.metrics().duplicated(), 1);
    }

    #[test]
    fn run_until_idle_and_clock_semantics() {
        let mut sim = sim_with_echo(true);
        sim.start();
        assert!(sim.has_pending_events());
        assert!(sim.run_until_idle(SimTime::from_secs(10)));
        assert!(!sim.has_pending_events());
        let t = sim.now();
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(sim.now(), t + SimDuration::from_secs(5));
    }

    #[test]
    fn replace_node_resets_start_state() {
        let mut sim = sim_with_echo(false);
        sim.start();
        let prev = sim.replace_node(n(0), Echo::new(false));
        assert!(prev.is_some());
        // After replacement the node can be started again.
        sim.start();
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.node(n(1)).unwrap().received.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not part of the topology")]
    fn add_node_outside_topology_panics() {
        let mut sim = sim_with_echo(false);
        sim.add_node(n(99), Echo::new(false));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn add_node_twice_panics() {
        let mut sim = sim_with_echo(false);
        sim.add_node(n(0), Echo::new(false));
    }

    #[test]
    fn add_node_with_links_expands_topology() {
        let mut sim = sim_with_echo(false);
        sim.add_node_with_links(n(5), &[n(2)], Echo::new(false));
        assert!(sim.topology().has_link(n(2), n(5)));
        assert!(sim.node(n(5)).is_some());
        assert_eq!(sim.observed_neighbors(n(5)), vec![n(2)]);
    }

    #[test]
    fn operational_graph_tracks_faults_incrementally() {
        let mut sim = sim_with_echo(false);
        assert_eq!(*sim.operational_graph(), sim.rebuild_operational_graph());
        sim.fail_link(n(0), n(1));
        assert!(!sim.operational_graph().has_link(n(0), n(1)));
        assert_eq!(*sim.operational_graph(), sim.rebuild_operational_graph());
        sim.fail_node(n(2));
        assert!(!sim.operational_graph().contains_node(n(2)));
        assert_eq!(*sim.operational_graph(), sim.rebuild_operational_graph());
        sim.restore_link(n(0), n(1));
        sim.revive_node(n(2));
        assert_eq!(*sim.operational_graph(), sim.rebuild_operational_graph());
        assert_eq!(*sim.operational_graph(), *sim.topology());
    }

    #[test]
    fn generation_is_stable_across_noop_events() {
        let mut sim = sim_with_echo(false);
        sim.run_until(SimTime::from_secs(1));
        let gen = sim.topology_generation();
        // Failing an already-missing link, reviving a live node, re-restoring an
        // up link: none of these change `Go` or the observations.
        sim.fail_link(n(0), n(2)); // not a topology link
        sim.revive_node(n(1)); // not failed
        sim.restore_link(n(0), n(1)); // already up
        sim.run_until(SimTime::from_secs(2)); // drain the scheduled refreshes
        assert_eq!(sim.topology_generation(), gen, "no-op events must not bump");
        // A real fault bumps.
        sim.fail_link(n(0), n(1));
        assert!(sim.topology_generation() > gen);
    }

    /// Deliveries that share a link and a tick are batched into one agenda entry;
    /// this must be invisible to nodes and metrics alike.
    #[test]
    fn batched_deliveries_preserve_message_order_and_counts() {
        struct Burst {
            received: Vec<u64>,
        }
        impl Node<u64> for Burst {
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                if ctx.id() == n(0) {
                    // Same destination, same payload size => same tick: one batch.
                    for v in 0..5 {
                        ctx.send(n(1), v);
                    }
                }
            }
            fn on_message(&mut self, _: NodeId, msg: u64, _: &mut Context<u64>) {
                self.received.push(msg);
            }
        }
        let g = Graph::from_links([(n(0), n(1))]);
        let mut sim: Simulator<u64, Burst> = Simulator::new(&g, SimConfig::default());
        sim.add_node(n(0), Burst { received: vec![] });
        sim.add_node(n(1), Burst { received: vec![] });
        sim.start();
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.node(n(1)).unwrap().received, vec![0, 1, 2, 3, 4]);
        assert_eq!(sim.metrics().total_received(), 5);
        // One message, one processed event — batching must not deflate the count.
        assert_eq!(sim.events_processed(), 5);
    }

    /// Randomized interleavings of every fault primitive: after each step the
    /// incrementally maintained `Go` must equal a from-scratch rebuild, and the
    /// generation must bump exactly when the rebuild differs from the previous one
    /// (modulo observation changes, which also legitimately bump).
    #[test]
    fn incremental_operational_graph_matches_rebuild_under_random_faults() {
        let nodes = 12u32;
        let g = Graph::from_links(
            (0..nodes).flat_map(|i| [(n(i), n((i + 1) % nodes)), (n(i), n((i + 3) % nodes))]),
        );
        for seed in 0..20u64 {
            let mut sim: Simulator<u64, Echo> = Simulator::new(
                &g,
                SimConfig {
                    detection_delay: SimDuration::from_millis(10),
                    seed,
                    ..SimConfig::default()
                },
            );
            for node in g.nodes() {
                sim.add_node(node, Echo::new(false));
            }
            let mut rng = Rng::seed_from_u64(seed ^ 0xDEAD_BEEF);
            let mut next_id = nodes;
            for step in 0..120 {
                let a = n(rng.gen_range(0..nodes));
                let b = n(rng.gen_range(0..nodes));
                match rng.gen_range(0..8u32) {
                    0 => {
                        if a != b {
                            sim.fail_link(a, b);
                        }
                    }
                    1 => {
                        if a != b {
                            sim.restore_link(a, b);
                        }
                    }
                    2 => sim.fail_node(a),
                    3 => sim.revive_node(a),
                    4 => {
                        if a != b {
                            sim.remove_link(a, b);
                        }
                    }
                    5 => {
                        if a != b {
                            sim.add_link(a, b);
                        }
                    }
                    6 => {
                        let id = n(next_id);
                        next_id += 1;
                        sim.add_node_with_links(id, &[a], Echo::new(false));
                    }
                    _ => {
                        // Advance time so scheduled refreshes interleave with faults.
                        sim.run_for(SimDuration::from_millis(5));
                    }
                }
                let before = sim.topology_generation();
                assert_eq!(
                    *sim.operational_graph(),
                    sim.rebuild_operational_graph(),
                    "divergence at seed {seed} step {step}"
                );
                assert_eq!(
                    sim.topology_generation(),
                    before,
                    "reading the graph must not bump the generation"
                );
            }
            // Let every pending refresh drain and check once more.
            sim.run_for(SimDuration::from_secs(1));
            assert_eq!(*sim.operational_graph(), sim.rebuild_operational_graph());
        }
    }

    #[test]
    fn directed_override_degrades_one_direction_only() {
        let mut sim = sim_with_echo(true);
        // Kill only the reply direction 1 -> 0; requests 0 -> 1 stay clean.
        assert!(sim.set_link_config_directed(n(1), n(0), LinkConfig::default().with_loss(1.0)));
        sim.start();
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.node(n(1)).unwrap().received, vec![(n(0), 1)]);
        assert!(sim.node(n(0)).unwrap().received.is_empty());
        assert_eq!(sim.metrics().dropped(), 1);
        // The link never left `Gc` or `Go`: a gray link is not a failed link.
        assert!(sim.link_is_operational(n(0), n(1)));
    }

    #[test]
    fn link_config_on_unknown_link_is_counted() {
        let mut sim = sim_with_echo(false);
        assert_eq!(sim.link_config_warnings(), 0);
        assert!(sim.set_link_config(n(0), n(1), LinkConfig::default()));
        assert_eq!(sim.link_config_warnings(), 0);
        // (0, 2) is not a link of the line topology.
        assert!(!sim.set_link_config(n(0), n(2), LinkConfig::default()));
        assert!(!sim.set_link_config_directed(n(2), n(0), LinkConfig::default()));
        assert_eq!(sim.link_config_warnings(), 2);
        // Clearing reports whether anything was actually removed.
        assert!(sim.clear_link_config(n(0), n(1)));
        assert!(!sim.clear_link_config(n(0), n(1)));
        assert!(sim.clear_link_config(n(0), n(2)));
    }

    #[test]
    fn undirected_override_replaces_directed_ones() {
        let mut sim = sim_with_echo(true);
        assert!(sim.set_link_config_directed(n(1), n(0), LinkConfig::default().with_loss(1.0)));
        // The symmetric override wins over the earlier directed one: last call wins.
        assert!(sim.set_link_config(n(0), n(1), LinkConfig::default()));
        sim.start();
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.node(n(0)).unwrap().received, vec![(n(1), 2)]);
        assert_eq!(sim.metrics().dropped(), 0);
    }

    #[test]
    fn burst_override_drops_packets_without_leaving_gc() {
        struct Pump5;
        impl Node<u64> for Pump5 {
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                if ctx.id() == n(0) {
                    for v in 0..5 {
                        ctx.send(n(1), v);
                    }
                }
            }
            fn on_message(&mut self, _: NodeId, _: u64, _: &mut Context<u64>) {
                panic!("the burst channel is pinned to the bad state: nothing arrives");
            }
        }
        let g = Graph::from_links([(n(0), n(1))]);
        let mut sim: Simulator<u64, Pump5> = Simulator::new(&g, SimConfig::default());
        sim.add_node(n(0), Pump5);
        sim.add_node(n(1), Pump5);
        // Enter the bad state before the first packet and never leave it.
        let cfg = LinkConfig::default().with_burst(crate::link::BurstLoss::gilbert(1.0, 0.0, 1.0));
        assert!(sim.set_link_config(n(0), n(1), cfg));
        let gen = sim.topology_generation();
        sim.start();
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.metrics().dropped(), 5);
        assert!(sim.link_is_operational(n(0), n(1)));
        assert_eq!(sim.topology_generation(), gen, "gray loss must not bump Go");
    }

    /// The satellite property: a burst link's packet fates are a pure function of
    /// (seed, link, packet index). Unrelated traffic elsewhere in the network —
    /// which consumes the shared RNG through per-callback draws and flat-link
    /// sampling — must not shift a burst link's loss/jitter stream.
    #[test]
    fn burst_stream_is_independent_of_unrelated_traffic() {
        #[derive(Clone)]
        struct Pump {
            peer: Option<NodeId>,
            remaining: u32,
            received: Vec<(SimTime, u64)>,
        }
        impl Node<u64> for Pump {
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                if self.peer.is_some() {
                    ctx.schedule(SimDuration::from_millis(10), TimerId(0));
                }
            }
            fn on_message(&mut self, _: NodeId, msg: u64, ctx: &mut Context<u64>) {
                self.received.push((ctx.now(), msg));
            }
            fn on_timer(&mut self, _: TimerId, ctx: &mut Context<u64>) {
                let Some(peer) = self.peer else { return };
                if self.remaining > 0 {
                    self.remaining -= 1;
                    ctx.send(peer, self.remaining as u64);
                    ctx.schedule(SimDuration::from_millis(10), TimerId(0));
                }
            }
        }
        let run = |with_background: bool| -> Vec<(SimTime, u64)> {
            let g = Graph::from_links([(n(0), n(1)), (n(2), n(3))]);
            let mut sim: Simulator<u64, Pump> = Simulator::new(
                &g,
                SimConfig {
                    detection_delay: SimDuration::ZERO,
                    seed: 0xBEEF,
                    ..SimConfig::default()
                },
            );
            let idle = Pump {
                peer: None,
                remaining: 0,
                received: Vec::new(),
            };
            sim.add_node(
                n(0),
                Pump {
                    peer: Some(n(1)),
                    remaining: 200,
                    ..idle.clone()
                },
            );
            sim.add_node(n(1), idle.clone());
            sim.add_node(
                n(2),
                Pump {
                    peer: if with_background { Some(n(3)) } else { None },
                    remaining: 200,
                    ..idle.clone()
                },
            );
            sim.add_node(n(3), idle.clone());
            let gray = LinkConfig::default()
                .with_jitter(SimDuration::from_micros(500))
                .with_burst(crate::link::BurstLoss::gilbert(0.1, 0.3, 0.9));
            assert!(sim.set_link_config(n(0), n(1), gray));
            // The background pair runs on a flat lossy link fed by the shared RNG.
            assert!(sim.set_link_config(n(2), n(3), LinkConfig::default().with_loss(0.5)));
            sim.start();
            sim.run_until(SimTime::from_secs(10));
            sim.node(n(1)).unwrap().received.clone()
        };
        let quiet = run(false);
        let noisy = run(true);
        assert!(!quiet.is_empty(), "some packets must survive the bursts");
        assert_eq!(
            quiet, noisy,
            "burst-link outcomes shifted with unrelated traffic"
        );
    }
}
