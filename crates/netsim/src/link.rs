//! Link model: latency, bandwidth accounting, and the unreliable-media failure modes
//! the paper's fault model allows (packet omission, duplication, reordering).

use crate::time::SimDuration;
use sdn_rng::Rng;

/// Configuration of the physical behaviour of every link in the simulated network.
///
/// The defaults approximate the Mininet setup of the paper's evaluation: 1 Gbit/s
/// links with sub-millisecond latency and no packet corruption; the loss/duplication
/// probabilities are switched on by the channel-layer and transient-fault experiments.
///
/// # Example
///
/// ```
/// use sdn_netsim::link::LinkConfig;
/// use sdn_netsim::time::SimDuration;
/// let cfg = LinkConfig::default().with_latency(SimDuration::from_micros(200));
/// assert_eq!(cfg.latency.as_micros(), 200);
/// assert_eq!(cfg.loss_probability, 0.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkConfig {
    /// One-way propagation latency applied to every packet.
    pub latency: SimDuration,
    /// Extra random latency applied per packet, drawn uniformly from the *closed*
    /// interval `[0, jitter]` — the sampling uses an inclusive range, so the
    /// configured bound itself is attainable. Models reordering, because two packets
    /// sent back-to-back may arrive out of order.
    pub jitter: SimDuration,
    /// Probability in `[0, 1]` that a packet is silently dropped (omission failure).
    pub loss_probability: f64,
    /// Probability in `[0, 1]` that a packet is delivered twice (duplication failure).
    pub duplication_probability: f64,
    /// Link bandwidth in bits per second, used by the traffic model to convert packet
    /// sizes into serialization delay. `None` means infinite bandwidth.
    pub bandwidth_bps: Option<u64>,
    /// Optional two-state burst-loss process layered on top of `loss_probability`.
    /// When set, the link alternates between a good and a bad state (Gilbert–Elliott
    /// style) and the loss probability of the *current state* replaces
    /// `loss_probability` for each packet. Burst-configured links draw all their
    /// randomness from a dedicated per-link RNG stream so outcomes are independent
    /// of global event interleaving.
    pub burst: Option<BurstLoss>,
}

/// Parameters of a seeded two-state (Gilbert–Elliott) burst-loss process.
///
/// The link starts in the good state. Before each packet the state advances:
/// from good it enters the bad state with probability `p_enter`; from bad it
/// returns to good with probability `p_exit`. The packet is then dropped with
/// `loss_good` or `loss_bad` depending on the state after the transition. The
/// expected bad-burst length is `1 / p_exit` packets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstLoss {
    /// Probability of transitioning good → bad before a packet.
    pub p_enter: f64,
    /// Probability of transitioning bad → good before a packet.
    pub p_exit: f64,
    /// Per-packet loss probability while in the good state.
    pub loss_good: f64,
    /// Per-packet loss probability while in the bad state.
    pub loss_bad: f64,
}

impl BurstLoss {
    /// A classic Gilbert channel: lossless in the good state, `loss_bad` in the
    /// bad state. All probabilities are clamped to `[0, 1]`.
    pub fn gilbert(p_enter: f64, p_exit: f64, loss_bad: f64) -> Self {
        BurstLoss {
            p_enter: clamp_probability(p_enter),
            p_exit: clamp_probability(p_exit),
            loss_good: 0.0,
            loss_bad: clamp_probability(loss_bad),
        }
    }

    /// The full four-parameter Gilbert–Elliott channel (lossy in both states).
    /// All probabilities are clamped to `[0, 1]`.
    pub fn gilbert_elliott(p_enter: f64, p_exit: f64, loss_good: f64, loss_bad: f64) -> Self {
        BurstLoss {
            p_enter: clamp_probability(p_enter),
            p_exit: clamp_probability(p_exit),
            loss_good: clamp_probability(loss_good),
            loss_bad: clamp_probability(loss_bad),
        }
    }

    /// Stationary (long-run) loss probability of the process.
    pub fn stationary_loss(&self) -> f64 {
        let denom = self.p_enter + self.p_exit;
        if denom == 0.0 {
            return self.loss_good;
        }
        let pi_bad = self.p_enter / denom;
        self.loss_good * (1.0 - pi_bad) + self.loss_bad * pi_bad
    }
}

/// The evolving state of one direction of a burst-configured link: the current
/// Gilbert–Elliott state plus the dedicated RNG stream that drives every random
/// decision (state transitions, loss, duplication, jitter) for that direction.
#[derive(Clone, Debug)]
pub struct BurstState {
    /// Whether the process is currently in the bad (bursty-loss) state.
    pub in_bad: bool,
    /// The per-link-direction RNG stream.
    pub rng: Rng,
}

impl BurstState {
    /// A fresh state (good) with its own seeded RNG stream.
    pub fn new(seed: u64) -> Self {
        BurstState {
            in_bad: false,
            rng: Rng::seed_from_u64(seed),
        }
    }
}

/// Clamps a probability into `[0, 1]`; non-finite values (NaN, ±inf) map to the
/// nearest defined bound (NaN → 0).
pub fn clamp_probability(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: SimDuration::from_micros(250),
            jitter: SimDuration::ZERO,
            loss_probability: 0.0,
            duplication_probability: 0.0,
            bandwidth_bps: Some(1_000_000_000),
            burst: None,
        }
    }
}

impl LinkConfig {
    /// A perfectly reliable, zero-jitter link with the given latency.
    pub fn reliable(latency: SimDuration) -> Self {
        LinkConfig {
            latency,
            jitter: SimDuration::ZERO,
            loss_probability: 0.0,
            duplication_probability: 0.0,
            bandwidth_bps: None,
            burst: None,
        }
    }

    /// A lossy link exhibiting all three unreliable-media failure modes of the paper's
    /// fault model: omission (`loss`), duplication (`dup`), and reordering (via jitter).
    /// Probabilities outside `[0, 1]` are clamped (NaN maps to 0).
    pub fn lossy(latency: SimDuration, loss: f64, dup: f64, jitter: SimDuration) -> Self {
        LinkConfig {
            latency,
            jitter,
            loss_probability: clamp_probability(loss),
            duplication_probability: clamp_probability(dup),
            bandwidth_bps: None,
            burst: None,
        }
    }

    /// Replaces the base latency.
    pub fn with_latency(mut self, latency: SimDuration) -> Self {
        self.latency = latency;
        self
    }

    /// Replaces the jitter bound. The bound is inclusive: per-packet jitter is drawn
    /// from the closed interval `[0, jitter]`, so a draw of exactly `jitter` occurs.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Replaces the loss probability, clamped into `[0, 1]` (NaN maps to 0).
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss_probability = clamp_probability(loss);
        self
    }

    /// Replaces the duplication probability, clamped into `[0, 1]` (NaN maps to 0).
    pub fn with_duplication(mut self, dup: f64) -> Self {
        self.duplication_probability = clamp_probability(dup);
        self
    }

    /// Attaches a two-state burst-loss process to the link.
    pub fn with_burst(mut self, burst: BurstLoss) -> Self {
        self.burst = Some(burst);
        self
    }

    /// Removes any burst-loss process, returning to flat i.i.d. loss.
    pub fn without_burst(mut self) -> Self {
        self.burst = None;
        self
    }

    /// Replaces the bandwidth (bits per second).
    pub fn with_bandwidth_bps(mut self, bps: u64) -> Self {
        self.bandwidth_bps = Some(bps);
        self
    }

    /// Samples the fate of one packet transmission over this link.
    ///
    /// This is the flat (non-burst) path: `burst` is ignored and all randomness
    /// is drawn from the caller's RNG. Burst-configured links are sampled through
    /// [`LinkConfig::sample_bursty`] with their per-link stream instead.
    pub fn sample(&self, rng: &mut Rng) -> TransmissionOutcome {
        if self.loss_probability > 0.0 && rng.gen_bool(self.loss_probability.min(1.0)) {
            return TransmissionOutcome::Lost;
        }
        let copies = if self.duplication_probability > 0.0
            && rng.gen_bool(self.duplication_probability.min(1.0))
        {
            2
        } else {
            1
        };
        let jitter = if self.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(rng.gen_range(0..=self.jitter.as_micros()))
        };
        TransmissionOutcome::Delivered {
            copies,
            delay: self.latency + jitter,
        }
    }

    /// Samples one packet through the burst-loss process, advancing `state`.
    ///
    /// Every random decision — the Gilbert–Elliott state transition, the loss
    /// draw, duplication, and jitter — comes from `state.rng`, the dedicated
    /// per-link-direction stream, so the outcome sequence of one link is a pure
    /// function of (seed, link, packet index) and cannot be perturbed by traffic
    /// on other links. Falls back to [`LinkConfig::sample`] over the same stream
    /// when no burst process is configured.
    pub fn sample_bursty(&self, state: &mut BurstState) -> TransmissionOutcome {
        let Some(burst) = self.burst else {
            return self.sample(&mut state.rng);
        };
        // Advance the two-state chain, then draw the packet's fate in the new state.
        if state.in_bad {
            if burst.p_exit > 0.0 && state.rng.gen_bool(burst.p_exit) {
                state.in_bad = false;
            }
        } else if burst.p_enter > 0.0 && state.rng.gen_bool(burst.p_enter) {
            state.in_bad = true;
        }
        let loss = if state.in_bad {
            burst.loss_bad
        } else {
            burst.loss_good
        };
        if loss > 0.0 && state.rng.gen_bool(loss) {
            return TransmissionOutcome::Lost;
        }
        let copies = if self.duplication_probability > 0.0
            && state.rng.gen_bool(self.duplication_probability.min(1.0))
        {
            2
        } else {
            1
        };
        let jitter = if self.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(state.rng.gen_range(0..=self.jitter.as_micros()))
        };
        TransmissionOutcome::Delivered {
            copies,
            delay: self.latency + jitter,
        }
    }

    /// The serialization delay of a packet of `bytes` bytes on this link
    /// (zero when the bandwidth is unlimited).
    pub fn serialization_delay(&self, bytes: usize) -> SimDuration {
        match self.bandwidth_bps {
            None | Some(0) => SimDuration::ZERO,
            Some(bps) => {
                SimDuration::from_micros((bytes as u64 * 8).saturating_mul(1_000_000) / bps)
            }
        }
    }
}

/// The fate of a single packet transmission, as sampled from a [`LinkConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransmissionOutcome {
    /// The packet was dropped by the medium (omission failure).
    Lost,
    /// The packet is delivered `copies` times after `delay`.
    Delivered {
        /// Number of copies delivered (2 models a duplication failure).
        copies: u8,
        /// Propagation plus jitter delay.
        delay: SimDuration,
    },
}

/// The administrative / operational state of a link in the simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LinkStatus {
    /// The link forwards packets.
    #[default]
    Up,
    /// The link is temporarily unavailable (a transient link failure: packets are
    /// dropped but the link is still part of `Gc`).
    Down,
    /// The link has been permanently removed from `Gc`.
    Removed,
}

impl LinkStatus {
    /// Returns `true` when packets can traverse the link.
    pub fn is_operational(self) -> bool {
        matches!(self, LinkStatus::Up)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_link_always_delivers_once() {
        let cfg = LinkConfig::reliable(SimDuration::from_micros(100));
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..100 {
            match cfg.sample(&mut rng) {
                TransmissionOutcome::Delivered { copies, delay } => {
                    assert_eq!(copies, 1);
                    assert_eq!(delay, SimDuration::from_micros(100));
                }
                TransmissionOutcome::Lost => panic!("reliable link lost a packet"),
            }
        }
    }

    #[test]
    fn lossy_link_loses_roughly_the_configured_fraction() {
        let cfg = LinkConfig::lossy(SimDuration::from_micros(10), 0.3, 0.0, SimDuration::ZERO);
        let mut rng = Rng::seed_from_u64(7);
        let lost = (0..10_000)
            .filter(|_| matches!(cfg.sample(&mut rng), TransmissionOutcome::Lost))
            .count();
        assert!((2_500..3_500).contains(&lost), "lost {lost} of 10000");
    }

    #[test]
    fn duplication_produces_two_copies() {
        let cfg = LinkConfig::lossy(SimDuration::from_micros(10), 0.0, 1.0, SimDuration::ZERO);
        let mut rng = Rng::seed_from_u64(3);
        match cfg.sample(&mut rng) {
            TransmissionOutcome::Delivered { copies, .. } => assert_eq!(copies, 2),
            TransmissionOutcome::Lost => panic!("unexpected loss"),
        }
    }

    #[test]
    fn jitter_bounds_delay() {
        let cfg = LinkConfig::default()
            .with_latency(SimDuration::from_micros(100))
            .with_jitter(SimDuration::from_micros(50));
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..200 {
            if let TransmissionOutcome::Delivered { delay, .. } = cfg.sample(&mut rng) {
                assert!(delay >= SimDuration::from_micros(100));
                assert!(delay <= SimDuration::from_micros(150));
            }
        }
    }

    #[test]
    fn jitter_bound_is_inclusive() {
        // The jitter interval is closed: `gen_range(0..=jitter)` can return the bound
        // itself. Pin that the documented maximum delay is actually attained (with a
        // tiny bound, a few thousand draws hit every value of the support).
        let cfg = LinkConfig::default()
            .with_latency(SimDuration::from_micros(100))
            .with_jitter(SimDuration::from_micros(3));
        let mut rng = Rng::seed_from_u64(17);
        let max_delay = SimDuration::from_micros(103);
        let mut edge_hits = 0usize;
        for _ in 0..5_000 {
            if let TransmissionOutcome::Delivered { delay, .. } = cfg.sample(&mut rng) {
                assert!(delay <= max_delay);
                if delay == max_delay {
                    edge_hits += 1;
                }
            }
        }
        assert!(
            edge_hits > 0,
            "the inclusive upper bound must be drawn at least once"
        );
    }

    #[test]
    fn serialization_delay_scales_with_size() {
        let cfg = LinkConfig::default().with_bandwidth_bps(1_000_000); // 1 Mbit/s
        assert_eq!(cfg.serialization_delay(125).as_millis(), 1); // 1000 bits at 1 Mbit/s
        let unlimited = LinkConfig::reliable(SimDuration::ZERO);
        assert_eq!(unlimited.serialization_delay(1_000_000), SimDuration::ZERO);
    }

    #[test]
    fn status_operational() {
        assert!(LinkStatus::Up.is_operational());
        assert!(!LinkStatus::Down.is_operational());
        assert!(!LinkStatus::Removed.is_operational());
        assert_eq!(LinkStatus::default(), LinkStatus::Up);
    }

    #[test]
    fn out_of_range_probabilities_clamp() {
        assert_eq!(LinkConfig::default().with_loss(1.5).loss_probability, 1.0);
        assert_eq!(LinkConfig::default().with_loss(-0.5).loss_probability, 0.0);
        assert_eq!(
            LinkConfig::default().with_loss(f64::NAN).loss_probability,
            0.0
        );
        assert_eq!(
            LinkConfig::default()
                .with_duplication(f64::INFINITY)
                .duplication_probability,
            1.0
        );
        assert_eq!(
            LinkConfig::default()
                .with_duplication(f64::NEG_INFINITY)
                .duplication_probability,
            0.0
        );
        // The exact bounds pass through untouched.
        assert_eq!(LinkConfig::default().with_loss(0.0).loss_probability, 0.0);
        assert_eq!(LinkConfig::default().with_loss(1.0).loss_probability, 1.0);
        let lossy = LinkConfig::lossy(SimDuration::ZERO, 2.0, -1.0, SimDuration::ZERO);
        assert_eq!(lossy.loss_probability, 1.0);
        assert_eq!(lossy.duplication_probability, 0.0);
        let burst = BurstLoss::gilbert_elliott(-0.1, 1.7, f64::NAN, 5.0);
        assert_eq!(
            burst,
            BurstLoss {
                p_enter: 0.0,
                p_exit: 1.0,
                loss_good: 0.0,
                loss_bad: 1.0
            }
        );
    }

    #[test]
    fn burst_loss_is_bursty_and_matches_stationary_rate() {
        // p_enter 0.02, p_exit 0.2 → pi_bad = 0.02/0.22 ≈ 9.1% of packets in the
        // bad state, each lost with 0.9 → stationary loss ≈ 8.2%.
        let burst = BurstLoss::gilbert(0.02, 0.2, 0.9);
        let cfg = LinkConfig::reliable(SimDuration::from_micros(10)).with_burst(burst);
        let mut state = BurstState::new(99);
        let n = 50_000;
        let mut lost = 0usize;
        let mut loss_runs = 0usize;
        let mut prev_lost = false;
        for _ in 0..n {
            let is_lost = matches!(cfg.sample_bursty(&mut state), TransmissionOutcome::Lost);
            if is_lost {
                lost += 1;
                if !prev_lost {
                    loss_runs += 1;
                }
            }
            prev_lost = is_lost;
        }
        let rate = lost as f64 / n as f64;
        let expected = burst.stationary_loss();
        assert!(
            (rate - expected).abs() < 0.02,
            "loss rate {rate:.3} vs stationary {expected:.3}"
        );
        // Bursty: losses cluster into runs, so the number of distinct runs is
        // well below the loss count (i.i.d. loss at the same rate would give
        // mean run length ≈ 1.09; the Gilbert channel gives ≈ 1/0.2 · 0.9-ish).
        let mean_run = lost as f64 / loss_runs.max(1) as f64;
        assert!(
            mean_run > 2.0,
            "expected bursty losses, got mean run length {mean_run:.2}"
        );
    }

    #[test]
    fn burst_streams_are_deterministic_per_seed() {
        let cfg = LinkConfig::reliable(SimDuration::from_micros(10))
            .with_burst(BurstLoss::gilbert(0.05, 0.3, 0.8));
        let run = |seed: u64| -> Vec<TransmissionOutcome> {
            let mut state = BurstState::new(seed);
            (0..500).map(|_| cfg.sample_bursty(&mut state)).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn sample_bursty_without_burst_matches_flat_sampling() {
        let cfg = LinkConfig::lossy(
            SimDuration::from_micros(10),
            0.3,
            0.1,
            SimDuration::from_micros(5),
        );
        let mut flat_rng = Rng::seed_from_u64(21);
        let mut state = BurstState::new(21);
        for _ in 0..200 {
            assert_eq!(cfg.sample(&mut flat_rng), cfg.sample_bursty(&mut state));
        }
    }
}
