//! Link model: latency, bandwidth accounting, and the unreliable-media failure modes
//! the paper's fault model allows (packet omission, duplication, reordering).

use crate::time::SimDuration;
use sdn_rng::Rng;

/// Configuration of the physical behaviour of every link in the simulated network.
///
/// The defaults approximate the Mininet setup of the paper's evaluation: 1 Gbit/s
/// links with sub-millisecond latency and no packet corruption; the loss/duplication
/// probabilities are switched on by the channel-layer and transient-fault experiments.
///
/// # Example
///
/// ```
/// use sdn_netsim::link::LinkConfig;
/// use sdn_netsim::time::SimDuration;
/// let cfg = LinkConfig::default().with_latency(SimDuration::from_micros(200));
/// assert_eq!(cfg.latency.as_micros(), 200);
/// assert_eq!(cfg.loss_probability, 0.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkConfig {
    /// One-way propagation latency applied to every packet.
    pub latency: SimDuration,
    /// Extra random latency applied per packet, drawn uniformly from the *closed*
    /// interval `[0, jitter]` — the sampling uses an inclusive range, so the
    /// configured bound itself is attainable. Models reordering, because two packets
    /// sent back-to-back may arrive out of order.
    pub jitter: SimDuration,
    /// Probability in `[0, 1]` that a packet is silently dropped (omission failure).
    pub loss_probability: f64,
    /// Probability in `[0, 1]` that a packet is delivered twice (duplication failure).
    pub duplication_probability: f64,
    /// Link bandwidth in bits per second, used by the traffic model to convert packet
    /// sizes into serialization delay. `None` means infinite bandwidth.
    pub bandwidth_bps: Option<u64>,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: SimDuration::from_micros(250),
            jitter: SimDuration::ZERO,
            loss_probability: 0.0,
            duplication_probability: 0.0,
            bandwidth_bps: Some(1_000_000_000),
        }
    }
}

impl LinkConfig {
    /// A perfectly reliable, zero-jitter link with the given latency.
    pub fn reliable(latency: SimDuration) -> Self {
        LinkConfig {
            latency,
            jitter: SimDuration::ZERO,
            loss_probability: 0.0,
            duplication_probability: 0.0,
            bandwidth_bps: None,
        }
    }

    /// A lossy link exhibiting all three unreliable-media failure modes of the paper's
    /// fault model: omission (`loss`), duplication (`dup`), and reordering (via jitter).
    pub fn lossy(latency: SimDuration, loss: f64, dup: f64, jitter: SimDuration) -> Self {
        LinkConfig {
            latency,
            jitter,
            loss_probability: loss,
            duplication_probability: dup,
            bandwidth_bps: None,
        }
    }

    /// Replaces the base latency.
    pub fn with_latency(mut self, latency: SimDuration) -> Self {
        self.latency = latency;
        self
    }

    /// Replaces the jitter bound. The bound is inclusive: per-packet jitter is drawn
    /// from the closed interval `[0, jitter]`, so a draw of exactly `jitter` occurs.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Replaces the loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not within `[0, 1]`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss),
            "loss probability must be in [0, 1]"
        );
        self.loss_probability = loss;
        self
    }

    /// Replaces the duplication probability.
    ///
    /// # Panics
    ///
    /// Panics if `dup` is not within `[0, 1]`.
    pub fn with_duplication(mut self, dup: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&dup),
            "duplication probability must be in [0, 1]"
        );
        self.duplication_probability = dup;
        self
    }

    /// Replaces the bandwidth (bits per second).
    pub fn with_bandwidth_bps(mut self, bps: u64) -> Self {
        self.bandwidth_bps = Some(bps);
        self
    }

    /// Samples the fate of one packet transmission over this link.
    pub fn sample(&self, rng: &mut Rng) -> TransmissionOutcome {
        if self.loss_probability > 0.0 && rng.gen_bool(self.loss_probability.min(1.0)) {
            return TransmissionOutcome::Lost;
        }
        let copies = if self.duplication_probability > 0.0
            && rng.gen_bool(self.duplication_probability.min(1.0))
        {
            2
        } else {
            1
        };
        let jitter = if self.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(rng.gen_range(0..=self.jitter.as_micros()))
        };
        TransmissionOutcome::Delivered {
            copies,
            delay: self.latency + jitter,
        }
    }

    /// The serialization delay of a packet of `bytes` bytes on this link
    /// (zero when the bandwidth is unlimited).
    pub fn serialization_delay(&self, bytes: usize) -> SimDuration {
        match self.bandwidth_bps {
            None | Some(0) => SimDuration::ZERO,
            Some(bps) => {
                SimDuration::from_micros((bytes as u64 * 8).saturating_mul(1_000_000) / bps)
            }
        }
    }
}

/// The fate of a single packet transmission, as sampled from a [`LinkConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransmissionOutcome {
    /// The packet was dropped by the medium (omission failure).
    Lost,
    /// The packet is delivered `copies` times after `delay`.
    Delivered {
        /// Number of copies delivered (2 models a duplication failure).
        copies: u8,
        /// Propagation plus jitter delay.
        delay: SimDuration,
    },
}

/// The administrative / operational state of a link in the simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LinkStatus {
    /// The link forwards packets.
    #[default]
    Up,
    /// The link is temporarily unavailable (a transient link failure: packets are
    /// dropped but the link is still part of `Gc`).
    Down,
    /// The link has been permanently removed from `Gc`.
    Removed,
}

impl LinkStatus {
    /// Returns `true` when packets can traverse the link.
    pub fn is_operational(self) -> bool {
        matches!(self, LinkStatus::Up)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_link_always_delivers_once() {
        let cfg = LinkConfig::reliable(SimDuration::from_micros(100));
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..100 {
            match cfg.sample(&mut rng) {
                TransmissionOutcome::Delivered { copies, delay } => {
                    assert_eq!(copies, 1);
                    assert_eq!(delay, SimDuration::from_micros(100));
                }
                TransmissionOutcome::Lost => panic!("reliable link lost a packet"),
            }
        }
    }

    #[test]
    fn lossy_link_loses_roughly_the_configured_fraction() {
        let cfg = LinkConfig::lossy(SimDuration::from_micros(10), 0.3, 0.0, SimDuration::ZERO);
        let mut rng = Rng::seed_from_u64(7);
        let lost = (0..10_000)
            .filter(|_| matches!(cfg.sample(&mut rng), TransmissionOutcome::Lost))
            .count();
        assert!((2_500..3_500).contains(&lost), "lost {lost} of 10000");
    }

    #[test]
    fn duplication_produces_two_copies() {
        let cfg = LinkConfig::lossy(SimDuration::from_micros(10), 0.0, 1.0, SimDuration::ZERO);
        let mut rng = Rng::seed_from_u64(3);
        match cfg.sample(&mut rng) {
            TransmissionOutcome::Delivered { copies, .. } => assert_eq!(copies, 2),
            TransmissionOutcome::Lost => panic!("unexpected loss"),
        }
    }

    #[test]
    fn jitter_bounds_delay() {
        let cfg = LinkConfig::default()
            .with_latency(SimDuration::from_micros(100))
            .with_jitter(SimDuration::from_micros(50));
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..200 {
            if let TransmissionOutcome::Delivered { delay, .. } = cfg.sample(&mut rng) {
                assert!(delay >= SimDuration::from_micros(100));
                assert!(delay <= SimDuration::from_micros(150));
            }
        }
    }

    #[test]
    fn jitter_bound_is_inclusive() {
        // The jitter interval is closed: `gen_range(0..=jitter)` can return the bound
        // itself. Pin that the documented maximum delay is actually attained (with a
        // tiny bound, a few thousand draws hit every value of the support).
        let cfg = LinkConfig::default()
            .with_latency(SimDuration::from_micros(100))
            .with_jitter(SimDuration::from_micros(3));
        let mut rng = Rng::seed_from_u64(17);
        let max_delay = SimDuration::from_micros(103);
        let mut edge_hits = 0usize;
        for _ in 0..5_000 {
            if let TransmissionOutcome::Delivered { delay, .. } = cfg.sample(&mut rng) {
                assert!(delay <= max_delay);
                if delay == max_delay {
                    edge_hits += 1;
                }
            }
        }
        assert!(
            edge_hits > 0,
            "the inclusive upper bound must be drawn at least once"
        );
    }

    #[test]
    fn serialization_delay_scales_with_size() {
        let cfg = LinkConfig::default().with_bandwidth_bps(1_000_000); // 1 Mbit/s
        assert_eq!(cfg.serialization_delay(125).as_millis(), 1); // 1000 bits at 1 Mbit/s
        let unlimited = LinkConfig::reliable(SimDuration::ZERO);
        assert_eq!(unlimited.serialization_delay(1_000_000), SimDuration::ZERO);
    }

    #[test]
    fn status_operational() {
        assert!(LinkStatus::Up.is_operational());
        assert!(!LinkStatus::Down.is_operational());
        assert!(!LinkStatus::Removed.is_operational());
        assert_eq!(LinkStatus::default(), LinkStatus::Up);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn invalid_loss_probability_panics() {
        let _ = LinkConfig::default().with_loss(1.5);
    }
}
