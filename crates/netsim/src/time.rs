//! Simulated time.
//!
//! The simulator uses a single logical clock measured in microseconds. All figures in
//! the paper report seconds, so [`SimTime::as_secs_f64`] is what the bench harness
//! prints; internally everything is integer arithmetic for determinism.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since the start of the run).
///
/// # Example
///
/// ```
/// use sdn_netsim::time::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_millis(1500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time point from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates a time point from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// This time point expressed in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This time point expressed in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This time point expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference `self - earlier`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_micros(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// A span of simulated time.
///
/// # Example
///
/// ```
/// use sdn_netsim::time::SimDuration;
/// assert_eq!(SimDuration::from_millis(2).as_micros(), 2000);
/// assert!(SimDuration::from_secs(1) > SimDuration::from_millis(999));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from fractional seconds (rounded down to microseconds).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be non-negative"
        );
        SimDuration((secs * 1_000_000.0) as u64)
    }

    /// The duration expressed in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration expressed in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the duration by an integer factor (saturating).
    pub const fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Returns `true` when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 1_500);
        assert_eq!((t - SimTime::from_secs(1)).as_millis(), 500);
        assert_eq!(t.duration_since(SimTime::from_secs(2)), SimDuration::ZERO);
        let mut u = SimTime::ZERO;
        u += SimDuration::from_micros(7);
        assert_eq!(u.as_micros(), 7);
        let mut d = SimDuration::from_millis(1);
        d += SimDuration::from_millis(2);
        assert_eq!(d + SimDuration::from_millis(1), SimDuration::from_millis(4));
        assert_eq!(
            SimDuration::from_millis(4).saturating_mul(3).as_millis(),
            12
        );
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::ZERO.is_zero());
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
