//! Message and byte accounting used by the communication-overhead experiments
//! (paper, Figure 9) and by the throughput experiments (Figures 15–20).

use crate::time::SimTime;
use sdn_topology::NodeId;
use std::collections::BTreeMap;

/// Per-node send/receive/failure counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Messages handed to the network by this node.
    pub sent: u64,
    /// Messages delivered to this node.
    pub received: u64,
    /// Bytes handed to the network by this node.
    pub bytes_sent: u64,
    /// Bytes delivered to this node.
    pub bytes_received: u64,
    /// Messages this node sent that the medium lost (omission failures).
    pub dropped: u64,
    /// Extra copies delivered to this node (duplication failures).
    pub duplicated: u64,
    /// Messages this node sent that had no operational link or live destination.
    pub undeliverable: u64,
}

/// Global counters plus a per-node breakdown, maintained by the simulator.
///
/// # Example
///
/// ```
/// use sdn_netsim::metrics::NetworkMetrics;
/// use sdn_topology::NodeId;
/// let mut m = NetworkMetrics::default();
/// m.record_send(NodeId::new(0), 100);
/// m.record_delivery(NodeId::new(1), 100);
/// assert_eq!(m.total_sent(), 1);
/// assert_eq!(m.node(NodeId::new(1)).received, 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetworkMetrics {
    per_node: BTreeMap<NodeId, NodeCounters>,
}

impl NetworkMetrics {
    /// Records a message of `bytes` bytes sent by `node`.
    pub fn record_send(&mut self, node: NodeId, bytes: usize) {
        let c = self.per_node.entry(node).or_default();
        c.sent += 1;
        c.bytes_sent += bytes as u64;
    }

    /// Records a message of `bytes` bytes delivered to `node`.
    pub fn record_delivery(&mut self, node: NodeId, bytes: usize) {
        let c = self.per_node.entry(node).or_default();
        c.received += 1;
        c.bytes_received += bytes as u64;
    }

    /// Records a message sent by `sender` and lost by the medium (omission failure).
    pub fn record_drop(&mut self, sender: NodeId) {
        self.per_node.entry(sender).or_default().dropped += 1;
    }

    /// Records an extra copy delivered to `receiver` by the medium (duplication
    /// failure).
    pub fn record_duplicate(&mut self, receiver: NodeId) {
        self.per_node.entry(receiver).or_default().duplicated += 1;
    }

    /// Records a message sent by `sender` that could not be delivered at all (no
    /// operational link to the destination, or the destination has fail-stopped).
    pub fn record_undeliverable(&mut self, sender: NodeId) {
        self.per_node.entry(sender).or_default().undeliverable += 1;
    }

    /// The counters for one node (zeroes if the node never sent or received anything).
    pub fn node(&self, node: NodeId) -> NodeCounters {
        self.per_node.get(&node).copied().unwrap_or_default()
    }

    /// Iterates over all nodes with non-zero counters.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeCounters)> + '_ {
        self.per_node.iter().map(|(&n, c)| (n, c))
    }

    /// Total messages sent by all nodes.
    pub fn total_sent(&self) -> u64 {
        self.per_node.values().map(|c| c.sent).sum()
    }

    /// Total messages delivered to all nodes.
    pub fn total_received(&self) -> u64 {
        self.per_node.values().map(|c| c.received).sum()
    }

    /// Total bytes sent by all nodes.
    pub fn total_bytes_sent(&self) -> u64 {
        self.per_node.values().map(|c| c.bytes_sent).sum()
    }

    /// Messages lost to omission failures, summed over all sending nodes.
    pub fn dropped(&self) -> u64 {
        self.per_node.values().map(|c| c.dropped).sum()
    }

    /// Extra copies delivered due to duplication failures, summed over all receiving
    /// nodes.
    pub fn duplicated(&self) -> u64 {
        self.per_node.values().map(|c| c.duplicated).sum()
    }

    /// Messages that had no operational link or live destination, summed over all
    /// sending nodes.
    pub fn undeliverable(&self) -> u64 {
        self.per_node.values().map(|c| c.undeliverable).sum()
    }

    /// The node that sent the most messages, with its count — the "maximum loaded
    /// controller" of the paper's Figure 9 — restricted to the given candidate set.
    pub fn max_sender_among<I>(&self, candidates: I) -> Option<(NodeId, u64)>
    where
        I: IntoIterator<Item = NodeId>,
    {
        candidates
            .into_iter()
            .map(|n| (n, self.node(n).sent))
            .max_by_key(|&(n, sent)| (sent, std::cmp::Reverse(n)))
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        self.per_node.clear();
    }

    /// Snapshot difference: counters in `self` minus counters in `earlier`
    /// (used to measure a single experiment phase).
    pub fn since(&self, earlier: &NetworkMetrics) -> NetworkMetrics {
        let mut out = self.clone();
        for (node, before) in earlier.per_node.iter() {
            let after = out.per_node.entry(*node).or_default();
            after.sent = after.sent.saturating_sub(before.sent);
            after.received = after.received.saturating_sub(before.received);
            after.bytes_sent = after.bytes_sent.saturating_sub(before.bytes_sent);
            after.bytes_received = after.bytes_received.saturating_sub(before.bytes_received);
            after.dropped = after.dropped.saturating_sub(before.dropped);
            after.duplicated = after.duplicated.saturating_sub(before.duplicated);
            after.undeliverable = after.undeliverable.saturating_sub(before.undeliverable);
        }
        out
    }
}

/// A single timestamped sample of a scalar observable, used for time-series outputs
/// such as the throughput curves of Figures 15 and 16.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// When the sample was taken.
    pub at: SimTime,
    /// The observed value.
    pub value: f64,
}

/// An append-only time series of [`Sample`]s.
///
/// # Example
///
/// ```
/// use sdn_netsim::metrics::TimeSeries;
/// use sdn_netsim::time::SimTime;
/// let mut ts = TimeSeries::new("throughput");
/// ts.push(SimTime::from_secs(1), 480.0);
/// ts.push(SimTime::from_secs(2), 500.0);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.mean(), Some(490.0));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    name: String,
    samples: Vec<Sample>,
}

impl TimeSeries {
    /// Creates an empty, named time series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.samples.push(Sample { at, value });
    }

    /// The recorded samples in insertion order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean of the values, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().map(|s| s.value).sum::<f64>() / self.samples.len() as f64)
    }

    /// Minimum value, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|s| s.value)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Maximum value, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|s| s.value)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// The values as a plain vector (timestamps dropped).
    pub fn values(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.value).collect()
    }
}

/// Pearson correlation coefficient of two equally long value sequences.
///
/// Returns `None` when the sequences have different lengths, fewer than two points,
/// or zero variance. Used to regenerate the paper's Table 17.
///
/// # Example
///
/// ```
/// use sdn_netsim::metrics::pearson_correlation;
/// let r = pearson_correlation(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-9);
/// ```
pub fn pearson_correlation(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let n = a.len() as f64;
    let mean_a = a.iter().sum::<f64>() / n;
    let mean_b = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let dx = x - mean_a;
        let dy = y - mean_b;
        cov += dx * dy;
        var_a += dx * dx;
        var_b += dy * dy;
    }
    if var_a == 0.0 || var_b == 0.0 {
        return None;
    }
    Some(cov / (var_a.sqrt() * var_b.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn counters_accumulate() {
        let mut m = NetworkMetrics::default();
        m.record_send(n(0), 10);
        m.record_send(n(0), 20);
        m.record_delivery(n(1), 10);
        m.record_drop(n(0));
        m.record_duplicate(n(1));
        m.record_undeliverable(n(2));
        assert_eq!(m.total_sent(), 2);
        assert_eq!(m.total_received(), 1);
        assert_eq!(m.total_bytes_sent(), 30);
        assert_eq!(m.node(n(0)).sent, 2);
        assert_eq!(m.node(n(1)).received, 1);
        assert_eq!(m.node(n(9)), NodeCounters::default());
        // Failures are attributed to the affected node; totals are derived sums.
        assert_eq!(m.node(n(0)).dropped, 1);
        assert_eq!(m.node(n(1)).duplicated, 1);
        assert_eq!(m.node(n(2)).undeliverable, 1);
        assert_eq!(m.node(n(1)).dropped, 0);
        assert_eq!(m.dropped(), 1);
        assert_eq!(m.duplicated(), 1);
        assert_eq!(m.undeliverable(), 1);
        assert_eq!(m.iter().count(), 3);
    }

    #[test]
    fn max_sender_among_candidates() {
        let mut m = NetworkMetrics::default();
        m.record_send(n(0), 1);
        m.record_send(n(1), 1);
        m.record_send(n(1), 1);
        m.record_send(n(5), 1);
        m.record_send(n(5), 1);
        m.record_send(n(5), 1);
        // Restricting to controllers {0, 1} ignores the busier node 5.
        assert_eq!(m.max_sender_among([n(0), n(1)]), Some((n(1), 2)));
        assert_eq!(m.max_sender_among([]), None);
    }

    #[test]
    fn since_computes_phase_difference() {
        let mut m = NetworkMetrics::default();
        m.record_send(n(0), 10);
        m.record_drop(n(0));
        let snapshot = m.clone();
        m.record_send(n(0), 10);
        m.record_send(n(2), 5);
        m.record_drop(n(0));
        let phase = m.since(&snapshot);
        assert_eq!(phase.node(n(0)).sent, 1);
        assert_eq!(phase.node(n(2)).sent, 1);
        assert_eq!(phase.node(n(0)).dropped, 1);
        assert_eq!(phase.dropped(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = NetworkMetrics::default();
        m.record_send(n(0), 10);
        m.record_drop(n(0));
        m.reset();
        assert_eq!(m.total_sent(), 0);
        assert_eq!(m.dropped(), 0);
    }

    #[test]
    fn time_series_statistics() {
        let mut ts = TimeSeries::new("x");
        assert!(ts.is_empty());
        assert_eq!(ts.mean(), None);
        assert_eq!(ts.min(), None);
        ts.push(SimTime::from_secs(1), 3.0);
        ts.push(SimTime::from_secs(2), 1.0);
        ts.push(SimTime::from_secs(3), 2.0);
        assert_eq!(ts.name(), "x");
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.mean(), Some(2.0));
        assert_eq!(ts.min(), Some(1.0));
        assert_eq!(ts.max(), Some(3.0));
        assert_eq!(ts.values(), vec![3.0, 1.0, 2.0]);
        assert_eq!(ts.samples()[0].at, SimTime::from_secs(1));
    }

    #[test]
    fn correlation_edge_cases() {
        assert_eq!(pearson_correlation(&[1.0], &[1.0]), None);
        assert_eq!(pearson_correlation(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(pearson_correlation(&[1.0, 1.0], &[1.0, 2.0]), None);
        let anti = pearson_correlation(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]).unwrap();
        assert!((anti + 1.0).abs() < 1e-9);
    }
}
