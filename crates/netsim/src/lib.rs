//! Discrete-event network simulator for the Renaissance reproduction.
//!
//! The paper's prototype ran on Mininet (virtual hosts, OVS switches, real kernels);
//! this crate is the simulation substitute: a deterministic, seedable discrete-event
//! simulator that models
//!
//! * the connected topology `Gc` and the operational topology `Go` (Section 2),
//! * per-link behaviour — latency, jitter (a per-packet draw from the *closed*
//!   interval `[0, jitter]`: the configured bound itself is attainable), bandwidth,
//!   packet omission and duplication (the "not rare" transient failures of
//!   Section 3.4.1),
//! * fault injection: temporary and permanent link failures, node fail-stop, node and
//!   link additions (the benign failures of Section 3.4.2),
//! * local topology discovery with a configurable detection delay (the Theta failure
//!   detector of Section 2.2.1),
//! * message and byte accounting (Figure 9) and generic time series (Figures 15–20).
//!
//! Nodes are state machines implementing [`node::Node`]; the key design constraint is
//! that a node can only exchange messages with *direct neighbors*, so any multi-hop
//! communication — including all controller-to-switch traffic — has to be forwarded by
//! the switch state machines themselves. That is what makes the simulated control plane
//! in-band, exactly like the paper's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod link;
pub mod metrics;
pub mod node;
pub mod sim;
pub mod time;

pub use link::{BurstLoss, BurstState, LinkConfig, LinkStatus};
pub use metrics::{NetworkMetrics, TimeSeries};
pub use node::{Context, Node, Payload, TimerId};
pub use sim::{SimConfig, Simulator};
pub use time::{SimDuration, SimTime};
