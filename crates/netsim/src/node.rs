//! The node abstraction: everything that lives at a network location (a Renaissance
//! controller, an abstract switch, or a traffic host) implements [`Node`] and interacts
//! with the world only through its [`Context`] — one hop at a time, which is what makes
//! the control plane genuinely *in-band*.

use crate::time::{SimDuration, SimTime};
use sdn_topology::NodeId;
use std::fmt;

/// A message that can be carried by the simulated network.
///
/// The only requirement beyond `Clone + Debug` is a wire-size estimate, which feeds the
/// byte counters (paper, Lemma 3 discusses message sizes) and the bandwidth model.
pub trait Payload: Clone + fmt::Debug {
    /// Estimated size of this message on the wire, in bytes.
    fn wire_size(&self) -> usize {
        128
    }
}

impl Payload for String {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

impl Payload for Vec<u8> {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

impl Payload for u64 {}
impl Payload for () {}

/// Identifier of a timer registered by a node; the meaning of the value is private to
/// the node that scheduled it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TimerId(pub u64);

/// The behaviour of a simulated node.
///
/// Each callback receives a [`Context`] through which the node can inspect local
/// information (its identifier, the simulated time, the neighbors its local topology
/// discovery currently reports) and produce effects (send a message to a *direct
/// neighbor*, arm a timer). Effects are applied by the simulator after the callback
/// returns, matching the paper's atomic-step execution model (Section 3.2).
pub trait Node<M: Payload> {
    /// Called once when the simulation starts (or when the node is added to a running
    /// simulation). Typically used to arm the first do-forever-loop timer.
    fn on_start(&mut self, _ctx: &mut Context<M>) {}

    /// Called when a message from a direct neighbor is delivered to this node.
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Context<M>);

    /// Called when a previously scheduled timer fires.
    fn on_timer(&mut self, _timer: TimerId, _ctx: &mut Context<M>) {}
}

/// The interface a node uses to observe and affect the network during a callback.
///
/// Sends are restricted to direct neighbors: the simulator refuses to deliver a message
/// to a node that is not adjacent in the current connected topology, so multi-hop
/// communication *must* go through switch forwarding — the in-band constraint at the
/// heart of the paper.
#[derive(Debug)]
pub struct Context<M: Payload> {
    node: NodeId,
    now: SimTime,
    /// Lent by the simulator for the duration of the callback and moved back
    /// afterwards (see `Simulator::run_callback`).
    pub(crate) neighbors: Vec<NodeId>,
    random: u64,
    pub(crate) outbox: Vec<(NodeId, M)>,
    pub(crate) timers: Vec<(SimDuration, TimerId)>,
}

impl<M: Payload> Context<M> {
    #[cfg(test)]
    pub(crate) fn new(node: NodeId, now: SimTime, neighbors: Vec<NodeId>, random: u64) -> Self {
        Context::with_buffers(node, now, neighbors, random, Vec::new(), Vec::new())
    }

    /// Like [`Context::new`], but the effect buffers are lent by the caller (the
    /// simulator recycles one outbox/timer pair across all callbacks of a run, so
    /// the hot loop allocates nothing per event).
    pub(crate) fn with_buffers(
        node: NodeId,
        now: SimTime,
        neighbors: Vec<NodeId>,
        random: u64,
        outbox: Vec<(NodeId, M)>,
        timers: Vec<(SimDuration, TimerId)>,
    ) -> Self {
        debug_assert!(outbox.is_empty() && timers.is_empty());
        Context {
            node,
            now,
            neighbors,
            random,
            outbox,
            timers,
        }
    }

    /// The identifier of the node this callback runs at.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The neighbors currently reported by the local topology-discovery mechanism
    /// (the paper's `Nc(i)` as observed through the Theta failure detector): failed
    /// links and fail-stopped neighbors disappear after the configured detection delay.
    pub fn neighbors(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// Returns `true` when `other` is currently observed as a direct neighbor.
    pub fn is_neighbor(&self, other: NodeId) -> bool {
        self.neighbors.contains(&other)
    }

    /// A pseudo-random value drawn by the simulator for this callback, usable for
    /// symmetry breaking without giving nodes access to a full RNG.
    pub fn random(&self) -> u64 {
        self.random
    }

    /// Sends `msg` to the direct neighbor `to`.
    ///
    /// The message is silently discarded (and counted as undeliverable) if `to` is not
    /// an operational direct neighbor when the send is processed.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Sends a copy of `msg` to every currently observed neighbor, in ascending
    /// identifier order — the borrow-friendly replacement for the old
    /// `for n in ctx.neighbors().to_vec() { ctx.send(n, msg.clone()) }` idiom.
    pub fn broadcast(&mut self, msg: M) {
        for i in 0..self.neighbors.len() {
            let to = self.neighbors[i];
            self.outbox.push((to, msg.clone()));
        }
    }

    /// Arms a timer that fires after `delay`; the timer identifier is passed back to
    /// [`Node::on_timer`].
    pub fn schedule(&mut self, delay: SimDuration, timer: TimerId) {
        self.timers.push((delay, timer));
    }

    /// Number of messages queued for sending by this callback so far.
    pub fn queued_sends(&self) -> usize {
        self.outbox.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_default_sizes() {
        assert_eq!(42u64.wire_size(), 128);
        assert_eq!(().wire_size(), 128);
        assert_eq!("abcd".to_string().wire_size(), 4);
        assert_eq!(vec![0u8; 9].wire_size(), 9);
    }

    #[test]
    fn context_accessors_and_effects() {
        let mut ctx: Context<u64> = Context::new(
            NodeId::new(3),
            SimTime::from_secs(2),
            vec![NodeId::new(1), NodeId::new(2)],
            77,
        );
        assert_eq!(ctx.id(), NodeId::new(3));
        assert_eq!(ctx.now(), SimTime::from_secs(2));
        assert_eq!(ctx.neighbors().len(), 2);
        assert!(ctx.is_neighbor(NodeId::new(1)));
        assert!(!ctx.is_neighbor(NodeId::new(9)));
        assert_eq!(ctx.random(), 77);
        ctx.send(NodeId::new(1), 5);
        ctx.send(NodeId::new(2), 6);
        ctx.schedule(SimDuration::from_millis(10), TimerId(1));
        assert_eq!(ctx.queued_sends(), 2);
        assert_eq!(ctx.outbox.len(), 2);
        assert_eq!(ctx.timers.len(), 1);
    }
}
