//! A genuinely bounded-domain tag generator with explicit recycling.
//!
//! The main [`crate::TagGenerator`] relies on a 64-bit counter that is "practically"
//! never exhausted. This module shows how to obtain the same interface from a *bounded*
//! tag domain, in the spirit of Alon et al. \[20\]: tags take values in
//! `0..domain_size`, and when the generator is about to run out of fresh values (which
//! after a transient fault can happen immediately, e.g. if the counter was corrupted to
//! the maximum), it *recycles* by picking the smallest value that it has not observed in
//! the system during the last observation round. As long as the number of tags that can
//! simultaneously exist in the system (switch meta-rules, replies in `replyDB`, messages
//! in transit) is smaller than the domain, a fresh value always exists.
//!
//! The price is exactly the paper's `Delta_synch`: after a corruption, one full round of
//! observations may be needed before the recycled values are safe to reuse.

use crate::Tag;
use std::collections::BTreeSet;

/// Bounded-domain `nextTag()` generator with recycling.
///
/// # Example
///
/// ```
/// use sdn_tags::bounded::BoundedTagGenerator;
/// use sdn_tags::Tag;
/// let mut gen = BoundedTagGenerator::new(1, 8);
/// let t = gen.next_tag();
/// assert!(t.value() < 8);
/// // Tell the generator which tags are still present in the system:
/// gen.begin_observation_round();
/// gen.observe(t);
/// gen.end_observation_round();
/// let t2 = gen.next_tag();
/// assert_ne!(t2, t);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundedTagGenerator {
    owner: u32,
    domain_size: u64,
    next_candidate: u64,
    /// Tags observed during the current (incomplete) observation round.
    observing: BTreeSet<u64>,
    /// Tags known to exist in the system after the last completed observation round.
    in_use: BTreeSet<u64>,
}

impl BoundedTagGenerator {
    /// Creates a bounded generator for controller `owner` over `0..domain_size`.
    ///
    /// # Panics
    ///
    /// Panics if `domain_size < 2`.
    pub fn new(owner: u32, domain_size: u64) -> Self {
        assert!(domain_size >= 2, "tag domain must have at least two values");
        BoundedTagGenerator {
            owner,
            domain_size,
            next_candidate: 1,
            observing: BTreeSet::new(),
            in_use: BTreeSet::new(),
        }
    }

    /// The controller this generator belongs to.
    pub fn owner(&self) -> u32 {
        self.owner
    }

    /// The size of the tag domain.
    pub fn domain_size(&self) -> u64 {
        self.domain_size
    }

    /// Starts a new observation round; observations accumulate until
    /// [`BoundedTagGenerator::end_observation_round`].
    pub fn begin_observation_round(&mut self) {
        self.observing.clear();
    }

    /// Records a tag observed in the system during the current observation round.
    /// Tags of other owners are ignored: uniqueness only needs to hold per owner.
    pub fn observe(&mut self, tag: Tag) {
        if tag.owner() == self.owner {
            self.observing.insert(tag.value() % self.domain_size);
        }
    }

    /// Completes the observation round: the observed set becomes the authoritative
    /// "still in use" set for recycling decisions.
    pub fn end_observation_round(&mut self) {
        self.in_use = std::mem::take(&mut self.observing);
    }

    /// Produces the next tag: the smallest domain value, starting from the last
    /// candidate, that is not known to be in use.
    ///
    /// If every value appears to be in use (only possible transiently, when corrupted
    /// observations claim the whole domain), the candidate counter advances anyway;
    /// uniqueness is then restored after the next observation round, which is the
    /// `Delta_synch` cost the paper accounts for.
    pub fn next_tag(&mut self) -> Tag {
        for _ in 0..self.domain_size {
            let candidate = self.next_candidate % self.domain_size;
            self.next_candidate = (self.next_candidate + 1) % self.domain_size;
            if !self.in_use.contains(&candidate) {
                self.in_use.insert(candidate);
                return Tag::new(self.owner, candidate);
            }
        }
        // Degenerate, transiently-corrupted case: all values claimed.
        let candidate = self.next_candidate % self.domain_size;
        self.next_candidate = (self.next_candidate + 1) % self.domain_size;
        Tag::new(self.owner, candidate)
    }

    /// Simulates a transient fault by overwriting internal state (test helper).
    pub fn corrupt(&mut self, next_candidate: u64, in_use: impl IntoIterator<Item = u64>) {
        self.next_candidate = next_candidate;
        self.in_use = in_use.into_iter().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_values_within_domain() {
        let mut gen = BoundedTagGenerator::new(3, 5);
        assert_eq!(gen.owner(), 3);
        assert_eq!(gen.domain_size(), 5);
        for _ in 0..20 {
            let t = gen.next_tag();
            assert!(t.value() < 5);
            assert_eq!(t.owner(), 3);
        }
    }

    #[test]
    fn fresh_tags_avoid_observed_values() {
        let mut gen = BoundedTagGenerator::new(0, 16);
        gen.begin_observation_round();
        for v in [1u64, 2, 3, 4] {
            gen.observe(Tag::new(0, v));
        }
        gen.end_observation_round();
        let t = gen.next_tag();
        assert!(![1, 2, 3, 4].contains(&t.value()), "got {t}");
    }

    #[test]
    fn observations_of_other_owners_are_ignored() {
        let mut gen = BoundedTagGenerator::new(0, 4);
        gen.begin_observation_round();
        for v in 0..4u64 {
            gen.observe(Tag::new(7, v)); // different owner
        }
        gen.end_observation_round();
        // All values are still considered free for owner 0.
        let t = gen.next_tag();
        assert_eq!(t.owner(), 0);
    }

    #[test]
    fn recycles_after_wraparound() {
        let mut gen = BoundedTagGenerator::new(0, 4);
        let mut produced = Vec::new();
        for _ in 0..3 {
            produced.push(gen.next_tag().value());
        }
        // Simulate the system now only holding the most recent tag.
        gen.begin_observation_round();
        gen.observe(Tag::new(0, *produced.last().unwrap()));
        gen.end_observation_round();
        let next = gen.next_tag();
        assert_ne!(next.value(), *produced.last().unwrap());
    }

    #[test]
    fn corrupted_state_recovers_after_one_observation_round() {
        let mut gen = BoundedTagGenerator::new(0, 8);
        // Transient fault: generator believes every value is in use.
        gen.corrupt(5, 0..8);
        let _ = gen.next_tag(); // degenerate output allowed here
                                // One observation round later, reality (only tag 2 in use) is restored.
        gen.begin_observation_round();
        gen.observe(Tag::new(0, 2));
        gen.end_observation_round();
        let t = gen.next_tag();
        assert_ne!(t.value(), 2);
        assert!(t.value() < 8);
    }

    #[test]
    #[should_panic(expected = "at least two values")]
    fn tiny_domain_rejected() {
        let _ = BoundedTagGenerator::new(0, 1);
    }
}
