//! Self-stabilizing round-synchronization tags for the Renaissance control plane.
//!
//! Every Renaissance controller accesses the switches in *synchronization rounds*, each
//! identified by a tag that is unique system-wide during legal executions (paper,
//! Section 4.2). The paper assumes a self-stabilizing tag algorithm in the style of
//! Alon et al. \[20\]; this crate provides:
//!
//! * [`Tag`] — an owner-qualified, totally ordered tag value,
//! * [`TagGenerator`] — a practically-self-stabilizing `nextTag()` implementation: the
//!   next tag is strictly larger than every tag the controller has *observed* anywhere
//!   in the system, so even if a transient fault plants arbitrary tags in switches,
//!   channels, or the generator itself, one observation pass is enough to jump past
//!   them (the counter space of `2^64` values makes wrap-around practically
//!   unreachable, the standard "practically stabilizing" argument),
//! * [`bounded`] — a genuinely bounded-domain variant with explicit epoch recycling,
//!   demonstrating how the unbounded counter can be avoided at the cost of the
//!   `Delta_synch` recovery rounds the paper accounts for,
//! * [`RoundTracker`] — the `currTag` / `prevTag` bookkeeping of Algorithm 2, including
//!   the third `beforePrevTag` slot used by the evaluation variant (Section 6.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded;

use std::fmt;

/// Number of synchronization rounds the round-synchronization machinery may need to
/// recover after a transient fault (the paper's `Delta_synch`). For this tag scheme a
/// single full observation round suffices, but we keep the constant explicit because the
/// analysis (Theorem 2) is parameterized by it.
pub const DELTA_SYNCH: usize = 1;

/// A synchronization-round tag: unique per owner during legal executions.
///
/// Tags are ordered by `(value, owner)` so that "strictly newer than anything observed"
/// is well defined across owners.
///
/// # Example
///
/// ```
/// use sdn_tags::Tag;
/// let a = Tag::new(3, 10);
/// let b = Tag::new(5, 11);
/// assert!(b > a);
/// assert_eq!(a.owner(), 3);
/// assert_eq!(a.value(), 10);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tag {
    value: u64,
    owner: u32,
}

impl Tag {
    /// A tag that precedes every tag any generator will ever produce.
    pub const ZERO: Tag = Tag { value: 0, owner: 0 };

    /// Creates a tag owned by controller `owner` with the given counter value.
    pub const fn new(owner: u32, value: u64) -> Self {
        Tag { value, owner }
    }

    /// The controller that generated this tag.
    pub const fn owner(self) -> u32 {
        self.owner
    }

    /// The counter component of this tag.
    pub const fn value(self) -> u64 {
        self.value
    }
}

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}@c{}", self.value, self.owner)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}@c{}", self.value, self.owner)
    }
}

/// Practically-self-stabilizing `nextTag()` generator.
///
/// The generator remembers the largest counter value it has produced *or observed*; the
/// next tag uses that value plus one. Feeding every tag seen in query replies back via
/// [`TagGenerator::observe`] guarantees that, one round after the last transient fault,
/// freshly generated tags are unique in the system.
///
/// # Example
///
/// ```
/// use sdn_tags::{Tag, TagGenerator};
/// let mut gen = TagGenerator::new(2);
/// let t1 = gen.next_tag();
/// gen.observe(Tag::new(9, 100)); // a (possibly corrupted) tag seen in a reply
/// let t2 = gen.next_tag();
/// assert!(t2 > t1);
/// assert!(t2.value() > 100);
/// assert_eq!(t2.owner(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TagGenerator {
    owner: u32,
    last_value: u64,
}

impl TagGenerator {
    /// Creates a generator for controller `owner`.
    pub fn new(owner: u32) -> Self {
        TagGenerator {
            owner,
            last_value: 0,
        }
    }

    /// The controller this generator belongs to.
    pub fn owner(&self) -> u32 {
        self.owner
    }

    /// Incorporates a tag observed anywhere in the system (query replies, switch rules,
    /// channel contents). Future tags will be strictly larger.
    pub fn observe(&mut self, tag: Tag) {
        self.last_value = self.last_value.max(tag.value());
    }

    /// Incorporates every tag of an iterator.
    pub fn observe_all<I: IntoIterator<Item = Tag>>(&mut self, tags: I) {
        for tag in tags {
            self.observe(tag);
        }
    }

    /// Generates the next tag: strictly larger than everything generated or observed.
    pub fn next_tag(&mut self) -> Tag {
        self.last_value = self.last_value.saturating_add(1);
        Tag::new(self.owner, self.last_value)
    }

    /// Simulates a transient fault by overwriting the internal counter (test helper).
    pub fn corrupt(&mut self, value: u64) {
        self.last_value = value;
    }
}

/// The `currTag` / `prevTag` (and optional `beforePrevTag`) bookkeeping of Algorithm 2.
///
/// The controller starts a new round by calling [`RoundTracker::start_round`] with a
/// fresh tag; the tracker shifts the previous tags down one slot. The third slot is only
/// populated when the tracker is created with [`RoundTracker::with_three_tags`], which
/// is the variation used by the paper's evaluation (Section 6.2) so that the rules of
/// the previous round survive one extra round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundTracker {
    curr: Tag,
    prev: Tag,
    before_prev: Option<Tag>,
    three_tags: bool,
    rounds: u64,
}

impl RoundTracker {
    /// Creates a two-tag tracker (plain Algorithm 2).
    pub fn new(initial: Tag) -> Self {
        RoundTracker {
            curr: initial,
            prev: initial,
            before_prev: None,
            three_tags: false,
            rounds: 0,
        }
    }

    /// Creates a three-tag tracker (the Section 6.2 evaluation variant).
    pub fn with_three_tags(initial: Tag) -> Self {
        RoundTracker {
            curr: initial,
            prev: initial,
            before_prev: Some(initial),
            three_tags: true,
            rounds: 0,
        }
    }

    /// The current round's tag (`currTag`).
    pub fn curr(&self) -> Tag {
        self.curr
    }

    /// The previous round's tag (`prevTag`).
    pub fn prev(&self) -> Tag {
        self.prev
    }

    /// The round-before-previous tag, present only in three-tag mode.
    pub fn before_prev(&self) -> Option<Tag> {
        self.before_prev
    }

    /// Number of rounds started through this tracker.
    pub fn rounds_started(&self) -> u64 {
        self.rounds
    }

    /// Returns `true` when `tag` matches the current or previous round
    /// (or the round before that, in three-tag mode).
    pub fn is_live(&self, tag: Tag) -> bool {
        tag == self.curr || tag == self.prev || (self.three_tags && self.before_prev == Some(tag))
    }

    /// Starts a new round with `new_tag`: `prevTag <- currTag`, `currTag <- new_tag`
    /// (and `beforePrevTag <- prevTag` in three-tag mode).
    pub fn start_round(&mut self, new_tag: Tag) {
        if self.three_tags {
            self.before_prev = Some(self.prev);
        }
        self.prev = self.curr;
        self.curr = new_tag;
        self.rounds += 1;
    }

    /// Simulates a transient fault corrupting the tracker (test helper).
    pub fn corrupt(&mut self, curr: Tag, prev: Tag) {
        self.curr = curr;
        self.prev = prev;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_order_by_value_then_owner() {
        assert!(Tag::new(0, 2) > Tag::new(9, 1));
        assert!(Tag::new(2, 5) > Tag::new(1, 5));
        assert_eq!(Tag::new(1, 5), Tag::new(1, 5));
        assert_eq!(Tag::ZERO.value(), 0);
        assert_eq!(format!("{}", Tag::new(3, 7)), "t7@c3");
        assert_eq!(format!("{:?}", Tag::new(3, 7)), "t7@c3");
    }

    #[test]
    fn generator_produces_strictly_increasing_tags() {
        let mut gen = TagGenerator::new(4);
        assert_eq!(gen.owner(), 4);
        let mut last = Tag::ZERO;
        for _ in 0..100 {
            let t = gen.next_tag();
            assert!(t > last);
            assert_eq!(t.owner(), 4);
            last = t;
        }
    }

    #[test]
    fn observation_jumps_past_corrupted_tags() {
        let mut gen = TagGenerator::new(1);
        gen.observe_all([Tag::new(2, 50), Tag::new(3, 10_000), Tag::new(1, 7)]);
        let t = gen.next_tag();
        assert_eq!(t.value(), 10_001);
        // Observing something older never moves the counter backwards.
        gen.observe(Tag::new(9, 3));
        assert_eq!(gen.next_tag().value(), 10_002);
    }

    #[test]
    fn generator_recovers_after_corruption() {
        let mut gen = TagGenerator::new(1);
        gen.corrupt(u64::MAX - 1);
        let t = gen.next_tag();
        assert_eq!(t.value(), u64::MAX);
        // Saturating add keeps producing the maximum rather than wrapping to stale values.
        assert_eq!(gen.next_tag().value(), u64::MAX);
    }

    #[test]
    fn two_generators_never_collide() {
        let mut a = TagGenerator::new(1);
        let mut b = TagGenerator::new(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..50 {
            assert!(seen.insert(a.next_tag()));
            assert!(seen.insert(b.next_tag()));
        }
    }

    #[test]
    fn round_tracker_two_tag_rotation() {
        let mut gen = TagGenerator::new(0);
        let t0 = gen.next_tag();
        let mut tracker = RoundTracker::new(t0);
        assert_eq!(tracker.curr(), t0);
        assert_eq!(tracker.prev(), t0);
        assert_eq!(tracker.before_prev(), None);
        let t1 = gen.next_tag();
        tracker.start_round(t1);
        assert_eq!(tracker.curr(), t1);
        assert_eq!(tracker.prev(), t0);
        assert_eq!(tracker.rounds_started(), 1);
        assert!(tracker.is_live(t0));
        assert!(tracker.is_live(t1));
        let t2 = gen.next_tag();
        tracker.start_round(t2);
        assert!(!tracker.is_live(t0), "two-tag tracker forgets older rounds");
    }

    #[test]
    fn round_tracker_three_tag_keeps_one_extra_round() {
        let mut gen = TagGenerator::new(0);
        let t0 = gen.next_tag();
        let mut tracker = RoundTracker::with_three_tags(t0);
        let t1 = gen.next_tag();
        let t2 = gen.next_tag();
        tracker.start_round(t1);
        tracker.start_round(t2);
        assert_eq!(tracker.before_prev(), Some(t0));
        assert!(
            tracker.is_live(t0),
            "three-tag tracker keeps the extra round"
        );
        let t3 = gen.next_tag();
        tracker.start_round(t3);
        assert!(!tracker.is_live(t0));
        assert!(tracker.is_live(t1));
    }

    #[test]
    fn corrupted_tracker_can_be_overwritten() {
        let mut tracker = RoundTracker::new(Tag::new(0, 1));
        tracker.corrupt(Tag::new(5, 99), Tag::new(5, 98));
        assert_eq!(tracker.curr(), Tag::new(5, 99));
        tracker.start_round(Tag::new(0, 200));
        assert_eq!(tracker.prev(), Tag::new(5, 99));
        assert_eq!(tracker.curr(), Tag::new(0, 200));
    }
}
