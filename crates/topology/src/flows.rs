//! kappa-fault-resilient flow computation — the routing brain behind `myRules()`.
//!
//! The paper (Section 2.2.2) requires that the rules a controller installs encode, for
//! every destination, a *primary* path (the first shortest path, highest priority) plus
//! failover alternatives so that communication survives up to `kappa` link failures.
//! The prototype realised this with BFS paths and OpenFlow *fast-failover groups*; we
//! reproduce the same semantics with per-switch, per-destination **priority-ordered
//! next-hop sets**: priority 0 (highest) is the first-shortest-path next hop, priority
//! `k` is the best next hop once the `k` better ones are unavailable.
//!
//! The forwarding engine in `sdn-switch` picks the highest-priority rule whose out-link
//! is currently operational, which is exactly the fast-failover group behaviour.

use crate::flat::{BfsScratch, FlatGraph};
use crate::graph::Graph;
use crate::ids::NodeId;
use std::collections::BTreeMap;

/// A priority-ordered list of candidate next hops from one node towards a destination.
///
/// Index 0 is the primary (first-shortest-path) next hop; index `k` is the `k`-th
/// failover alternative. The list never contains duplicates and never exceeds
/// `kappa + 1` entries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NextHopSet {
    hops: Vec<NodeId>,
}

impl NextHopSet {
    /// Creates a next-hop set from an ordered list of candidates.
    pub fn new(hops: Vec<NodeId>) -> Self {
        NextHopSet { hops }
    }

    /// The primary next hop, if any.
    pub fn primary(&self) -> Option<NodeId> {
        self.hops.first().copied()
    }

    /// The candidate at the given priority level (0 = primary).
    pub fn at_priority(&self, level: usize) -> Option<NodeId> {
        self.hops.get(level).copied()
    }

    /// Iterates over the candidates in priority order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.hops.iter().copied()
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Returns `true` when there is no candidate at all (destination unreachable).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The first candidate whose out-link is reported operational by `is_up`,
    /// mimicking a fast-failover group evaluation.
    pub fn first_operational<F>(&self, mut is_up: F) -> Option<NodeId>
    where
        F: FnMut(NodeId) -> bool,
    {
        self.hops.iter().copied().find(|&h| is_up(h))
    }
}

/// All-pairs kappa-fault-resilient next-hop plan over a topology snapshot.
///
/// For every ordered pair `(at, towards)` of distinct nodes the plan stores a
/// [`NextHopSet`]. Controllers derive their switch rules from this plan; the data-plane
/// traffic model uses it directly to route host packets.
///
/// # Example
///
/// ```
/// use sdn_topology::{Graph, NodeId, FlowPlanner};
/// let g = Graph::from_links([
///     (NodeId::new(0), NodeId::new(1)),
///     (NodeId::new(1), NodeId::new(2)),
///     (NodeId::new(2), NodeId::new(0)),
/// ]);
/// let plan = FlowPlanner::new(1).plan(&g);
/// let hops = plan.next_hops(NodeId::new(0), NodeId::new(2)).unwrap();
/// assert_eq!(hops.primary(), Some(NodeId::new(2)));   // direct link
/// assert_eq!(hops.at_priority(1), Some(NodeId::new(1))); // detour via 1
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlowPlan {
    kappa: usize,
    next_hops: BTreeMap<(NodeId, NodeId), NextHopSet>,
    distances: BTreeMap<(NodeId, NodeId), u32>,
}

impl FlowPlan {
    /// The `kappa` this plan was computed for.
    pub fn kappa(&self) -> usize {
        self.kappa
    }

    /// The next-hop set stored for packets at `at` going towards `towards`.
    pub fn next_hops(&self, at: NodeId, towards: NodeId) -> Option<&NextHopSet> {
        self.next_hops.get(&(at, towards))
    }

    /// The shortest-path distance between the pair, if connected.
    pub fn distance(&self, from: NodeId, to: NodeId) -> Option<u32> {
        if from == to {
            return Some(0);
        }
        self.distances.get(&(from, to)).copied()
    }

    /// Iterates over every `(at, towards)` pair with its next-hop set.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId, &NextHopSet)> + '_ {
        self.next_hops.iter().map(|(&(a, t), s)| (a, t, s))
    }

    /// Iterates over the next-hop sets stored for packets at `at`, in ascending
    /// destination order — one ordered range scan instead of a tree lookup per
    /// destination, which is what makes `myRules()` linear in the rule count.
    pub fn next_hops_from(&self, at: NodeId) -> impl Iterator<Item = (NodeId, &NextHopSet)> + '_ {
        self.next_hops
            .range((at, NodeId::new(0))..=(at, NodeId::new(u32::MAX)))
            .map(|(&(_, t), s)| (t, s))
    }

    /// Number of `(at, towards)` entries in the plan.
    pub fn len(&self) -> usize {
        self.next_hops.len()
    }

    /// Returns `true` when the plan holds no entries (e.g. planned over an empty graph).
    pub fn is_empty(&self) -> bool {
        self.next_hops.is_empty()
    }

    /// Simulates forwarding a packet from `from` to `to` under the given set of failed
    /// links, returning the traversed path (inclusive) or `None` if the packet is
    /// dropped (no operational candidate or TTL exhausted).
    ///
    /// The forwarding semantics is the data-plane depth-first traversal of
    /// Borokhovich–Schiff–Schmid (the paper's building block \[6\]): at every node the
    /// packet tries the candidate next hops in priority order, skipping non-operational
    /// links and already-visited nodes, and *bounces back* to the previous hop when it
    /// is stuck. As long as the operational graph is connected and every candidate set
    /// covers all neighbors, the packet is guaranteed to reach its destination, which is
    /// how the paper obtains kappa-fault-resilient flows.
    ///
    /// This is the reference semantics used by the property tests to check
    /// kappa-fault resilience, and by the traffic model to route host packets.
    pub fn route<F>(
        &self,
        from: NodeId,
        to: NodeId,
        mut link_up: F,
        ttl: usize,
    ) -> Option<Vec<NodeId>>
    where
        F: FnMut(NodeId, NodeId) -> bool,
    {
        if from == to {
            return Some(vec![from]);
        }
        // Depth-first traversal with backtracking; `stack` holds the current trail.
        let mut path = vec![from];
        let mut stack = vec![from];
        let mut visited = std::collections::BTreeSet::new();
        visited.insert(from);
        let mut hops = 0usize;
        while let Some(&cur) = stack.last() {
            if cur == to {
                return Some(path);
            }
            if hops >= ttl {
                return None;
            }
            let next = self.next_hops(cur, to).and_then(|set| {
                set.iter()
                    .find(|&h| !visited.contains(&h) && link_up(cur, h))
            });
            match next {
                Some(h) => {
                    visited.insert(h);
                    stack.push(h);
                    path.push(h);
                    hops += 1;
                }
                None => {
                    // Bounce back towards the previous hop (consumes one hop of TTL).
                    stack.pop();
                    if let Some(&prev) = stack.last() {
                        path.push(prev);
                        hops += 1;
                    }
                }
            }
        }
        None
    }
}

/// Computes [`FlowPlan`]s for a fixed resilience level `kappa`.
///
/// The planner is stateless apart from its configuration; call [`FlowPlanner::plan`]
/// with a fresh topology snapshot whenever the discovered topology changes (each
/// controller does this once per synchronization round).
///
/// By default every neighbor of a node is a failover candidate (the paper's Lemma 3
/// observes that `nprt >= Delta + 1` priorities suffice to express all rules), which
/// combined with the bounce-back forwarding of [`FlowPlan::route`] guarantees delivery
/// whenever the operational graph stays connected — in particular under any `kappa`
/// failures on a `(kappa + 1)`-edge-connected topology. [`FlowPlanner::with_max_candidates`]
/// trades that guarantee for smaller rule tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowPlanner {
    kappa: usize,
    max_candidates: Option<usize>,
}

impl Default for FlowPlanner {
    fn default() -> Self {
        FlowPlanner {
            kappa: 1,
            max_candidates: None,
        }
    }
}

impl FlowPlanner {
    /// Creates a planner that targets resilience against `kappa` link failures.
    pub fn new(kappa: usize) -> Self {
        FlowPlanner {
            kappa,
            max_candidates: None,
        }
    }

    /// Limits the number of failover candidates (priority levels) per destination.
    ///
    /// A limit of 1 keeps only the primary next hop (`kappa = 0` behaviour); `None`
    /// (the default) keeps every neighbor.
    pub fn with_max_candidates(mut self, max_candidates: usize) -> Self {
        self.max_candidates = Some(max_candidates.max(1));
        self
    }

    /// The configured resilience level.
    pub fn kappa(&self) -> usize {
        self.kappa
    }

    /// The configured candidate limit, if any.
    pub fn max_candidates(&self) -> Option<usize> {
        self.max_candidates
    }

    /// Computes the all-pairs next-hop plan over `graph`.
    ///
    /// For every destination `t` we run one BFS (from `t`), then every other node `j`
    /// ranks its neighbors by `(distance(neighbor, t), neighbor id)` and keeps the best
    /// candidates (all of them by default). The first candidate is therefore the
    /// first-shortest-path next hop; the others are the local fast-failover
    /// alternatives, in decreasing priority.
    pub fn plan(&self, graph: &Graph) -> FlowPlan {
        self.plan_restricted(graph, &std::collections::BTreeSet::new())
    }

    /// Like [`FlowPlanner::plan`], but the nodes in `non_transit` are never used as
    /// intermediate hops — only as flow endpoints.
    ///
    /// Renaissance uses this to keep controllers out of the forwarding paths: SDN
    /// controllers do not forward packets (only switches store rules), so a flow from
    /// controller `i` to node `d` must only relay through switches, even when a path
    /// through another controller would be shorter (paper, Section 1: "not all nodes can
    /// compute and communicate").
    pub fn plan_restricted(
        &self,
        graph: &Graph,
        non_transit: &std::collections::BTreeSet<NodeId>,
    ) -> FlowPlan {
        let limit = self.max_candidates.unwrap_or(usize::MAX);
        // Distances towards a target are computed over the graph without the other
        // non-transit nodes: paths may start or end at a non-transit node but never
        // pass through one. That search graph is *identical* for every
        // transit-capable target, so it is built and snapshot once; only the few
        // non-transit targets (the controllers) need a per-target variant that keeps
        // the target itself. One scratch serves every BFS.
        let mut scratch = BfsScratch::new();
        let full = graph.snapshot();
        let n = full.node_count();
        let base: FlatGraph = if non_transit.is_empty() {
            graph.snapshot()
        } else {
            graph.without_nodes(non_transit.iter()).snapshot()
        };
        // Everything below works on dense indices of the full snapshot: per-node
        // translation tables and one distance matrix replace the per-neighbor
        // binary searches and set probes of the naive formulation.
        let to_base: Vec<Option<u32>> = full
            .node_ids()
            .iter()
            .map(|&id| base.index_of(id))
            .collect();
        let endpoint_only: Vec<bool> = full
            .node_ids()
            .iter()
            .map(|id| non_transit.contains(id))
            .collect();
        let mut dist: Vec<u32> = vec![u32::MAX; n * n];
        for ti in 0..n {
            let row = &mut dist[ti * n..(ti + 1) * n];
            if endpoint_only[ti] {
                let target = full.node_at(ti as u32);
                let restricted: Vec<NodeId> = non_transit
                    .iter()
                    .copied()
                    .filter(|&x| x != target)
                    .collect();
                let per_target = graph.without_nodes(restricted.iter()).snapshot();
                let Some(target_idx) = per_target.index_of(target) else {
                    continue;
                };
                per_target.bfs(target_idx, &mut scratch);
                for (fi, slot) in row.iter_mut().enumerate() {
                    if let Some(pi) = per_target.index_of(full.node_at(fi as u32)) {
                        if let Some(d) = scratch.distance(pi) {
                            *slot = d;
                        }
                    }
                }
            } else {
                let Some(target_idx) = to_base[ti] else {
                    continue;
                };
                base.bfs(target_idx, &mut scratch);
                for (fi, slot) in row.iter_mut().enumerate() {
                    if let Some(bi) = to_base[fi] {
                        if let Some(d) = scratch.distance(bi) {
                            *slot = d;
                        }
                    }
                }
            }
        }
        // Assemble with `at` as the outer loop so both maps build from key-sorted
        // pairs (one bulk construction each instead of per-pair tree inserts).
        let mut next_hops_v: Vec<((NodeId, NodeId), NextHopSet)> = Vec::new();
        let mut distances_v: Vec<((NodeId, NodeId), u32)> = Vec::new();
        let mut candidates: Vec<(u32, NodeId)> = Vec::new();
        for ai in 0..n {
            let at = full.node_at(ai as u32);
            for ti in 0..n {
                if ti == ai {
                    continue;
                }
                let target = full.node_at(ti as u32);
                candidates.clear();
                for &hi in full.neighbor_indices(ai as u32) {
                    if endpoint_only[hi as usize] && hi as usize != ti {
                        continue;
                    }
                    let d = dist[ti * n + hi as usize];
                    if d != u32::MAX {
                        candidates.push((d, full.node_at(hi)));
                    }
                }
                candidates.sort();
                // For transit-capable nodes the distance comes from the restricted
                // BFS; endpoint-only nodes sit one hop above their best transit
                // neighbor.
                let d_at = if endpoint_only[ai] {
                    candidates.first().map(|&(d, _)| d + 1)
                } else {
                    let d = dist[ti * n + ai];
                    (d != u32::MAX).then_some(d)
                };
                let Some(d_at) = d_at else {
                    continue; // disconnected pair under the transit restriction
                };
                distances_v.push(((at, target), d_at));
                if !candidates.is_empty() {
                    let hops: Vec<NodeId> =
                        candidates.iter().take(limit).map(|&(_, h)| h).collect();
                    next_hops_v.push(((at, target), NextHopSet::new(hops)));
                }
            }
        }
        FlowPlan {
            kappa: self.kappa,
            next_hops: next_hops_v.into_iter().collect(),
            distances: distances_v.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Link;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// A 2-edge-connected graph: a 5-cycle with one chord.
    fn cycle_with_chord() -> Graph {
        Graph::from_links([
            (n(0), n(1)),
            (n(1), n(2)),
            (n(2), n(3)),
            (n(3), n(4)),
            (n(4), n(0)),
            (n(1), n(3)),
        ])
    }

    #[test]
    fn primary_hop_follows_shortest_path() {
        let g = cycle_with_chord();
        let plan = FlowPlanner::new(1).plan(&g);
        // From 0 to 3: shortest is 0-1-3 (distance 2) or 0-4-3; lowest-index neighbor at
        // equal distance wins, so primary hop is 1.
        let hops = plan.next_hops(n(0), n(3)).unwrap();
        assert_eq!(hops.primary(), Some(n(1)));
        assert_eq!(plan.distance(n(0), n(3)), Some(2));
        assert_eq!(plan.distance(n(3), n(3)), Some(0));
    }

    #[test]
    fn backup_hop_differs_from_primary() {
        let g = cycle_with_chord();
        let plan = FlowPlanner::new(1).plan(&g);
        let hops = plan.next_hops(n(0), n(3)).unwrap();
        assert_eq!(hops.len(), 2);
        assert_ne!(hops.at_priority(0), hops.at_priority(1));
        assert_eq!(hops.at_priority(1), Some(n(4)));
        assert_eq!(hops.at_priority(2), None);
    }

    #[test]
    fn candidate_limit_keeps_only_primary() {
        let g = cycle_with_chord();
        let planner = FlowPlanner::new(0).with_max_candidates(1);
        assert_eq!(planner.kappa(), 0);
        assert_eq!(planner.max_candidates(), Some(1));
        let plan = planner.plan(&g);
        for (_, _, set) in plan.iter() {
            assert_eq!(set.len(), 1);
        }
    }

    #[test]
    fn default_keeps_all_neighbors_as_candidates() {
        let g = cycle_with_chord();
        let plan = FlowPlanner::default().plan(&g);
        // Node 1 has three neighbors; all must appear as candidates towards node 4.
        let set = plan.next_hops(n(1), n(4)).unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.primary(), Some(n(0)));
    }

    #[test]
    fn routing_without_failures_follows_shortest_path() {
        let g = cycle_with_chord();
        let plan = FlowPlanner::new(1).plan(&g);
        let path = plan.route(n(0), n(3), |_, _| true, 16).unwrap();
        assert_eq!(path, vec![n(0), n(1), n(3)]);
    }

    #[test]
    fn routing_survives_single_link_failure() {
        let g = cycle_with_chord();
        let plan = FlowPlanner::new(1).plan(&g);
        let failed = Link::new(n(1), n(3));
        let path = plan
            .route(n(0), n(3), |a, b| Link::new(a, b) != failed, 16)
            .unwrap();
        assert_eq!(*path.last().unwrap(), n(3));
        assert!(!path.windows(2).any(|w| Link::new(w[0], w[1]) == failed));
    }

    #[test]
    fn routing_every_single_failure_on_two_connected_graph() {
        // kappa = 1 on a 2-edge-connected graph: any single link failure must be survivable
        // between every pair.
        let g = cycle_with_chord();
        let plan = FlowPlanner::new(1).plan(&g);
        for failed in g.links() {
            for a in g.nodes() {
                for b in g.nodes() {
                    if a == b {
                        continue;
                    }
                    let ok = plan.route(a, b, |x, y| Link::new(x, y) != failed, 32);
                    assert!(
                        ok.is_some(),
                        "pair {a}->{b} not routable with {failed} down"
                    );
                }
            }
        }
    }

    #[test]
    fn disconnected_pairs_have_no_entry() {
        let mut g = cycle_with_chord();
        g.add_node(n(9));
        let plan = FlowPlanner::new(1).plan(&g);
        assert!(plan.next_hops(n(0), n(9)).is_none());
        assert!(plan.route(n(0), n(9), |_, _| true, 16).is_none());
        assert_eq!(plan.distance(n(0), n(9)), None);
    }

    #[test]
    fn ttl_prevents_infinite_loops() {
        let g = cycle_with_chord();
        let plan = FlowPlanner::new(1).plan(&g);
        // All links down: routing fails rather than looping forever.
        assert!(plan.route(n(0), n(3), |_, _| false, 16).is_none());
        // TTL of zero means any non-trivial route fails.
        assert!(plan.route(n(0), n(3), |_, _| true, 0).is_none());
    }

    #[test]
    fn empty_graph_plan_is_empty() {
        let plan = FlowPlanner::default().plan(&Graph::new());
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
    }

    #[test]
    fn restricted_plan_never_relays_through_non_transit_nodes() {
        // Star-ish graph where node 9 (a "controller") would be the shortest relay
        // between 0 and 4: 0-9-4 (2 hops) vs 0-1-2-3-4 (4 hops).
        let g = Graph::from_links([
            (n(0), n(1)),
            (n(1), n(2)),
            (n(2), n(3)),
            (n(3), n(4)),
            (n(0), n(9)),
            (n(9), n(4)),
        ]);
        let non_transit: std::collections::BTreeSet<NodeId> = [n(9)].into_iter().collect();
        let plan = FlowPlanner::new(1).plan_restricted(&g, &non_transit);
        // The flow from 0 to 4 must avoid node 9.
        let path = plan.route(n(0), n(4), |_, _| true, 32).unwrap();
        assert!(
            !path.contains(&n(9)),
            "path {path:?} relays through a controller"
        );
        assert_eq!(plan.distance(n(0), n(4)), Some(4));
        // Node 9 can still be an endpoint: flows towards it exist.
        let to_nine = plan.next_hops(n(0), n(9)).unwrap();
        assert_eq!(to_nine.primary(), Some(n(9)));
        // And node 9 (as a source endpoint) has next hops towards 4 that avoid itself.
        let from_nine = plan.next_hops(n(9), n(4)).unwrap();
        assert!(from_nine.primary().is_some());
        assert_eq!(plan.distance(n(9), n(4)), Some(1));
    }

    #[test]
    fn next_hop_set_first_operational() {
        let set = NextHopSet::new(vec![n(1), n(2), n(3)]);
        assert_eq!(set.first_operational(|h| h == n(2)), Some(n(2)));
        assert_eq!(set.first_operational(|_| false), None);
        assert_eq!(set.iter().count(), 3);
        assert!(!set.is_empty());
    }
}
