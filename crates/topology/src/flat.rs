//! Compact indexed (CSR) snapshot of a [`Graph`] and allocation-free traversals.
//!
//! [`Graph`] stays the mutable builder — deterministic sorted adjacency, cheap
//! edits — but its `BTreeMap<NodeId, BTreeSet<NodeId>>` layout makes every BFS pay
//! pointer-chasing and per-visit map lookups. The hot paths (legitimacy checking,
//! connectivity validation, diameter sweeps) instead take a [`FlatGraph`] snapshot:
//! a dense `NodeId -> u32` index map plus offset/neighbor arrays, giving O(1)
//! neighbor slices, and run their searches through a reusable [`BfsScratch`]
//! workspace so steady-state traversals allocate nothing.
//!
//! Neighbor rows preserve the ascending identifier order of [`Graph::neighbors`],
//! so a BFS over a `FlatGraph` discovers exactly the same "first shortest paths"
//! (paper, Section 5.4) as a BFS over the originating `Graph` — the two
//! representations are interchangeable for every deterministic result in the
//! workspace.

use crate::graph::Graph;
use crate::ids::NodeId;

/// Sentinel for "no index": absent node in the lookup table, unreached node in a
/// BFS distance array, missing parent.
pub const NO_INDEX: u32 = u32::MAX;

/// An immutable CSR (compressed sparse row) snapshot of an undirected [`Graph`].
///
/// Nodes are mapped to dense indices `0..node_count()` in ascending [`NodeId`]
/// order; each node's neighbors occupy a contiguous slice of the `neighbors`
/// array, also ascending. Self-contained and cheap to traverse: no maps, no
/// per-node allocations.
///
/// # Example
///
/// ```
/// use sdn_topology::{FlatGraph, Graph, NodeId};
/// let g = Graph::from_links([
///     (NodeId::new(0), NodeId::new(1)),
///     (NodeId::new(1), NodeId::new(2)),
/// ]);
/// let flat = g.snapshot();
/// assert_eq!(flat.node_count(), 3);
/// assert_eq!(flat.link_count(), 2);
/// let idx = flat.index_of(NodeId::new(1)).unwrap();
/// assert_eq!(flat.neighbor_indices(idx).len(), 2);
/// assert_eq!(flat.neighbors(NodeId::new(1)).count(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlatGraph {
    /// All nodes in ascending identifier order; dense index = position.
    nodes: Vec<NodeId>,
    /// Raw identifier -> dense index ([`NO_INDEX`] = absent). Length `max_id + 1`.
    lookup: Vec<u32>,
    /// CSR row offsets into `neighbors`; length `nodes.len() + 1`.
    offsets: Vec<u32>,
    /// Concatenated neighbor rows as dense indices, ascending within each row.
    neighbors: Vec<u32>,
}

impl FlatGraph {
    /// Builds the snapshot from a mutable [`Graph`].
    pub fn from_graph(graph: &Graph) -> Self {
        let nodes: Vec<NodeId> = graph.nodes().collect();
        let max_raw = nodes.last().map(|n| n.index() as usize + 1).unwrap_or(0);
        let mut lookup = vec![NO_INDEX; max_raw];
        for (i, node) in nodes.iter().enumerate() {
            lookup[node.index() as usize] = i as u32;
        }
        let mut offsets = Vec::with_capacity(nodes.len() + 1);
        let mut neighbors = Vec::with_capacity(2 * graph.link_count());
        offsets.push(0);
        for &node in &nodes {
            for peer in graph.neighbors(node) {
                neighbors.push(lookup[peer.index() as usize]);
            }
            offsets.push(neighbors.len() as u32);
        }
        FlatGraph {
            nodes,
            lookup,
            offsets,
            neighbors,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the snapshot has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of undirected links.
    pub fn link_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// All nodes in ascending identifier order (dense index = slice position).
    pub fn node_ids(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The dense index of `node`, or `None` when it is not part of the snapshot.
    pub fn index_of(&self, node: NodeId) -> Option<u32> {
        match self.lookup.get(node.index() as usize) {
            Some(&idx) if idx != NO_INDEX => Some(idx),
            _ => None,
        }
    }

    /// The node at dense index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn node_at(&self, idx: u32) -> NodeId {
        self.nodes[idx as usize]
    }

    /// Returns `true` when `node` is part of the snapshot.
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.index_of(node).is_some()
    }

    /// The neighbor row of dense index `idx`, as dense indices in ascending
    /// identifier order.
    pub fn neighbor_indices(&self, idx: u32) -> &[u32] {
        let start = self.offsets[idx as usize] as usize;
        let end = self.offsets[idx as usize + 1] as usize;
        &self.neighbors[start..end]
    }

    /// CSR row offsets (length `node_count() + 1`): the neighbor row of dense
    /// index `i` spans `offsets()[i]..offsets()[i+1]` of [`Self::arc_targets`].
    /// Exposed for flow algorithms that attach per-arc state.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The concatenated directed-arc array: every undirected link appears once
    /// per direction, as the dense index of the arc's head.
    pub fn arc_targets(&self) -> &[u32] {
        &self.neighbors
    }

    /// Iterates over the neighbors of `node` in ascending identifier order
    /// (empty if the node is absent).
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.index_of(node)
            .map(|idx| self.neighbor_indices(idx))
            .unwrap_or(&[])
            .iter()
            .map(|&j| self.nodes[j as usize])
    }

    /// The degree of `node` (0 if absent).
    pub fn degree(&self, node: NodeId) -> usize {
        self.index_of(node)
            .map(|idx| self.neighbor_indices(idx).len())
            .unwrap_or(0)
    }

    /// Breadth-first search from dense index `source`, filling `scratch` with
    /// distances and first-discovered parents. Returns the number of reached
    /// nodes (including the source).
    ///
    /// Neighbor rows are ascending, so the parent array encodes exactly the
    /// paper's first shortest paths.
    pub fn bfs(&self, source: u32, scratch: &mut BfsScratch) -> usize {
        self.bfs_filtered(source, scratch, |_| true)
    }

    /// Breadth-first search that only *expands* nodes satisfying `expand`
    /// (the source always expands; nodes failing the predicate are still
    /// reached and assigned distances, but their neighbors are not explored
    /// through them).
    ///
    /// This is the reachability notion of the in-band control plane: packets
    /// can reach a controller, but never relay *through* one.
    pub fn bfs_filtered<F>(&self, source: u32, scratch: &mut BfsScratch, mut expand: F) -> usize
    where
        F: FnMut(u32) -> bool,
    {
        scratch.reset(self.node_count());
        scratch.dist[source as usize] = 0;
        scratch.queue.push(source);
        let mut head = 0usize;
        let mut reached = 1usize;
        while head < scratch.queue.len() {
            let u = scratch.queue[head];
            head += 1;
            if u != source && !expand(u) {
                continue;
            }
            let du = scratch.dist[u as usize];
            for &v in self.neighbor_indices(u) {
                if scratch.dist[v as usize] == NO_INDEX {
                    scratch.dist[v as usize] = du + 1;
                    scratch.parent[v as usize] = u;
                    scratch.queue.push(v);
                    reached += 1;
                }
            }
        }
        reached
    }
}

/// Reusable BFS workspace: distance, parent, and queue arrays that are cleared —
/// not reallocated — between searches, so repeated traversals over graphs of the
/// same size are allocation-free.
///
/// # Example
///
/// ```
/// use sdn_topology::{BfsScratch, Graph, NodeId};
/// let g = Graph::from_links([(NodeId::new(0), NodeId::new(1))]);
/// let flat = g.snapshot();
/// let mut scratch = BfsScratch::new();
/// let reached = flat.bfs(0, &mut scratch);
/// assert_eq!(reached, 2);
/// assert_eq!(scratch.distance(1), Some(1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct BfsScratch {
    dist: Vec<u32>,
    parent: Vec<u32>,
    queue: Vec<u32>,
}

impl BfsScratch {
    /// Creates an empty workspace; arrays grow to the graph size on first use.
    pub fn new() -> Self {
        BfsScratch::default()
    }

    /// Clears the workspace for a graph with `n` nodes.
    fn reset(&mut self, n: usize) {
        self.dist.clear();
        self.dist.resize(n, NO_INDEX);
        self.parent.clear();
        self.parent.resize(n, NO_INDEX);
        self.queue.clear();
    }

    /// The distance of dense index `idx` from the last search's source, or
    /// `None` when unreached.
    pub fn distance(&self, idx: u32) -> Option<u32> {
        match self.dist.get(idx as usize) {
            Some(&d) if d != NO_INDEX => Some(d),
            _ => None,
        }
    }

    /// The parent (dense index) of `idx` on its first shortest path, or `None`
    /// for the source and unreached nodes.
    pub fn parent_of(&self, idx: u32) -> Option<u32> {
        match self.parent.get(idx as usize) {
            Some(&p) if p != NO_INDEX => Some(p),
            _ => None,
        }
    }

    /// Returns `true` when `idx` was reached by the last search.
    pub fn reached(&self, idx: u32) -> bool {
        self.distance(idx).is_some()
    }

    /// The dense indices reached by the last search, in discovery order
    /// (breadth-first, ascending identifiers within each level).
    pub fn visit_order(&self) -> &[u32] {
        &self.queue
    }

    /// The largest distance assigned by the last search (0 when only the
    /// source was reached).
    pub fn max_distance(&self) -> u32 {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != NO_INDEX)
            .max()
            .unwrap_or(0)
    }

    /// Raw distance array of the last search ([`NO_INDEX`] = unreached).
    pub fn distances(&self) -> &[u32] {
        &self.dist
    }

    /// Raw parent array of the last search ([`NO_INDEX`] = none).
    pub fn parents(&self) -> &[u32] {
        &self.parent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn ring4() -> Graph {
        Graph::from_links([(n(0), n(1)), (n(1), n(2)), (n(2), n(3)), (n(3), n(0))])
    }

    #[test]
    fn snapshot_mirrors_graph() {
        let g = ring4();
        let flat = g.snapshot();
        assert_eq!(flat.node_count(), g.node_count());
        assert_eq!(flat.link_count(), g.link_count());
        for node in g.nodes() {
            assert!(flat.contains_node(node));
            assert_eq!(flat.degree(node), g.degree(node));
            let from_flat: Vec<NodeId> = flat.neighbors(node).collect();
            let from_graph: Vec<NodeId> = g.neighbors(node).collect();
            assert_eq!(from_flat, from_graph, "neighbor order preserved");
        }
        assert!(!flat.contains_node(n(99)));
        assert_eq!(flat.neighbors(n(99)).count(), 0);
    }

    #[test]
    fn empty_and_sparse_identifiers() {
        let flat = Graph::new().snapshot();
        assert!(flat.is_empty());
        assert_eq!(flat.node_count(), 0);
        // Sparse, non-contiguous identifiers still get dense indices.
        let g = Graph::from_links([(n(10), n(500)), (n(500), n(3))]);
        let flat = g.snapshot();
        assert_eq!(flat.node_count(), 3);
        assert_eq!(flat.node_ids(), &[n(3), n(10), n(500)]);
        assert_eq!(flat.index_of(n(3)), Some(0));
        assert_eq!(flat.index_of(n(500)), Some(2));
        assert_eq!(flat.index_of(n(4)), None);
    }

    #[test]
    fn bfs_distances_and_parents() {
        let flat = ring4().snapshot();
        let mut scratch = BfsScratch::new();
        let reached = flat.bfs(0, &mut scratch);
        assert_eq!(reached, 4);
        assert_eq!(scratch.distance(0), Some(0));
        assert_eq!(scratch.distance(1), Some(1));
        assert_eq!(scratch.distance(3), Some(1));
        assert_eq!(scratch.distance(2), Some(2));
        assert_eq!(scratch.max_distance(), 2);
        // Node 2 is discovered through node 1 (lowest-identifier parent first).
        assert_eq!(scratch.parent_of(2), Some(1));
        assert_eq!(scratch.parent_of(0), None);
    }

    #[test]
    fn scratch_is_reusable_across_graphs() {
        let mut scratch = BfsScratch::new();
        let big = ring4().snapshot();
        big.bfs(0, &mut scratch);
        let small = Graph::from_links([(n(0), n(1))]).snapshot();
        let reached = small.bfs(0, &mut scratch);
        assert_eq!(reached, 2);
        assert_eq!(scratch.distances().len(), 2, "scratch resized down");
        assert_eq!(scratch.visit_order(), &[0, 1]);
    }

    #[test]
    fn filtered_bfs_reaches_but_does_not_expand() {
        // 0 - 1 - 2: forbidding expansion through 1 still reaches 1, not 2.
        let g = Graph::from_links([(n(0), n(1)), (n(1), n(2))]);
        let flat = g.snapshot();
        let mut scratch = BfsScratch::new();
        let reached = flat.bfs_filtered(0, &mut scratch, |idx| idx != 1);
        assert_eq!(reached, 2);
        assert!(scratch.reached(1));
        assert!(!scratch.reached(2));
        // The source expands even when the predicate rejects it.
        let reached = flat.bfs_filtered(0, &mut scratch, |_| false);
        assert_eq!(reached, 2);
    }

    #[test]
    fn disconnected_components_stay_unreached() {
        let mut g = ring4();
        g.add_link(n(8), n(9));
        let flat = g.snapshot();
        let mut scratch = BfsScratch::new();
        let reached = flat.bfs(flat.index_of(n(0)).unwrap(), &mut scratch);
        assert_eq!(reached, 4);
        assert!(!scratch.reached(flat.index_of(n(8)).unwrap()));
    }
}
