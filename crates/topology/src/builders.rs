//! Topology generators for the paper's evaluation networks and for tests.
//!
//! The paper evaluates Renaissance on five networks (Table 8):
//!
//! | network | switches | diameter |
//! |---------|----------|----------|
//! | B4      | 12       | 5        |
//! | Clos    | 20       | 4        |
//! | Telstra | 57       | 8        |
//! | AT&T    | 172      | 10       |
//! | EBONE   | 208      | 11       |
//!
//! B4 is Google's inter-datacenter WAN, Clos is a 3-stage datacenter fabric, and the
//! last three are Rocketfuel-measured ISP topologies. We do not have the Rocketfuel
//! data sets, so [`isp_like`] generates synthetic ISP-style networks that match the
//! published node count and diameter *exactly* and are 2-edge-connected (so `kappa = 1`
//! flows always exist), which is all the evaluation relies on. The Clos network is a
//! real k=4 fat-tree; B4 uses the same ISP-style generator at B4's published scale.
//!
//! Controllers are always attached *in-band*: each controller gets links to two
//! switches that are at distance two of each other, which preserves the switch-graph
//! diameter reported in Table 8 and keeps the whole graph 2-edge-connected.

use crate::graph::Graph;
use crate::ids::{NodeId, NodeKind};
use sdn_rng::Rng;

/// A generated network together with its controller/switch split and metadata.
///
/// # Example
///
/// ```
/// use sdn_topology::builders;
/// let net = builders::clos(3);
/// assert_eq!(net.controllers.len(), 3);
/// assert_eq!(net.switches.len(), 20);
/// assert_eq!(net.expected_diameter, 4);
/// assert!(net.graph.node_count() == 23);
/// ```
#[derive(Clone, Debug)]
pub struct NamedTopology {
    /// Human-readable network name ("B4", "Clos", "Telstra", ...).
    pub name: String,
    /// The full communication graph `Gc` including controllers.
    pub graph: Graph,
    /// The switch-only graph (what Table 8 describes).
    pub switch_graph: Graph,
    /// Controller identifiers (`0..n_controllers`).
    pub controllers: Vec<NodeId>,
    /// Switch identifiers (`n_controllers..n_controllers + n_switches`).
    pub switches: Vec<NodeId>,
    /// The switch-graph diameter the paper reports for this network.
    pub expected_diameter: u32,
}

impl NamedTopology {
    /// Number of controllers `nC`.
    pub fn controller_count(&self) -> usize {
        self.controllers.len()
    }

    /// Number of switches `nS`.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Total number of nodes `N = nC + nS`.
    pub fn node_count(&self) -> usize {
        self.controllers.len() + self.switches.len()
    }

    /// The kind of a node in this topology.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        node.kind(self.controllers.len())
    }
}

/// The five networks of the paper's Table 8, in the paper's order.
pub const PAPER_NETWORK_NAMES: [&str; 5] = ["B4", "Clos", "Telstra", "AT&T", "EBONE"];

/// Builds one of the paper's networks by name with the given number of controllers.
///
/// # Panics
///
/// Panics if `name` is not one of [`PAPER_NETWORK_NAMES`] (case-insensitive).
pub fn by_name(name: &str, n_controllers: usize) -> NamedTopology {
    match name.to_ascii_lowercase().as_str() {
        "b4" => b4(n_controllers),
        "clos" => clos(n_controllers),
        "telstra" => telstra(n_controllers),
        "at&t" | "att" => att(n_controllers),
        "ebone" => ebone(n_controllers),
        other => panic!("unknown paper network: {other}"),
    }
}

/// All five paper networks with the given number of controllers, in Table 8 order.
pub fn paper_networks(n_controllers: usize) -> Vec<NamedTopology> {
    PAPER_NETWORK_NAMES
        .iter()
        .map(|name| by_name(name, n_controllers))
        .collect()
}

/// Google's B4 inter-datacenter WAN: 12 switches, diameter 5 (Table 8).
pub fn b4(n_controllers: usize) -> NamedTopology {
    isp_named("B4", 12, 5, n_controllers)
}

/// A k=4 fat-tree Clos fabric: 20 switches (4 core, 8 aggregation, 8 edge), diameter 4.
pub fn clos(n_controllers: usize) -> NamedTopology {
    let n_core = 4usize;
    let n_pods = 4usize;
    let agg_per_pod = 2usize;
    let edge_per_pod = 2usize;
    let n_switches = n_core + n_pods * (agg_per_pod + edge_per_pod);
    debug_assert_eq!(n_switches, 20);

    let sw = |i: usize| NodeId::new((n_controllers + i) as u32);
    let mut g = Graph::new();
    // Switch index layout: [0..4) core, then per pod: 2 agg, 2 edge.
    let core: Vec<usize> = (0..n_core).collect();
    let mut pods = Vec::new();
    let mut next = n_core;
    for _ in 0..n_pods {
        let aggs: Vec<usize> = (next..next + agg_per_pod).collect();
        next += agg_per_pod;
        let edges: Vec<usize> = (next..next + edge_per_pod).collect();
        next += edge_per_pod;
        pods.push((aggs, edges));
    }
    for (aggs, edges) in &pods {
        // Full bipartite agg <-> edge inside the pod.
        for &a in aggs {
            for &e in edges {
                g.add_link(sw(a), sw(e));
            }
        }
        // Each aggregation switch connects to half of the core switches.
        for (ai, &a) in aggs.iter().enumerate() {
            for (ci, &c) in core.iter().enumerate() {
                if ci % agg_per_pod == ai {
                    g.add_link(sw(a), sw(c));
                }
            }
        }
    }
    // Attach controllers: controller i connects to an edge switch and one of its
    // aggregation switches (adjacent pair), pods chosen round-robin.
    let switch_graph = g.clone();
    let mut full = g;
    let controllers: Vec<NodeId> = (0..n_controllers).map(|i| NodeId::new(i as u32)).collect();
    for (i, &c) in controllers.iter().enumerate() {
        let (aggs, edges) = &pods[i % n_pods];
        full.add_link(c, sw(edges[0]));
        full.add_link(c, sw(aggs[0]));
    }
    let switches: Vec<NodeId> = (0..n_switches).map(sw).collect();
    NamedTopology {
        name: "Clos".to_string(),
        graph: full,
        switch_graph,
        controllers,
        switches,
        expected_diameter: 4,
    }
}

/// Rocketfuel Telstra (AS1221) stand-in: 57 switches, diameter 8.
pub fn telstra(n_controllers: usize) -> NamedTopology {
    isp_named("Telstra", 57, 8, n_controllers)
}

/// Rocketfuel AT&T (AS7018) stand-in: 172 switches, diameter 10.
pub fn att(n_controllers: usize) -> NamedTopology {
    isp_named("AT&T", 172, 10, n_controllers)
}

/// Rocketfuel EBONE (AS1755) stand-in: 208 switches, diameter 11.
pub fn ebone(n_controllers: usize) -> NamedTopology {
    isp_named("EBONE", 208, 11, n_controllers)
}

fn isp_named(name: &str, n_switches: usize, diameter: u32, n_controllers: usize) -> NamedTopology {
    let mut net = isp_like(n_switches, diameter, n_controllers);
    net.name = name.to_string();
    net
}

/// Synthetic ISP-style topology with an exact diameter and 2-edge-connectivity.
///
/// The construction is a backbone ring of `2 * diameter` switches (which has diameter
/// exactly `diameter`) plus access switches, each attached to a pair of backbone
/// switches at ring-distance two. This keeps all pairwise distances at most `diameter`
/// while never shrinking the backbone distances, so the diameter is exact. Every node
/// has degree at least two, hence the graph is 2-edge-connected.
///
/// # Panics
///
/// Panics if `n_switches < 2 * diameter` or `diameter < 2`.
pub fn isp_like(n_switches: usize, diameter: u32, n_controllers: usize) -> NamedTopology {
    assert!(diameter >= 2, "isp_like needs diameter >= 2");
    let ring_len = 2 * diameter as usize;
    assert!(
        n_switches >= ring_len,
        "isp_like needs at least 2*diameter switches ({} < {})",
        n_switches,
        ring_len
    );
    let sw = |i: usize| NodeId::new((n_controllers + i) as u32);
    let mut g = Graph::new();
    // Backbone ring: switches 0..ring_len.
    for i in 0..ring_len {
        g.add_link(sw(i), sw((i + 1) % ring_len));
    }
    // Access switches: each attaches to backbone nodes (a, a+2) — distance two apart —
    // spread round-robin around the ring.
    for (j, i) in (ring_len..n_switches).enumerate() {
        let a = (j * 2) % ring_len;
        g.add_link(sw(i), sw(a));
        g.add_link(sw(i), sw((a + 2) % ring_len));
    }
    let switch_graph = g.clone();
    // Controllers: attach to backbone nodes (a, a+2), spread evenly around the ring.
    let mut full = g;
    let controllers: Vec<NodeId> = (0..n_controllers).map(|i| NodeId::new(i as u32)).collect();
    for (i, &c) in controllers.iter().enumerate() {
        let a = (i * ring_len / n_controllers.max(1)) % ring_len;
        full.add_link(c, sw(a));
        full.add_link(c, sw((a + 2) % ring_len));
    }
    let switches: Vec<NodeId> = (0..n_switches).map(sw).collect();
    NamedTopology {
        name: format!("ISP-{n_switches}-{diameter}"),
        graph: full,
        switch_graph,
        controllers,
        switches,
        expected_diameter: diameter,
    }
}

/// A ring of `n_switches` switches with controllers attached — the smallest useful
/// 2-edge-connected test topology.
///
/// # Panics
///
/// Panics if `n_switches < 3`.
pub fn ring(n_switches: usize, n_controllers: usize) -> NamedTopology {
    assert!(n_switches >= 3, "ring needs at least 3 switches");
    let sw = |i: usize| NodeId::new((n_controllers + i) as u32);
    let mut g = Graph::new();
    for i in 0..n_switches {
        g.add_link(sw(i), sw((i + 1) % n_switches));
    }
    let switch_graph = g.clone();
    let mut full = g;
    let controllers: Vec<NodeId> = (0..n_controllers).map(|i| NodeId::new(i as u32)).collect();
    for (i, &c) in controllers.iter().enumerate() {
        let a = (i * n_switches / n_controllers.max(1)) % n_switches;
        full.add_link(c, sw(a));
        full.add_link(c, sw((a + 1) % n_switches));
    }
    let switches: Vec<NodeId> = (0..n_switches).map(sw).collect();
    NamedTopology {
        name: format!("Ring-{n_switches}"),
        graph: full,
        switch_graph,
        controllers,
        switches,
        expected_diameter: (n_switches / 2) as u32,
    }
}

/// A single line of switches (1-edge-connected) — useful for testing `kappa = 0`
/// behaviour and disconnection scenarios.
///
/// # Panics
///
/// Panics if `n_switches == 0`.
pub fn line(n_switches: usize, n_controllers: usize) -> NamedTopology {
    assert!(n_switches >= 1, "line needs at least one switch");
    let sw = |i: usize| NodeId::new((n_controllers + i) as u32);
    let mut g = Graph::new();
    g.add_node(sw(0));
    for i in 1..n_switches {
        g.add_link(sw(i - 1), sw(i));
    }
    let switch_graph = g.clone();
    let mut full = g;
    let controllers: Vec<NodeId> = (0..n_controllers).map(|i| NodeId::new(i as u32)).collect();
    for (i, &c) in controllers.iter().enumerate() {
        let a = (i * n_switches / n_controllers.max(1)) % n_switches;
        full.add_link(c, sw(a));
    }
    let switches: Vec<NodeId> = (0..n_switches).map(sw).collect();
    NamedTopology {
        name: format!("Line-{n_switches}"),
        graph: full,
        switch_graph,
        controllers,
        switches,
        expected_diameter: n_switches.saturating_sub(1) as u32,
    }
}

/// A random connected 2-edge-connected topology, reproducible from `seed`.
///
/// Starts from a ring (guaranteeing 2-edge-connectivity) and adds `extra_links` random
/// chords. Used by property tests to exercise the algorithms on irregular graphs.
///
/// # Panics
///
/// Panics if `n_switches < 3`.
pub fn random_2connected(
    n_switches: usize,
    extra_links: usize,
    n_controllers: usize,
    seed: u64,
) -> NamedTopology {
    assert!(
        n_switches >= 3,
        "random_2connected needs at least 3 switches"
    );
    let mut rng = Rng::seed_from_u64(seed);
    let sw = |i: usize| NodeId::new((n_controllers + i) as u32);
    // Random ring: permute the switches so the ring order is not the identifier order.
    let mut order: Vec<usize> = (0..n_switches).collect();
    rng.shuffle(&mut order);
    let mut g = Graph::new();
    for i in 0..n_switches {
        g.add_link(sw(order[i]), sw(order[(i + 1) % n_switches]));
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < extra_links && attempts < extra_links * 20 + 100 {
        attempts += 1;
        let a = rng.gen_range(0..n_switches);
        let b = rng.gen_range(0..n_switches);
        if a != b && !g.has_link(sw(a), sw(b)) {
            g.add_link(sw(a), sw(b));
            added += 1;
        }
    }
    let switch_graph = g.clone();
    let mut full = g;
    let controllers: Vec<NodeId> = (0..n_controllers).map(|i| NodeId::new(i as u32)).collect();
    for &c in &controllers {
        let a = rng.gen_range(0..n_switches);
        let mut b = rng.gen_range(0..n_switches);
        while b == a {
            b = rng.gen_range(0..n_switches);
        }
        full.add_link(c, sw(a));
        full.add_link(c, sw(b));
    }
    let switches: Vec<NodeId> = (0..n_switches).map(sw).collect();
    let expected_diameter = crate::paths::diameter(&switch_graph);
    NamedTopology {
        name: format!("Random-{n_switches}-{seed}"),
        graph: full,
        switch_graph,
        controllers,
        switches,
        expected_diameter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity;
    use crate::paths;

    #[test]
    fn table8_node_counts_and_diameters() {
        // Regenerates the paper's Table 8 and checks it exactly.
        let expected = [
            ("B4", 12, 5),
            ("Clos", 20, 4),
            ("Telstra", 57, 8),
            ("AT&T", 172, 10),
            ("EBONE", 208, 11),
        ];
        for (name, nodes, diameter) in expected {
            let net = by_name(name, 3);
            assert_eq!(net.switch_count(), nodes, "{name} switch count");
            assert_eq!(
                paths::diameter(&net.switch_graph),
                diameter,
                "{name} diameter"
            );
            assert_eq!(net.expected_diameter, diameter);
        }
    }

    #[test]
    fn paper_networks_are_two_edge_connected() {
        for net in paper_networks(3) {
            assert!(
                connectivity::supports_kappa(&net.graph, 1),
                "{} must be 2-edge-connected including controllers",
                net.name
            );
        }
    }

    #[test]
    fn controllers_and_switches_partition_ids() {
        let net = telstra(4);
        assert_eq!(net.controller_count(), 4);
        assert_eq!(net.switch_count(), 57);
        assert_eq!(net.node_count(), 61);
        assert_eq!(net.graph.node_count(), 61);
        for (i, c) in net.controllers.iter().enumerate() {
            assert_eq!(c.index() as usize, i);
            assert_eq!(net.kind(*c), NodeKind::Controller);
        }
        for s in &net.switches {
            assert_eq!(net.kind(*s), NodeKind::Switch);
        }
    }

    #[test]
    fn clos_is_a_fat_tree() {
        let net = clos(1);
        assert_eq!(net.switch_count(), 20);
        // Edge and aggregation switches have degree >= 2; cores have degree 4.
        for s in &net.switches {
            assert!(net.switch_graph.degree(*s) >= 2);
        }
        assert_eq!(paths::diameter(&net.switch_graph), 4);
    }

    #[test]
    fn by_name_accepts_all_paper_names() {
        for name in PAPER_NETWORK_NAMES {
            let net = by_name(name, 2);
            assert_eq!(net.controller_count(), 2);
        }
        // case-insensitive and the AT&T alias
        assert_eq!(by_name("att", 1).switch_count(), 172);
        assert_eq!(by_name("ebone", 1).switch_count(), 208);
    }

    #[test]
    #[should_panic(expected = "unknown paper network")]
    fn by_name_rejects_unknown() {
        let _ = by_name("arpanet", 1);
    }

    #[test]
    fn isp_like_diameter_is_exact() {
        for (n, d) in [(20, 5), (40, 7), (100, 9)] {
            let net = isp_like(n, d, 2);
            assert_eq!(paths::diameter(&net.switch_graph), d, "n={n} d={d}");
            assert!(connectivity::supports_kappa(&net.switch_graph, 1));
        }
    }

    #[test]
    fn controllers_stay_close_to_backbone() {
        // Attaching controllers must not blow up the full-graph diameter by more than 2.
        for net in paper_networks(7) {
            let full_d = paths::diameter(&net.graph);
            assert!(
                full_d <= net.expected_diameter + 2,
                "{}: full diameter {} vs switch diameter {}",
                net.name,
                full_d,
                net.expected_diameter
            );
        }
    }

    #[test]
    fn ring_and_line_shapes() {
        let r = ring(6, 2);
        assert_eq!(r.switch_count(), 6);
        assert_eq!(paths::diameter(&r.switch_graph), 3);
        assert!(connectivity::supports_kappa(&r.switch_graph, 1));

        let l = line(5, 1);
        assert_eq!(l.switch_count(), 5);
        assert_eq!(paths::diameter(&l.switch_graph), 4);
        assert_eq!(connectivity::edge_connectivity(&l.switch_graph), 1);
    }

    #[test]
    fn random_topology_is_reproducible_and_robust() {
        let a = random_2connected(30, 10, 3, 42);
        let b = random_2connected(30, 10, 3, 42);
        assert_eq!(a.graph, b.graph);
        assert!(connectivity::supports_kappa(&a.graph, 1));
        let c = random_2connected(30, 10, 3, 43);
        assert_ne!(a.graph, c.graph, "different seeds should differ");
    }

    #[test]
    fn zero_controllers_is_allowed_by_builders() {
        // The degenerate case is useful for pure data-plane tests.
        let net = isp_like(24, 4, 0);
        assert_eq!(net.controller_count(), 0);
        assert_eq!(net.graph.node_count(), 24);
    }
}
