//! Topology generators for the paper's evaluation networks and for tests.
//!
//! The paper evaluates Renaissance on five networks (Table 8):
//!
//! | network | switches | diameter |
//! |---------|----------|----------|
//! | B4      | 12       | 5        |
//! | Clos    | 20       | 4        |
//! | Telstra | 57       | 8        |
//! | AT&T    | 172      | 10       |
//! | EBONE   | 208      | 11       |
//!
//! B4 is Google's inter-datacenter WAN, Clos is a 3-stage datacenter fabric, and the
//! last three are Rocketfuel-measured ISP topologies. We do not have the Rocketfuel
//! data sets, so [`isp_like`] generates synthetic ISP-style networks that match the
//! published node count and diameter *exactly* and are 2-edge-connected (so `kappa = 1`
//! flows always exist), which is all the evaluation relies on. The Clos network is a
//! real k=4 fat-tree; B4 uses the same ISP-style generator at B4's published scale.
//!
//! Controllers are always attached *in-band*: each controller gets links to two
//! switches that are at distance two of each other, which preserves the switch-graph
//! diameter reported in Table 8 and keeps the whole graph 2-edge-connected.

use crate::graph::Graph;
use crate::ids::{NodeId, NodeKind};
use sdn_rng::Rng;

/// A generated network together with its controller/switch split and metadata.
///
/// # Example
///
/// ```
/// use sdn_topology::builders;
/// let net = builders::clos(3);
/// assert_eq!(net.controllers.len(), 3);
/// assert_eq!(net.switches.len(), 20);
/// assert_eq!(net.expected_diameter, 4);
/// assert!(net.graph.node_count() == 23);
/// ```
#[derive(Clone, Debug)]
pub struct NamedTopology {
    /// Human-readable network name ("B4", "Clos", "Telstra", ...).
    pub name: String,
    /// The full communication graph `Gc` including controllers.
    pub graph: Graph,
    /// The switch-only graph (what Table 8 describes).
    pub switch_graph: Graph,
    /// Controller identifiers (`0..n_controllers`).
    pub controllers: Vec<NodeId>,
    /// Switch identifiers (`n_controllers..n_controllers + n_switches`).
    pub switches: Vec<NodeId>,
    /// The switch-graph diameter the paper reports for this network.
    pub expected_diameter: u32,
}

impl NamedTopology {
    /// Number of controllers `nC`.
    pub fn controller_count(&self) -> usize {
        self.controllers.len()
    }

    /// Number of switches `nS`.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Total number of nodes `N = nC + nS`.
    pub fn node_count(&self) -> usize {
        self.controllers.len() + self.switches.len()
    }

    /// The kind of a node in this topology.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        node.kind(self.controllers.len())
    }
}

/// The five networks of the paper's Table 8, in the paper's order.
pub const PAPER_NETWORK_NAMES: [&str; 5] = ["B4", "Clos", "Telstra", "AT&T", "EBONE"];

/// The parameterized datacenter-scale generator families [`by_name`] understands, as
/// `family(arg, ...)` templates (dashes are accepted in place of parentheses/commas).
pub const GENERATOR_FAMILY_NAMES: [&str; 3] = [
    "fat_tree(k)",
    "jellyfish(switches, degree, seed)",
    "grid(rows, cols)",
];

/// Builds a topology by name with the given number of controllers.
///
/// Accepts the paper's five networks (case-insensitive, see [`PAPER_NETWORK_NAMES`])
/// plus parameterized generator names so every fig binary and the scenario API can
/// target the datacenter-scale families:
///
/// * `fat_tree(8)` — a k=8 [`fat_tree`] (80 switches),
/// * `jellyfish(100, 4, 7)` — a [`jellyfish`] with 100 switches of degree 4, wired
///   from seed 7 (the seed may be omitted and defaults to 1),
/// * `grid(10, 12)` — a 10x12 [`grid`].
///
/// Dashes may replace the parentheses/commas (`fat-tree-8`, `jellyfish-100-4-7`,
/// `grid-10-12`), which keeps the names safe for file paths and CLI lists.
///
/// # Panics
///
/// Panics if `name` is neither a paper network nor a well-formed generator name.
pub fn by_name(name: &str, n_controllers: usize) -> NamedTopology {
    match name.to_ascii_lowercase().as_str() {
        "b4" => b4(n_controllers),
        "clos" => clos(n_controllers),
        "telstra" => telstra(n_controllers),
        "at&t" | "att" => att(n_controllers),
        "ebone" => ebone(n_controllers),
        other => match parse_generator(other) {
            Some(net) => net(n_controllers),
            None => panic!(
                "unknown network '{name}': expected one of {PAPER_NETWORK_NAMES:?} \
                 or a generator name like {GENERATOR_FAMILY_NAMES:?}"
            ),
        },
    }
}

/// Parses a lowercase parameterized generator name (`family(a, b)` or `family-a-b`)
/// into a builder closure, or `None` when the name is not a known generator.
fn parse_generator(lower: &str) -> Option<Box<dyn Fn(usize) -> NamedTopology>> {
    // Split "family(1, 2)" / "family-1-2" into the family word and its integer args:
    // everything before the first digit names the family, the rest is the arg list.
    let split = lower
        .find(|c: char| c.is_ascii_digit())
        .unwrap_or(lower.len());
    let (family, rest) = lower.split_at(split);
    let family: String = family.chars().filter(|c| c.is_ascii_alphabetic()).collect();
    let args: Vec<u64> = rest
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().ok())
        .collect::<Option<_>>()?;
    match (family.as_str(), args.as_slice()) {
        ("fattree", &[k]) => Some(Box::new(move |c| fat_tree(k as usize, c))),
        ("jellyfish", &[n, d]) => Some(Box::new(move |c| jellyfish(n as usize, d as usize, 1, c))),
        ("jellyfish", &[n, d, seed]) => Some(Box::new(move |c| {
            jellyfish(n as usize, d as usize, seed, c)
        })),
        ("grid", &[rows, cols]) => Some(Box::new(move |c| grid(rows as usize, cols as usize, c))),
        _ => None,
    }
}

/// All five paper networks with the given number of controllers, in Table 8 order.
pub fn paper_networks(n_controllers: usize) -> Vec<NamedTopology> {
    PAPER_NETWORK_NAMES
        .iter()
        .map(|name| by_name(name, n_controllers))
        .collect()
}

/// Google's B4 inter-datacenter WAN: 12 switches, diameter 5 (Table 8).
pub fn b4(n_controllers: usize) -> NamedTopology {
    isp_named("B4", 12, 5, n_controllers)
}

/// A k=4 fat-tree Clos fabric: 20 switches (4 core, 8 aggregation, 8 edge), diameter 4.
pub fn clos(n_controllers: usize) -> NamedTopology {
    let n_core = 4usize;
    let n_pods = 4usize;
    let agg_per_pod = 2usize;
    let edge_per_pod = 2usize;
    let n_switches = n_core + n_pods * (agg_per_pod + edge_per_pod);
    debug_assert_eq!(n_switches, 20);

    let sw = |i: usize| NodeId::new((n_controllers + i) as u32);
    let mut g = Graph::new();
    // Switch index layout: [0..4) core, then per pod: 2 agg, 2 edge.
    let core: Vec<usize> = (0..n_core).collect();
    let mut pods = Vec::new();
    let mut next = n_core;
    for _ in 0..n_pods {
        let aggs: Vec<usize> = (next..next + agg_per_pod).collect();
        next += agg_per_pod;
        let edges: Vec<usize> = (next..next + edge_per_pod).collect();
        next += edge_per_pod;
        pods.push((aggs, edges));
    }
    for (aggs, edges) in &pods {
        // Full bipartite agg <-> edge inside the pod.
        for &a in aggs {
            for &e in edges {
                g.add_link(sw(a), sw(e));
            }
        }
        // Each aggregation switch connects to half of the core switches.
        for (ai, &a) in aggs.iter().enumerate() {
            for (ci, &c) in core.iter().enumerate() {
                if ci % agg_per_pod == ai {
                    g.add_link(sw(a), sw(c));
                }
            }
        }
    }
    // Attach controllers: controller i connects to an edge switch and one of its
    // aggregation switches (adjacent pair), pods chosen round-robin.
    let switch_graph = g.clone();
    let mut full = g;
    let controllers: Vec<NodeId> = (0..n_controllers).map(|i| NodeId::new(i as u32)).collect();
    for (i, &c) in controllers.iter().enumerate() {
        let (aggs, edges) = &pods[i % n_pods];
        full.add_link(c, sw(edges[0]));
        full.add_link(c, sw(aggs[0]));
    }
    let switches: Vec<NodeId> = (0..n_switches).map(sw).collect();
    NamedTopology {
        name: "Clos".to_string(),
        graph: full,
        switch_graph,
        controllers,
        switches,
        expected_diameter: 4,
    }
}

/// Rocketfuel Telstra (AS1221) stand-in: 57 switches, diameter 8.
pub fn telstra(n_controllers: usize) -> NamedTopology {
    isp_named("Telstra", 57, 8, n_controllers)
}

/// Rocketfuel AT&T (AS7018) stand-in: 172 switches, diameter 10.
pub fn att(n_controllers: usize) -> NamedTopology {
    isp_named("AT&T", 172, 10, n_controllers)
}

/// Rocketfuel EBONE (AS1755) stand-in: 208 switches, diameter 11.
pub fn ebone(n_controllers: usize) -> NamedTopology {
    isp_named("EBONE", 208, 11, n_controllers)
}

fn isp_named(name: &str, n_switches: usize, diameter: u32, n_controllers: usize) -> NamedTopology {
    let mut net = isp_like(n_switches, diameter, n_controllers);
    net.name = name.to_string();
    net
}

/// Synthetic ISP-style topology with an exact diameter and 2-edge-connectivity.
///
/// The construction is a backbone ring of `2 * diameter` switches (which has diameter
/// exactly `diameter`) plus access switches, each attached to a pair of backbone
/// switches at ring-distance two. This keeps all pairwise distances at most `diameter`
/// while never shrinking the backbone distances, so the diameter is exact. Every node
/// has degree at least two, hence the graph is 2-edge-connected.
///
/// # Panics
///
/// Panics if `n_switches < 2 * diameter` or `diameter < 2`.
pub fn isp_like(n_switches: usize, diameter: u32, n_controllers: usize) -> NamedTopology {
    assert!(diameter >= 2, "isp_like needs diameter >= 2");
    let ring_len = 2 * diameter as usize;
    assert!(
        n_switches >= ring_len,
        "isp_like needs at least 2*diameter switches ({} < {})",
        n_switches,
        ring_len
    );
    let sw = |i: usize| NodeId::new((n_controllers + i) as u32);
    let mut g = Graph::new();
    // Backbone ring: switches 0..ring_len.
    for i in 0..ring_len {
        g.add_link(sw(i), sw((i + 1) % ring_len));
    }
    // Access switches: each attaches to backbone nodes (a, a+2) — distance two apart —
    // spread round-robin around the ring.
    for (j, i) in (ring_len..n_switches).enumerate() {
        let a = (j * 2) % ring_len;
        g.add_link(sw(i), sw(a));
        g.add_link(sw(i), sw((a + 2) % ring_len));
    }
    let switch_graph = g.clone();
    // Controllers: attach to backbone nodes (a, a+2), spread evenly around the ring.
    let mut full = g;
    let controllers: Vec<NodeId> = (0..n_controllers).map(|i| NodeId::new(i as u32)).collect();
    for (i, &c) in controllers.iter().enumerate() {
        let a = (i * ring_len / n_controllers.max(1)) % ring_len;
        full.add_link(c, sw(a));
        full.add_link(c, sw((a + 2) % ring_len));
    }
    let switches: Vec<NodeId> = (0..n_switches).map(sw).collect();
    NamedTopology {
        name: format!("ISP-{n_switches}-{diameter}"),
        graph: full,
        switch_graph,
        controllers,
        switches,
        expected_diameter: diameter,
    }
}

/// Finishes a datacenter-scale topology: snapshots the switch graph, attaches each
/// controller to an adjacent switch pair, and measures the exact switch-graph diameter.
fn finish_datacenter(
    name: String,
    mut graph: Graph,
    n_switches: usize,
    n_controllers: usize,
    mut attach: impl FnMut(usize) -> (NodeId, NodeId),
) -> NamedTopology {
    let switch_graph = graph.clone();
    let controllers: Vec<NodeId> = (0..n_controllers).map(|i| NodeId::new(i as u32)).collect();
    for (i, &c) in controllers.iter().enumerate() {
        let (a, b) = attach(i);
        graph.add_link(c, a);
        graph.add_link(c, b);
    }
    let switches: Vec<NodeId> = (0..n_switches)
        .map(|i| NodeId::new((n_controllers + i) as u32))
        .collect();
    let expected_diameter = crate::paths::diameter(&switch_graph);
    NamedTopology {
        name,
        graph,
        switch_graph,
        controllers,
        switches,
        expected_diameter,
    }
}

/// A k-ary fat-tree datacenter fabric (Al-Fares et al., SIGCOMM 2008): `(k/2)^2` core
/// switches and `k` pods of `k/2` aggregation plus `k/2` edge switches each —
/// `5k^2/4` switches in total (k=4: 20, k=8: 80, k=12: 180, k=16: 320), switch-graph
/// diameter 4, and edge connectivity `k/2` (so `max_supported_kappa = k/2 - 1`).
///
/// Inside a pod, aggregation and edge switches form a complete bipartite graph;
/// aggregation switch `j` of every pod uplinks to core switches
/// `j*k/2 .. (j+1)*k/2`. Controllers attach in-band to an adjacent (edge,
/// aggregation) pair, pods chosen round-robin, which adds no diameter.
///
/// # Panics
///
/// Panics if `k` is odd or smaller than 4 (a k=2 fat-tree has degree-1 edge switches
/// and could not survive a single link failure).
// `u64::is_multiple_of` is newer than the workspace MSRV (1.82).
#[allow(clippy::manual_is_multiple_of)]
pub fn fat_tree(k: usize, n_controllers: usize) -> NamedTopology {
    assert!(
        k >= 4 && k % 2 == 0,
        "fat_tree needs an even k >= 4, got {k}"
    );
    let half = k / 2;
    let n_core = half * half;
    let n_switches = n_core + k * k;
    let sw = |i: usize| NodeId::new((n_controllers + i) as u32);
    // Switch index layout: [0..n_core) core, then per pod: k/2 agg, k/2 edge.
    let pod_base = |p: usize| n_core + p * k;
    let agg = |p: usize, j: usize| sw(pod_base(p) + j);
    let edge = |p: usize, j: usize| sw(pod_base(p) + half + j);
    let mut g = Graph::new();
    for p in 0..k {
        for a in 0..half {
            for e in 0..half {
                g.add_link(agg(p, a), edge(p, e));
            }
            for c in 0..half {
                g.add_link(agg(p, a), sw(a * half + c));
            }
        }
    }
    finish_datacenter(format!("FatTree-{k}"), g, n_switches, n_controllers, |i| {
        (edge(i % k, 0), agg(i % k, 0))
    })
}

/// A Jellyfish datacenter topology (Singla et al., NSDI 2012): a random
/// `degree`-regular graph over `n_switches` switches, reproducible from `seed`.
///
/// Built with the Jellyfish paper's incremental construction: repeatedly join two
/// random switches with free ports that are not yet neighbors; when no such pair is
/// left but a switch still has two free ports, break a random existing link and splice
/// the switch into it. The construction is retried (deterministically — the RNG stream
/// continues) until the result is 2-edge-connected, so `kappa = 1` flows always exist;
/// with `degree >= 3` virtually every draw already is.
///
/// Controllers attach in-band to a random adjacent switch pair each.
///
/// # Panics
///
/// Panics if `degree < 3`, `n_switches <= degree`, `n_switches * degree` is odd, or
/// no 2-edge-connected draw is found after 64 attempts (not observed in practice).
// `u64::is_multiple_of` is newer than the workspace MSRV (1.82).
#[allow(clippy::manual_is_multiple_of)]
pub fn jellyfish(
    n_switches: usize,
    degree: usize,
    seed: u64,
    n_controllers: usize,
) -> NamedTopology {
    assert!(degree >= 3, "jellyfish needs degree >= 3, got {degree}");
    assert!(
        n_switches > degree,
        "jellyfish needs more than {degree} switches, got {n_switches}"
    );
    assert!(
        n_switches * degree % 2 == 0,
        "jellyfish needs an even number of ports (n_switches * degree), got {n_switches} * {degree}"
    );
    let sw = |i: usize| NodeId::new((n_controllers + i) as u32);
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = jellyfish_attempt(n_switches, degree, n_controllers, &mut rng);
    let mut attempts = 1;
    while !crate::connectivity::supports_kappa(&g, 1) {
        attempts += 1;
        assert!(
            attempts <= 64,
            "jellyfish({n_switches}, {degree}, seed {seed}): no 2-edge-connected draw in 64 attempts"
        );
        g = jellyfish_attempt(n_switches, degree, n_controllers, &mut rng);
    }
    let switch_graph = g.clone();
    let attach = |_i: usize| {
        // A random switch and a random neighbor of it: an adjacent pair.
        let a = rng.gen_range(0..n_switches);
        let neighbors = switch_graph.neighbor_vec(sw(a));
        let b = neighbors[rng.gen_range(0..neighbors.len())];
        (sw(a), b)
    };
    let name = format!("Jellyfish-{n_switches}-{degree}-s{seed}");
    finish_datacenter(name, g, n_switches, n_controllers, attach)
}

/// One draw of the Jellyfish incremental construction.
fn jellyfish_attempt(
    n_switches: usize,
    degree: usize,
    n_controllers: usize,
    rng: &mut Rng,
) -> Graph {
    let sw = |i: usize| NodeId::new((n_controllers + i) as u32);
    let mut g = Graph::new();
    for i in 0..n_switches {
        g.add_node(sw(i));
    }
    let mut free: Vec<usize> = vec![degree; n_switches];
    loop {
        let open: Vec<usize> = (0..n_switches).filter(|&i| free[i] > 0).collect();
        if open.is_empty() {
            break;
        }
        // Try random joins first; the quadratic budget makes exhaustion overwhelmingly
        // unlikely before the open set genuinely has no joinable pair left.
        let mut joined = false;
        if open.len() >= 2 {
            for _ in 0..open.len() * open.len() + 16 {
                let a = open[rng.gen_range(0..open.len())];
                let b = open[rng.gen_range(0..open.len())];
                if a != b && !g.has_link(sw(a), sw(b)) {
                    g.add_link(sw(a), sw(b));
                    free[a] -= 1;
                    free[b] -= 1;
                    joined = true;
                    break;
                }
            }
        }
        if joined {
            continue;
        }
        // Stuck: splice a switch with >= 2 free ports into a random existing link.
        let Some(&x) = open.iter().find(|&&i| free[i] >= 2) else {
            // A single leftover port (or a clique among the open set): accept the
            // near-regular graph, exactly as the Jellyfish paper does.
            break;
        };
        let links: Vec<_> = g
            .links()
            .filter(|l| {
                l.a != sw(x) && l.b != sw(x) && !g.has_link(sw(x), l.a) && !g.has_link(sw(x), l.b)
            })
            .collect();
        if links.is_empty() {
            break;
        }
        let link = links[rng.gen_range(0..links.len())];
        g.remove_link(link.a, link.b);
        g.add_link(sw(x), link.a);
        g.add_link(sw(x), link.b);
        free[x] -= 2;
    }
    g
}

/// A `rows x cols` grid (mesh) of switches — the worst-case high-diameter fabric for
/// the scale campaign. Switch-graph diameter is exactly `rows + cols - 2`; the grid is
/// 2-edge-connected (every face lies on a cycle) so `kappa = 1` flows exist, and
/// `max_supported_kappa = 1` (corner switches have degree 2).
///
/// Controllers attach in-band to horizontally adjacent switch pairs spread evenly over
/// the rows.
///
/// # Panics
///
/// Panics if either dimension is smaller than 2 (a 1xN grid is a line, which a single
/// link failure disconnects).
pub fn grid(rows: usize, cols: usize, n_controllers: usize) -> NamedTopology {
    assert!(
        rows >= 2 && cols >= 2,
        "grid needs both dimensions >= 2, got {rows}x{cols}"
    );
    let n_switches = rows * cols;
    let sw = |r: usize, c: usize| NodeId::new((n_controllers + r * cols + c) as u32);
    let mut g = Graph::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_link(sw(r, c), sw(r, c + 1));
            }
            if r + 1 < rows {
                g.add_link(sw(r, c), sw(r + 1, c));
            }
        }
    }
    finish_datacenter(
        format!("Grid-{rows}x{cols}"),
        g,
        n_switches,
        n_controllers,
        |i| (sw(i % rows, 0), sw(i % rows, 1)),
    )
}

/// A ring of `n_switches` switches with controllers attached — the smallest useful
/// 2-edge-connected test topology.
///
/// # Panics
///
/// Panics if `n_switches < 3`.
pub fn ring(n_switches: usize, n_controllers: usize) -> NamedTopology {
    assert!(n_switches >= 3, "ring needs at least 3 switches");
    let sw = |i: usize| NodeId::new((n_controllers + i) as u32);
    let mut g = Graph::new();
    for i in 0..n_switches {
        g.add_link(sw(i), sw((i + 1) % n_switches));
    }
    let switch_graph = g.clone();
    let mut full = g;
    let controllers: Vec<NodeId> = (0..n_controllers).map(|i| NodeId::new(i as u32)).collect();
    for (i, &c) in controllers.iter().enumerate() {
        let a = (i * n_switches / n_controllers.max(1)) % n_switches;
        full.add_link(c, sw(a));
        full.add_link(c, sw((a + 1) % n_switches));
    }
    let switches: Vec<NodeId> = (0..n_switches).map(sw).collect();
    NamedTopology {
        name: format!("Ring-{n_switches}"),
        graph: full,
        switch_graph,
        controllers,
        switches,
        expected_diameter: (n_switches / 2) as u32,
    }
}

/// A single line of switches (1-edge-connected) — useful for testing `kappa = 0`
/// behaviour and disconnection scenarios.
///
/// # Panics
///
/// Panics if `n_switches == 0`.
pub fn line(n_switches: usize, n_controllers: usize) -> NamedTopology {
    assert!(n_switches >= 1, "line needs at least one switch");
    let sw = |i: usize| NodeId::new((n_controllers + i) as u32);
    let mut g = Graph::new();
    g.add_node(sw(0));
    for i in 1..n_switches {
        g.add_link(sw(i - 1), sw(i));
    }
    let switch_graph = g.clone();
    let mut full = g;
    let controllers: Vec<NodeId> = (0..n_controllers).map(|i| NodeId::new(i as u32)).collect();
    for (i, &c) in controllers.iter().enumerate() {
        let a = (i * n_switches / n_controllers.max(1)) % n_switches;
        full.add_link(c, sw(a));
    }
    let switches: Vec<NodeId> = (0..n_switches).map(sw).collect();
    NamedTopology {
        name: format!("Line-{n_switches}"),
        graph: full,
        switch_graph,
        controllers,
        switches,
        expected_diameter: n_switches.saturating_sub(1) as u32,
    }
}

/// A random connected 2-edge-connected topology, reproducible from `seed`.
///
/// Starts from a ring (guaranteeing 2-edge-connectivity) and adds `extra_links` random
/// chords. Used by property tests to exercise the algorithms on irregular graphs.
///
/// # Panics
///
/// Panics if `n_switches < 3`.
pub fn random_2connected(
    n_switches: usize,
    extra_links: usize,
    n_controllers: usize,
    seed: u64,
) -> NamedTopology {
    assert!(
        n_switches >= 3,
        "random_2connected needs at least 3 switches"
    );
    let mut rng = Rng::seed_from_u64(seed);
    let sw = |i: usize| NodeId::new((n_controllers + i) as u32);
    // Random ring: permute the switches so the ring order is not the identifier order.
    let mut order: Vec<usize> = (0..n_switches).collect();
    rng.shuffle(&mut order);
    let mut g = Graph::new();
    for i in 0..n_switches {
        g.add_link(sw(order[i]), sw(order[(i + 1) % n_switches]));
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < extra_links && attempts < extra_links * 20 + 100 {
        attempts += 1;
        let a = rng.gen_range(0..n_switches);
        let b = rng.gen_range(0..n_switches);
        if a != b && !g.has_link(sw(a), sw(b)) {
            g.add_link(sw(a), sw(b));
            added += 1;
        }
    }
    let switch_graph = g.clone();
    let mut full = g;
    let controllers: Vec<NodeId> = (0..n_controllers).map(|i| NodeId::new(i as u32)).collect();
    for &c in &controllers {
        let a = rng.gen_range(0..n_switches);
        let mut b = rng.gen_range(0..n_switches);
        while b == a {
            b = rng.gen_range(0..n_switches);
        }
        full.add_link(c, sw(a));
        full.add_link(c, sw(b));
    }
    let switches: Vec<NodeId> = (0..n_switches).map(sw).collect();
    let expected_diameter = crate::paths::diameter(&switch_graph);
    NamedTopology {
        name: format!("Random-{n_switches}-{seed}"),
        graph: full,
        switch_graph,
        controllers,
        switches,
        expected_diameter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity;
    use crate::paths;

    #[test]
    fn table8_node_counts_and_diameters() {
        // Regenerates the paper's Table 8 and checks it exactly.
        let expected = [
            ("B4", 12, 5),
            ("Clos", 20, 4),
            ("Telstra", 57, 8),
            ("AT&T", 172, 10),
            ("EBONE", 208, 11),
        ];
        for (name, nodes, diameter) in expected {
            let net = by_name(name, 3);
            assert_eq!(net.switch_count(), nodes, "{name} switch count");
            assert_eq!(
                paths::diameter(&net.switch_graph),
                diameter,
                "{name} diameter"
            );
            assert_eq!(net.expected_diameter, diameter);
        }
    }

    #[test]
    fn paper_networks_are_two_edge_connected() {
        for net in paper_networks(3) {
            assert!(
                connectivity::supports_kappa(&net.graph, 1),
                "{} must be 2-edge-connected including controllers",
                net.name
            );
        }
    }

    #[test]
    fn controllers_and_switches_partition_ids() {
        let net = telstra(4);
        assert_eq!(net.controller_count(), 4);
        assert_eq!(net.switch_count(), 57);
        assert_eq!(net.node_count(), 61);
        assert_eq!(net.graph.node_count(), 61);
        for (i, c) in net.controllers.iter().enumerate() {
            assert_eq!(c.index() as usize, i);
            assert_eq!(net.kind(*c), NodeKind::Controller);
        }
        for s in &net.switches {
            assert_eq!(net.kind(*s), NodeKind::Switch);
        }
    }

    #[test]
    fn clos_is_a_fat_tree() {
        let net = clos(1);
        assert_eq!(net.switch_count(), 20);
        // Edge and aggregation switches have degree >= 2; cores have degree 4.
        for s in &net.switches {
            assert!(net.switch_graph.degree(*s) >= 2);
        }
        assert_eq!(paths::diameter(&net.switch_graph), 4);
    }

    #[test]
    fn by_name_accepts_all_paper_names() {
        for name in PAPER_NETWORK_NAMES {
            let net = by_name(name, 2);
            assert_eq!(net.controller_count(), 2);
        }
        // case-insensitive and the AT&T alias
        assert_eq!(by_name("att", 1).switch_count(), 172);
        assert_eq!(by_name("ebone", 1).switch_count(), 208);
    }

    #[test]
    #[should_panic(expected = "unknown network")]
    fn by_name_rejects_unknown() {
        let _ = by_name("arpanet", 1);
    }

    #[test]
    fn isp_like_diameter_is_exact() {
        for (n, d) in [(20, 5), (40, 7), (100, 9)] {
            let net = isp_like(n, d, 2);
            assert_eq!(paths::diameter(&net.switch_graph), d, "n={n} d={d}");
            assert!(connectivity::supports_kappa(&net.switch_graph, 1));
        }
    }

    #[test]
    fn controllers_stay_close_to_backbone() {
        // Attaching controllers must not blow up the full-graph diameter by more than 2.
        for net in paper_networks(7) {
            let full_d = paths::diameter(&net.graph);
            assert!(
                full_d <= net.expected_diameter + 2,
                "{}: full diameter {} vs switch diameter {}",
                net.name,
                full_d,
                net.expected_diameter
            );
        }
    }

    #[test]
    fn ring_and_line_shapes() {
        let r = ring(6, 2);
        assert_eq!(r.switch_count(), 6);
        assert_eq!(paths::diameter(&r.switch_graph), 3);
        assert!(connectivity::supports_kappa(&r.switch_graph, 1));

        let l = line(5, 1);
        assert_eq!(l.switch_count(), 5);
        assert_eq!(paths::diameter(&l.switch_graph), 4);
        assert_eq!(connectivity::edge_connectivity(&l.switch_graph), 1);
    }

    #[test]
    fn random_topology_is_reproducible_and_robust() {
        let a = random_2connected(30, 10, 3, 42);
        let b = random_2connected(30, 10, 3, 42);
        assert_eq!(a.graph, b.graph);
        assert!(connectivity::supports_kappa(&a.graph, 1));
        let c = random_2connected(30, 10, 3, 43);
        assert_ne!(a.graph, c.graph, "different seeds should differ");
    }

    #[test]
    fn fat_tree_shape_and_kappa() {
        for k in [4usize, 6, 8] {
            let net = fat_tree(k, 3);
            let half = k / 2;
            assert_eq!(net.switch_count(), half * half + k * k, "k={k} size");
            assert_eq!(net.expected_diameter, 4, "k={k} diameter");
            assert_eq!(paths::diameter(&net.switch_graph), 4);
            // Edge connectivity is exactly k/2 (limited by the edge switches), so the
            // fabric supports kappa up to k/2 - 1.
            assert_eq!(
                connectivity::max_supported_kappa(&net.switch_graph),
                half - 1,
                "k={k} kappa"
            );
            assert!(connectivity::supports_kappa(&net.graph, 1));
            // Core switches have degree k, pod switches degree k (k/2 down + k/2 up).
            assert_eq!(net.switch_graph.max_degree(), k);
        }
        // fat_tree(4) is the paper's Clos network at the same scale.
        assert_eq!(fat_tree(4, 1).switch_count(), clos(1).switch_count());
    }

    #[test]
    fn jellyfish_is_regular_reproducible_and_robust() {
        let a = jellyfish(40, 4, 7, 3);
        let b = jellyfish(40, 4, 7, 3);
        assert_eq!(a.graph, b.graph, "same seed, same wiring");
        let c = jellyfish(40, 4, 8, 3);
        assert_ne!(a.graph, c.graph, "different seeds should differ");
        for (n, d, seed) in [(20, 3, 1), (40, 4, 2), (90, 5, 3)] {
            let net = jellyfish(n, d, seed, 2);
            assert_eq!(net.switch_count(), n);
            // Near-regular: every switch within one port of the target degree, and
            // never above it.
            for s in &net.switches {
                let deg = net.switch_graph.degree(*s);
                assert!(
                    deg == d || deg == d - 1,
                    "{}: switch {s:?} has degree {deg}, want ~{d}",
                    net.name
                );
            }
            assert!(
                connectivity::max_supported_kappa(&net.switch_graph) >= 1,
                "{} must be 2-edge-connected",
                net.name
            );
            assert!(paths::is_connected(&net.graph));
        }
    }

    #[test]
    fn grid_shape_and_kappa() {
        for (rows, cols) in [(2, 2), (4, 7), (10, 10)] {
            let net = grid(rows, cols, 3);
            assert_eq!(net.switch_count(), rows * cols);
            assert_eq!(
                net.expected_diameter,
                (rows + cols - 2) as u32,
                "{rows}x{cols} diameter"
            );
            // Corners have degree 2, so the grid supports exactly kappa = 1.
            assert_eq!(connectivity::max_supported_kappa(&net.switch_graph), 1);
            assert!(connectivity::supports_kappa(&net.graph, 1));
        }
    }

    #[test]
    fn by_name_builds_generator_families() {
        // Parenthesized and dashed spellings are equivalent.
        let paren = by_name("fat_tree(4)", 2);
        let dashed = by_name("fat-tree-4", 2);
        assert_eq!(paren.graph, dashed.graph);
        assert_eq!(paren.switch_count(), 20);

        let jf = by_name("jellyfish(20, 3, 5)", 1);
        assert_eq!(jf.graph, jellyfish(20, 3, 5, 1).graph);
        // The seed argument defaults to 1.
        assert_eq!(
            by_name("jellyfish(20, 3)", 1).graph,
            jellyfish(20, 3, 1, 1).graph
        );

        let g = by_name("Grid(3, 4)", 2);
        assert_eq!(g.switch_count(), 12);
        assert_eq!(g.graph, by_name("grid-3-4", 2).graph);
    }

    #[test]
    #[should_panic(expected = "unknown network")]
    fn by_name_rejects_malformed_generator_args() {
        let _ = by_name("fat_tree(4, 9)", 1);
    }

    #[test]
    fn zero_controllers_is_allowed_by_builders() {
        // The degenerate case is useful for pure data-plane tests.
        let net = isp_like(24, 4, 0);
        assert_eq!(net.controller_count(), 0);
        assert_eq!(net.graph.node_count(), 24);
    }
}
