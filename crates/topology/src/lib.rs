//! Graph substrate for the Renaissance self-stabilizing SDN control plane.
//!
//! This crate provides everything Renaissance's controllers need to reason about the
//! network *as a graph*:
//!
//! * [`NodeId`] / [`NodeKind`] — the shared identifier space of controllers (`PC`) and
//!   switches (`PS`) used throughout the workspace,
//! * [`Graph`] — an undirected multigraph-free adjacency structure modelling the
//!   connected communication topology `Gc` and the operational topology `Go`,
//! * topology [`builders`] — the networks from the paper's Table 8 (B4, Clos, Telstra,
//!   AT&T, EBONE) plus generic generators used by tests and benches,
//! * [`paths`] — BFS "first shortest path" computation (lowest-index tie-break, exactly
//!   as the paper defines it in Section 5.4), distances, eccentricity, and diameter,
//! * [`connectivity`] — edge connectivity `lambda(Gc)` via unit-capacity max-flow,
//!   needed to validate the `kappa + 1`-edge-connectivity assumption,
//! * [`flows`] — computation of kappa-fault-resilient flows: the per-switch,
//!   per-destination priority-ordered next-hop sets that `myRules()` installs
//!   (Section 2.2.2 and 3.3 of the paper).
//!
//! # Example
//!
//! ```
//! use sdn_topology::{builders, flows::FlowPlanner, paths};
//!
//! // Google's B4 WAN with 3 controllers attached (paper, Table 8 / Figure 5).
//! let net = builders::b4(3);
//! assert_eq!(net.graph.node_count(), 12 + 3);
//! let d = paths::diameter(&net.switch_graph);
//! assert_eq!(d, 5);
//!
//! // Compute 1-fault-resilient next hops between every pair of nodes.
//! let planner = FlowPlanner::new(1);
//! let plan = planner.plan(&net.graph);
//! assert!(!plan.is_empty());
//! assert!(plan.next_hops(net.switches[0], net.controllers[0]).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
pub mod connectivity;
pub mod flat;
pub mod flows;
pub mod graph;
pub mod ids;
pub mod layout;
pub mod paths;

pub use builders::NamedTopology;
pub use flat::{BfsScratch, FlatGraph};
pub use flows::{FlowPlan, FlowPlanner, NextHopSet};
pub use graph::Graph;
pub use ids::{NodeId, NodeKind};
pub use layout::FatTreeLayout;
