//! Shortest-path machinery: BFS trees, "first shortest paths", distances and diameter.
//!
//! The paper (Section 5.4) defines the *first shortest path* between two nodes as the
//! shortest path that, among all shortest paths, uses the neighbors with minimum
//! identifiers. Because [`crate::Graph::neighbors`] iterates in ascending identifier
//! order, a plain BFS that only keeps the *first* discovered parent computes exactly
//! this path, which keeps every controller's routing decision deterministic and
//! reproducible.

use crate::graph::Graph;
use crate::ids::NodeId;
use std::collections::{BTreeMap, VecDeque};

/// The result of a breadth-first search from a single source.
///
/// Stores, for every reachable node, its hop distance from the source and its parent on
/// the first shortest path.
///
/// # Example
///
/// ```
/// use sdn_topology::{Graph, NodeId, paths::BfsTree};
/// let g = Graph::from_links([
///     (NodeId::new(0), NodeId::new(1)),
///     (NodeId::new(1), NodeId::new(2)),
/// ]);
/// let tree = BfsTree::compute(&g, NodeId::new(0));
/// assert_eq!(tree.distance(NodeId::new(2)), Some(2));
/// assert_eq!(tree.path_to(NodeId::new(2)).unwrap(),
///            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsTree {
    source: NodeId,
    distance: BTreeMap<NodeId, u32>,
    parent: BTreeMap<NodeId, NodeId>,
}

impl BfsTree {
    /// Runs a breadth-first search over `graph` starting at `source`.
    ///
    /// If `source` is not in the graph, the tree contains only the source itself at
    /// distance 0 (mirroring a node that knows about itself but nothing else).
    pub fn compute(graph: &Graph, source: NodeId) -> Self {
        let mut distance = BTreeMap::new();
        let mut parent = BTreeMap::new();
        let mut queue = VecDeque::new();
        distance.insert(source, 0);
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            let du = distance[&u];
            for v in graph.neighbors(u) {
                if let std::collections::btree_map::Entry::Vacant(e) = distance.entry(v) {
                    e.insert(du + 1);
                    parent.insert(v, u);
                    queue.push_back(v);
                }
            }
        }
        BfsTree {
            source,
            distance,
            parent,
        }
    }

    /// The source node the tree was computed from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Hop distance from the source to `node`, or `None` if unreachable.
    pub fn distance(&self, node: NodeId) -> Option<u32> {
        self.distance.get(&node).copied()
    }

    /// Returns `true` when `node` is reachable from the source.
    pub fn reaches(&self, node: NodeId) -> bool {
        self.distance.contains_key(&node)
    }

    /// The parent of `node` on its first shortest path from the source.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent.get(&node).copied()
    }

    /// Iterates over all reachable nodes together with their distances.
    pub fn reachable(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.distance.iter().map(|(&n, &d)| (n, d))
    }

    /// Number of reachable nodes, including the source.
    pub fn reachable_count(&self) -> usize {
        self.distance.len()
    }

    /// The largest distance of any reachable node (the source's eccentricity restricted
    /// to its connected component).
    pub fn eccentricity(&self) -> u32 {
        self.distance.values().copied().max().unwrap_or(0)
    }

    /// Reconstructs the first shortest path from the source to `target`
    /// (inclusive of both endpoints), or `None` if the target is unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if !self.distance.contains_key(&target) {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while cur != self.source {
            cur = *self.parent.get(&cur)?;
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// The first hop from the source towards `target`, or `None` if the target is the
    /// source itself or unreachable.
    pub fn first_hop(&self, target: NodeId) -> Option<NodeId> {
        let path = self.path_to(target)?;
        path.get(1).copied()
    }
}

/// Computes the first shortest path between `from` and `to`, or `None` when disconnected.
pub fn first_shortest_path(graph: &Graph, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    BfsTree::compute(graph, from).path_to(to)
}

/// Computes the hop distance between `from` and `to`, or `None` when disconnected.
pub fn distance(graph: &Graph, from: NodeId, to: NodeId) -> Option<u32> {
    BfsTree::compute(graph, from).distance(to)
}

/// Computes the diameter of the graph: the largest finite pairwise distance.
///
/// Disconnected node pairs are ignored; an empty graph has diameter 0.
pub fn diameter(graph: &Graph) -> u32 {
    graph
        .nodes()
        .map(|n| BfsTree::compute(graph, n).eccentricity())
        .max()
        .unwrap_or(0)
}

/// Returns a pair of nodes realizing the diameter, useful for placing the iperf hosts of
/// the throughput experiments "at maximal distance from each other" (paper, Section 6.3).
pub fn farthest_pair(graph: &Graph) -> Option<(NodeId, NodeId, u32)> {
    let mut best: Option<(NodeId, NodeId, u32)> = None;
    for n in graph.nodes() {
        let tree = BfsTree::compute(graph, n);
        for (m, d) in tree.reachable() {
            if best.map(|(_, _, bd)| d > bd).unwrap_or(true) {
                best = Some((n, m, d));
            }
        }
    }
    best
}

/// Returns `true` if every node can reach every other node.
pub fn is_connected(graph: &Graph) -> bool {
    match graph.nodes().next() {
        None => true,
        Some(start) => BfsTree::compute(graph, start).reachable_count() == graph.node_count(),
    }
}

/// Returns the set of nodes reachable from `source` (including `source`), in order.
pub fn reachable_set(graph: &Graph, source: NodeId) -> Vec<NodeId> {
    BfsTree::compute(graph, source)
        .reachable()
        .map(|(n, _)| n)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// 0-1-2-3 path plus a chord 0-3.
    fn ring4() -> Graph {
        Graph::from_links([(n(0), n(1)), (n(1), n(2)), (n(2), n(3)), (n(3), n(0))])
    }

    #[test]
    fn bfs_distances_on_ring() {
        let tree = BfsTree::compute(&ring4(), n(0));
        assert_eq!(tree.distance(n(0)), Some(0));
        assert_eq!(tree.distance(n(1)), Some(1));
        assert_eq!(tree.distance(n(3)), Some(1));
        assert_eq!(tree.distance(n(2)), Some(2));
        assert_eq!(tree.eccentricity(), 2);
        assert_eq!(tree.reachable_count(), 4);
        assert!(tree.reaches(n(2)));
    }

    #[test]
    fn first_shortest_path_uses_lowest_index_neighbors() {
        // Two shortest paths 0->3: 0-1-3 and 0-2-3. The "first" one goes through 1.
        let g = Graph::from_links([(n(0), n(1)), (n(0), n(2)), (n(1), n(3)), (n(2), n(3))]);
        let path = first_shortest_path(&g, n(0), n(3)).unwrap();
        assert_eq!(path, vec![n(0), n(1), n(3)]);
        let tree = BfsTree::compute(&g, n(0));
        assert_eq!(tree.first_hop(n(3)), Some(n(1)));
        assert_eq!(tree.first_hop(n(0)), None);
    }

    #[test]
    fn unreachable_nodes_have_no_path() {
        let mut g = ring4();
        g.add_node(n(9));
        let tree = BfsTree::compute(&g, n(0));
        assert_eq!(tree.distance(n(9)), None);
        assert!(tree.path_to(n(9)).is_none());
        assert!(!is_connected(&g));
        assert_eq!(reachable_set(&g, n(0)).len(), 4);
    }

    #[test]
    fn bfs_from_missing_source_contains_only_source() {
        let g = ring4();
        let tree = BfsTree::compute(&g, n(42));
        assert_eq!(tree.reachable_count(), 1);
        assert_eq!(tree.distance(n(42)), Some(0));
        assert_eq!(tree.distance(n(0)), None);
    }

    #[test]
    fn diameter_of_path_graph() {
        let g = Graph::from_links([(n(0), n(1)), (n(1), n(2)), (n(2), n(3)), (n(3), n(4))]);
        assert_eq!(diameter(&g), 4);
        let (a, b, d) = farthest_pair(&g).unwrap();
        assert_eq!(d, 4);
        assert_ne!(a, b);
    }

    #[test]
    fn diameter_of_ring_and_empty() {
        assert_eq!(diameter(&ring4()), 2);
        assert_eq!(diameter(&Graph::new()), 0);
        assert!(is_connected(&Graph::new()));
        assert!(farthest_pair(&Graph::new()).is_none());
    }

    #[test]
    fn path_endpoints_are_inclusive() {
        let g = ring4();
        let p = first_shortest_path(&g, n(1), n(1)).unwrap();
        assert_eq!(p, vec![n(1)]);
        let p = first_shortest_path(&g, n(1), n(2)).unwrap();
        assert_eq!(p.first(), Some(&n(1)));
        assert_eq!(p.last(), Some(&n(2)));
    }

    #[test]
    fn distance_helper_matches_tree() {
        let g = ring4();
        assert_eq!(distance(&g, n(0), n(2)), Some(2));
        assert_eq!(distance(&g, n(0), n(99)), None);
    }
}
