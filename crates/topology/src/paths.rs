//! Shortest-path machinery: BFS trees, "first shortest paths", distances and diameter.
//!
//! The paper (Section 5.4) defines the *first shortest path* between two nodes as the
//! shortest path that, among all shortest paths, uses the neighbors with minimum
//! identifiers. Because [`crate::Graph::neighbors`] iterates in ascending identifier
//! order — an order the [`FlatGraph`] snapshot preserves — a plain BFS that only keeps
//! the *first* discovered parent computes exactly this path, which keeps every
//! controller's routing decision deterministic and reproducible.
//!
//! All traversals run over a [`FlatGraph`] snapshot with a reusable [`BfsScratch`]
//! workspace: multi-source sweeps ([`diameter`], [`farthest_pair`]) snapshot once and
//! reuse the scratch across every search instead of allocating fresh maps per BFS.

use crate::flat::{BfsScratch, FlatGraph, NO_INDEX};
use crate::graph::Graph;
use crate::ids::NodeId;

/// The result of a breadth-first search from a single source.
///
/// Stores, for every reachable node, its hop distance from the source and its parent on
/// the first shortest path. Backed by the flat-indexed snapshot the search ran over.
///
/// # Example
///
/// ```
/// use sdn_topology::{Graph, NodeId, paths::BfsTree};
/// let g = Graph::from_links([
///     (NodeId::new(0), NodeId::new(1)),
///     (NodeId::new(1), NodeId::new(2)),
/// ]);
/// let tree = BfsTree::compute(&g, NodeId::new(0));
/// assert_eq!(tree.distance(NodeId::new(2)), Some(2));
/// assert_eq!(tree.path_to(NodeId::new(2)).unwrap(),
///            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsTree {
    source: NodeId,
    flat: FlatGraph,
    source_idx: u32,
    /// Per dense index; [`NO_INDEX`] marks unreachable nodes.
    dist: Vec<u32>,
    /// Per dense index; [`NO_INDEX`] marks the source and unreachable nodes.
    parent: Vec<u32>,
    reached: usize,
}

impl BfsTree {
    /// Runs a breadth-first search over `graph` starting at `source`.
    ///
    /// If `source` is not in the graph, the tree contains only the source itself at
    /// distance 0 (mirroring a node that knows about itself but nothing else).
    pub fn compute(graph: &Graph, source: NodeId) -> Self {
        let flat = if graph.contains_node(source) {
            FlatGraph::from_graph(graph)
        } else {
            // Mirror the historical behavior: a missing source sees only itself.
            let mut only_source = Graph::new();
            only_source.add_node(source);
            FlatGraph::from_graph(&only_source)
        };
        let mut scratch = BfsScratch::new();
        Self::compute_flat(flat, source, &mut scratch)
    }

    /// Runs the search over an existing snapshot, reusing `scratch`.
    ///
    /// # Panics
    ///
    /// Panics if `source` is not part of the snapshot.
    pub fn compute_flat(flat: FlatGraph, source: NodeId, scratch: &mut BfsScratch) -> Self {
        let source_idx = flat
            .index_of(source)
            // stancheck: allow(unwrap-expect) — documented contract (see `# Panics`): callers pass sources drawn from the same snapshot they hand in
            .expect("BFS source must be part of the snapshot");
        let reached = flat.bfs(source_idx, scratch);
        BfsTree {
            source,
            source_idx,
            dist: scratch.distances().to_vec(),
            parent: scratch.parents().to_vec(),
            reached,
            flat,
        }
    }

    /// The source node the tree was computed from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Hop distance from the source to `node`, or `None` if unreachable.
    pub fn distance(&self, node: NodeId) -> Option<u32> {
        let idx = self.flat.index_of(node)?;
        match self.dist[idx as usize] {
            NO_INDEX => None,
            d => Some(d),
        }
    }

    /// Returns `true` when `node` is reachable from the source.
    pub fn reaches(&self, node: NodeId) -> bool {
        self.distance(node).is_some()
    }

    /// The parent of `node` on its first shortest path from the source.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        let idx = self.flat.index_of(node)?;
        match self.parent[idx as usize] {
            NO_INDEX => None,
            p => Some(self.flat.node_at(p)),
        }
    }

    /// Iterates over all reachable nodes together with their distances, in ascending
    /// identifier order.
    pub fn reachable(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.flat
            .node_ids()
            .iter()
            .zip(&self.dist)
            .filter(|(_, &d)| d != NO_INDEX)
            .map(|(&n, &d)| (n, d))
    }

    /// Number of reachable nodes, including the source.
    pub fn reachable_count(&self) -> usize {
        self.reached
    }

    /// The largest distance of any reachable node (the source's eccentricity restricted
    /// to its connected component).
    pub fn eccentricity(&self) -> u32 {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != NO_INDEX)
            .max()
            .unwrap_or(0)
    }

    /// Reconstructs the first shortest path from the source to `target`
    /// (inclusive of both endpoints), or `None` if the target is unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        let target_idx = self.flat.index_of(target)?;
        if self.dist[target_idx as usize] == NO_INDEX {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target_idx;
        while cur != self.source_idx {
            cur = self.parent[cur as usize];
            if cur == NO_INDEX {
                return None;
            }
            path.push(self.flat.node_at(cur));
        }
        path.reverse();
        Some(path)
    }

    /// The first hop from the source towards `target`, or `None` if the target is the
    /// source itself or unreachable.
    pub fn first_hop(&self, target: NodeId) -> Option<NodeId> {
        let mut idx = self.flat.index_of(target)?;
        if idx == self.source_idx || self.dist[idx as usize] == NO_INDEX {
            return None;
        }
        // Walk the parent chain until one step below the source.
        while self.parent[idx as usize] != self.source_idx {
            idx = self.parent[idx as usize];
            if idx == NO_INDEX {
                return None;
            }
        }
        Some(self.flat.node_at(idx))
    }
}

/// Computes the first shortest path between `from` and `to`, or `None` when disconnected.
pub fn first_shortest_path(graph: &Graph, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    BfsTree::compute(graph, from).path_to(to)
}

/// Computes the hop distance between `from` and `to`, or `None` when disconnected.
pub fn distance(graph: &Graph, from: NodeId, to: NodeId) -> Option<u32> {
    BfsTree::compute(graph, from).distance(to)
}

/// Computes the diameter of the graph: the largest finite pairwise distance.
///
/// Disconnected node pairs are ignored; an empty graph has diameter 0. One snapshot,
/// one scratch, `n` allocation-free searches.
pub fn diameter(graph: &Graph) -> u32 {
    let flat = FlatGraph::from_graph(graph);
    let mut scratch = BfsScratch::new();
    let mut best = 0u32;
    for idx in 0..flat.node_count() as u32 {
        flat.bfs(idx, &mut scratch);
        best = best.max(scratch.max_distance());
    }
    best
}

/// Returns a pair of nodes realizing the diameter, useful for placing the iperf hosts of
/// the throughput experiments "at maximal distance from each other" (paper, Section 6.3).
pub fn farthest_pair(graph: &Graph) -> Option<(NodeId, NodeId, u32)> {
    let flat = FlatGraph::from_graph(graph);
    let mut scratch = BfsScratch::new();
    let mut best: Option<(NodeId, NodeId, u32)> = None;
    for idx in 0..flat.node_count() as u32 {
        flat.bfs(idx, &mut scratch);
        for (j, &d) in scratch.distances().iter().enumerate() {
            if d != NO_INDEX && best.map(|(_, _, bd)| d > bd).unwrap_or(true) {
                best = Some((flat.node_at(idx), flat.node_at(j as u32), d));
            }
        }
    }
    best
}

/// Returns `true` if every node can reach every other node.
pub fn is_connected(graph: &Graph) -> bool {
    let flat = FlatGraph::from_graph(graph);
    if flat.is_empty() {
        return true;
    }
    let mut scratch = BfsScratch::new();
    flat.bfs(0, &mut scratch) == flat.node_count()
}

/// Returns the set of nodes reachable from `source` (including `source`), in order.
///
/// A source outside the graph reaches only itself — mirroring [`BfsTree::compute`]'s
/// missing-source behavior.
pub fn reachable_set(graph: &Graph, source: NodeId) -> Vec<NodeId> {
    let flat = FlatGraph::from_graph(graph);
    let Some(source_idx) = flat.index_of(source) else {
        return vec![source];
    };
    let mut scratch = BfsScratch::new();
    let reached = flat.bfs(source_idx, &mut scratch);
    let mut out = Vec::with_capacity(reached);
    for (j, &d) in scratch.distances().iter().enumerate() {
        if d != NO_INDEX {
            out.push(flat.node_at(j as u32));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// 0-1-2-3 path plus a chord 0-3.
    fn ring4() -> Graph {
        Graph::from_links([(n(0), n(1)), (n(1), n(2)), (n(2), n(3)), (n(3), n(0))])
    }

    #[test]
    fn bfs_distances_on_ring() {
        let tree = BfsTree::compute(&ring4(), n(0));
        assert_eq!(tree.distance(n(0)), Some(0));
        assert_eq!(tree.distance(n(1)), Some(1));
        assert_eq!(tree.distance(n(3)), Some(1));
        assert_eq!(tree.distance(n(2)), Some(2));
        assert_eq!(tree.eccentricity(), 2);
        assert_eq!(tree.reachable_count(), 4);
        assert!(tree.reaches(n(2)));
    }

    #[test]
    fn first_shortest_path_uses_lowest_index_neighbors() {
        // Two shortest paths 0->3: 0-1-3 and 0-2-3. The "first" one goes through 1.
        let g = Graph::from_links([(n(0), n(1)), (n(0), n(2)), (n(1), n(3)), (n(2), n(3))]);
        let path = first_shortest_path(&g, n(0), n(3)).unwrap();
        assert_eq!(path, vec![n(0), n(1), n(3)]);
        let tree = BfsTree::compute(&g, n(0));
        assert_eq!(tree.first_hop(n(3)), Some(n(1)));
        assert_eq!(tree.first_hop(n(0)), None);
    }

    #[test]
    fn unreachable_nodes_have_no_path() {
        let mut g = ring4();
        g.add_node(n(9));
        let tree = BfsTree::compute(&g, n(0));
        assert_eq!(tree.distance(n(9)), None);
        assert!(tree.path_to(n(9)).is_none());
        assert!(tree.first_hop(n(9)).is_none());
        assert!(!is_connected(&g));
        assert_eq!(reachable_set(&g, n(0)).len(), 4);
        // A missing source reaches only itself, like BfsTree::compute.
        assert_eq!(reachable_set(&g, n(77)), vec![n(77)]);
    }

    #[test]
    fn bfs_from_missing_source_contains_only_source() {
        let g = ring4();
        let tree = BfsTree::compute(&g, n(42));
        assert_eq!(tree.reachable_count(), 1);
        assert_eq!(tree.distance(n(42)), Some(0));
        assert_eq!(tree.distance(n(0)), None);
    }

    #[test]
    fn diameter_of_path_graph() {
        let g = Graph::from_links([(n(0), n(1)), (n(1), n(2)), (n(2), n(3)), (n(3), n(4))]);
        assert_eq!(diameter(&g), 4);
        let (a, b, d) = farthest_pair(&g).unwrap();
        assert_eq!(d, 4);
        assert_ne!(a, b);
    }

    #[test]
    fn diameter_of_ring_and_empty() {
        assert_eq!(diameter(&ring4()), 2);
        assert_eq!(diameter(&Graph::new()), 0);
        assert!(is_connected(&Graph::new()));
        assert!(farthest_pair(&Graph::new()).is_none());
    }

    #[test]
    fn path_endpoints_are_inclusive() {
        let g = ring4();
        let p = first_shortest_path(&g, n(1), n(1)).unwrap();
        assert_eq!(p, vec![n(1)]);
        let p = first_shortest_path(&g, n(1), n(2)).unwrap();
        assert_eq!(p.first(), Some(&n(1)));
        assert_eq!(p.last(), Some(&n(2)));
    }

    #[test]
    fn distance_helper_matches_tree() {
        let g = ring4();
        assert_eq!(distance(&g, n(0), n(2)), Some(2));
        assert_eq!(distance(&g, n(0), n(99)), None);
    }

    #[test]
    fn reachable_iterates_in_ascending_order() {
        let g = Graph::from_links([(n(5), n(2)), (n(2), n(9))]);
        let tree = BfsTree::compute(&g, n(5));
        let order: Vec<NodeId> = tree.reachable().map(|(node, _)| node).collect();
        assert_eq!(order, vec![n(2), n(5), n(9)]);
        assert_eq!(tree.parent(n(9)), Some(n(2)));
        assert_eq!(tree.parent(n(5)), None);
    }
}
