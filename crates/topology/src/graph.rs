//! Undirected graph model of the communication topology `Gc` and operational topology `Go`.
//!
//! The graph is deliberately simple: dense node identifiers, sorted adjacency sets (so
//! every traversal is deterministic, which the paper's "first shortest path" definition
//! requires), and cheap cloning so a controller can snapshot its current view.

use crate::ids::{Link, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// An undirected graph over [`NodeId`]s with deterministic (sorted) adjacency.
///
/// Used both for the ground-truth connected topology `Gc` maintained by the simulator
/// and for the per-controller *discovered* topology `G(replyDB)` that Algorithm 2
/// accumulates from query replies.
///
/// # Example
///
/// ```
/// use sdn_topology::{Graph, NodeId};
/// let mut g = Graph::new();
/// g.add_link(NodeId::new(0), NodeId::new(1));
/// g.add_link(NodeId::new(1), NodeId::new(2));
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.link_count(), 2);
/// assert!(g.has_link(NodeId::new(0), NodeId::new(1)));
/// assert_eq!(g.neighbors(NodeId::new(1)).count(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Graph {
    adjacency: BTreeMap<NodeId, BTreeSet<NodeId>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph {
            adjacency: BTreeMap::new(),
        }
    }

    /// Creates a graph from an iterator of undirected edges, adding nodes as needed.
    pub fn from_links<I>(links: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut g = Graph::new();
        for (a, b) in links {
            g.add_link(a, b);
        }
        g
    }

    /// Adds an isolated node (no-op if it already exists).
    pub fn add_node(&mut self, node: NodeId) {
        self.adjacency.entry(node).or_default();
    }

    /// Removes a node and every link adjacent to it.
    ///
    /// Returns `true` if the node existed.
    pub fn remove_node(&mut self, node: NodeId) -> bool {
        if self.adjacency.remove(&node).is_none() {
            return false;
        }
        for neighbors in self.adjacency.values_mut() {
            neighbors.remove(&node);
        }
        true
    }

    /// Adds an undirected link between `a` and `b`, creating the nodes if necessary.
    ///
    /// Returns `true` if the link was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self loops are not part of the model).
    pub fn add_link(&mut self, a: NodeId, b: NodeId) -> bool {
        assert_ne!(a, b, "self-loop links are not allowed");
        let newly = self.adjacency.entry(a).or_default().insert(b);
        self.adjacency.entry(b).or_default().insert(a);
        newly
    }

    /// Removes the undirected link between `a` and `b` (nodes remain).
    ///
    /// Returns `true` if the link existed.
    pub fn remove_link(&mut self, a: NodeId, b: NodeId) -> bool {
        let mut removed = false;
        if let Some(n) = self.adjacency.get_mut(&a) {
            removed = n.remove(&b);
        }
        if let Some(n) = self.adjacency.get_mut(&b) {
            n.remove(&a);
        }
        removed
    }

    /// Returns `true` if the node exists in the graph.
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.adjacency.contains_key(&node)
    }

    /// Returns `true` if the undirected link `(a, b)` exists.
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency
            .get(&a)
            .map(|n| n.contains(&b))
            .unwrap_or(false)
    }

    /// Number of nodes in the graph.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected links in the graph.
    pub fn link_count(&self) -> usize {
        self.adjacency.values().map(|n| n.len()).sum::<usize>() / 2
    }

    /// Iterates over all node identifiers in ascending order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency.keys().copied()
    }

    /// Iterates over the neighbors of `node` in ascending identifier order.
    ///
    /// Returns an empty iterator if the node does not exist. The ascending order is what
    /// makes "the first shortest path" (paper, Section 5.4) well defined.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency
            .get(&node)
            .into_iter()
            .flat_map(|n| n.iter().copied())
    }

    /// Returns the neighbor set of `node` as an owned, sorted `Vec`.
    pub fn neighbor_vec(&self, node: NodeId) -> Vec<NodeId> {
        self.neighbors(node).collect()
    }

    /// Returns the degree of `node` (0 if absent).
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency.get(&node).map(|n| n.len()).unwrap_or(0)
    }

    /// Returns the maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.values().map(|n| n.len()).max().unwrap_or(0)
    }

    /// Returns the minimum degree over all nodes (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        self.adjacency.values().map(|n| n.len()).min().unwrap_or(0)
    }

    /// Iterates over every undirected link exactly once, in canonical order.
    pub fn links(&self) -> impl Iterator<Item = Link> + '_ {
        self.adjacency.iter().flat_map(|(&a, neighbors)| {
            neighbors
                .iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| Link::new(a, b))
        })
    }

    /// Returns a copy of this graph with the given links removed (nodes kept).
    ///
    /// Used to model the operational graph `Go(k)` obtained from `Gc` by removing `k`
    /// failed links (paper, Section 2.2.2).
    pub fn without_links<'a, I>(&self, removed: I) -> Graph
    where
        I: IntoIterator<Item = &'a Link>,
    {
        let mut g = self.clone();
        for link in removed {
            g.remove_link(link.a, link.b);
        }
        g
    }

    /// Returns a copy of this graph with the given nodes removed.
    pub fn without_nodes<'a, I>(&self, removed: I) -> Graph
    where
        I: IntoIterator<Item = &'a NodeId>,
    {
        let mut g = self.clone();
        for &node in removed {
            g.remove_node(node);
        }
        g
    }

    /// Merges another graph into this one (union of nodes and links).
    pub fn merge(&mut self, other: &Graph) {
        for node in other.nodes() {
            self.add_node(node);
        }
        for link in other.links() {
            self.add_link(link.a, link.b);
        }
    }

    /// Takes a compact CSR snapshot of the current graph (see [`crate::flat`]).
    ///
    /// The snapshot preserves the ascending neighbor order, so traversals over it
    /// are bit-identical to traversals over the graph itself — just faster.
    pub fn snapshot(&self) -> crate::flat::FlatGraph {
        crate::flat::FlatGraph::from_graph(self)
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Removes all nodes and links.
    pub fn clear(&mut self) {
        self.adjacency.clear();
    }
}

impl FromIterator<(NodeId, NodeId)> for Graph {
    fn from_iter<T: IntoIterator<Item = (NodeId, NodeId)>>(iter: T) -> Self {
        Graph::from_links(iter)
    }
}

impl Extend<(NodeId, NodeId)> for Graph {
    fn extend<T: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: T) {
        for (a, b) in iter {
            self.add_link(a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn triangle() -> Graph {
        Graph::from_links([(n(0), n(1)), (n(1), n(2)), (n(2), n(0))])
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.link_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.neighbors(n(0)).count(), 0);
    }

    #[test]
    fn add_and_remove_links() {
        let mut g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.link_count(), 3);
        assert!(g.has_link(n(0), n(2)));
        assert!(g.remove_link(n(0), n(2)));
        assert!(!g.has_link(n(0), n(2)));
        assert!(!g.remove_link(n(0), n(2)));
        assert_eq!(g.link_count(), 2);
        // nodes remain after link removal
        assert!(g.contains_node(n(0)));
    }

    #[test]
    fn duplicate_link_is_idempotent() {
        let mut g = Graph::new();
        assert!(g.add_link(n(0), n(1)));
        assert!(!g.add_link(n(1), n(0)));
        assert_eq!(g.link_count(), 1);
    }

    #[test]
    fn remove_node_removes_incident_links() {
        let mut g = triangle();
        assert!(g.remove_node(n(1)));
        assert!(!g.remove_node(n(1)));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.link_count(), 1);
        assert!(g.has_link(n(0), n(2)));
        assert!(!g.has_link(n(0), n(1)));
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut g = Graph::new();
        g.add_link(n(5), n(3));
        g.add_link(n(5), n(9));
        g.add_link(n(5), n(1));
        let neighbors: Vec<_> = g.neighbors(n(5)).collect();
        assert_eq!(neighbors, vec![n(1), n(3), n(9)]);
        assert_eq!(g.degree(n(5)), 3);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
    }

    #[test]
    fn links_iterate_once_in_canonical_order() {
        let g = triangle();
        let links: Vec<_> = g.links().collect();
        assert_eq!(links.len(), 3);
        assert_eq!(links[0], Link::new(n(0), n(1)));
        assert_eq!(links[1], Link::new(n(0), n(2)));
        assert_eq!(links[2], Link::new(n(1), n(2)));
    }

    #[test]
    fn without_links_and_nodes() {
        let g = triangle();
        let cut = g.without_links(&[Link::new(n(0), n(1))]);
        assert_eq!(cut.link_count(), 2);
        assert_eq!(g.link_count(), 3, "original untouched");
        let pruned = g.without_nodes(&[n(2)]);
        assert_eq!(pruned.node_count(), 2);
        assert_eq!(pruned.link_count(), 1);
    }

    #[test]
    fn merge_unions_graphs() {
        let mut a = Graph::from_links([(n(0), n(1))]);
        let b = Graph::from_links([(n(1), n(2)), (n(3), n(4))]);
        a.merge(&b);
        assert_eq!(a.node_count(), 5);
        assert_eq!(a.link_count(), 3);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut g: Graph = [(n(0), n(1))].into_iter().collect();
        g.extend([(n(1), n(2))]);
        assert_eq!(g.link_count(), 2);
    }

    #[test]
    fn isolated_node_has_zero_degree() {
        let mut g = Graph::new();
        g.add_node(n(7));
        assert!(g.contains_node(n(7)));
        assert_eq!(g.degree(n(7)), 0);
        assert_eq!(g.link_count(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut g = triangle();
        g.clear();
        assert!(g.is_empty());
    }
}
