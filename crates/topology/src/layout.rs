//! Physical layout coordinates for structured datacenter topologies.
//!
//! The fault model wants *correlated* failure domains — "degrade every uplink of
//! one rack", "gray out a whole pod" — which requires mapping node ids back to
//! their position in the fabric. [`FatTreeLayout`] recovers the deterministic
//! index layout used by [`crate::builders::fat_tree`] from a built
//! [`NamedTopology`], so selectors can enumerate rack- and pod-scoped link sets
//! without re-deriving the builder's arithmetic.

use crate::builders::NamedTopology;
use crate::NodeId;

/// The coordinate system of a `fat_tree(k, n_controllers)` topology.
///
/// Index layout (switch indices are offset by `n_controllers`):
/// `(k/2)^2` core switches first, then `k` pods of `k/2` aggregation followed by
/// `k/2` edge switches. A *rack* is one edge switch together with its in-pod
/// uplinks; a *pod* is the full agg↔edge bipartite block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FatTreeLayout {
    /// The fat-tree arity `k` (even, >= 4).
    pub k: usize,
    /// Number of controller nodes occupying ids `0..n_controllers`.
    pub n_controllers: usize,
}

impl FatTreeLayout {
    /// Recovers the layout from a topology built by [`crate::builders::fat_tree`],
    /// identified by its `"FatTree-{k}"` name. Returns `None` for any other
    /// topology or when the switch count does not match the canonical layout.
    pub fn detect(topology: &NamedTopology) -> Option<Self> {
        let k: usize = topology.name.strip_prefix("FatTree-")?.parse().ok()?;
        if k < 4 || k % 2 != 0 {
            return None;
        }
        let layout = FatTreeLayout {
            k,
            n_controllers: topology.controllers.len(),
        };
        (topology.switches.len() == layout.switch_count()).then_some(layout)
    }

    /// Total switch count: `(k/2)^2` core plus `k` pods of `k` switches.
    pub fn switch_count(&self) -> usize {
        let half = self.k / 2;
        half * half + self.k * self.k
    }

    /// Number of pods (= `k`).
    pub fn pod_count(&self) -> usize {
        self.k
    }

    /// Number of edge switches (racks) per pod (= `k/2`).
    pub fn racks_per_pod(&self) -> usize {
        self.k / 2
    }

    fn sw(&self, i: usize) -> NodeId {
        NodeId::new((self.n_controllers + i) as u32)
    }

    fn pod_base(&self, pod: usize) -> usize {
        let half = self.k / 2;
        half * half + pod * self.k
    }

    /// The `j`-th aggregation switch of `pod`.
    pub fn agg(&self, pod: usize, j: usize) -> NodeId {
        self.sw(self.pod_base(pod) + j)
    }

    /// The `j`-th edge switch of `pod`.
    pub fn edge(&self, pod: usize, j: usize) -> NodeId {
        self.sw(self.pod_base(pod) + self.k / 2 + j)
    }

    /// The in-pod uplinks of one rack: `edge(pod, rack)` to every aggregation
    /// switch of the pod. Degrading these grays out everything behind the rack.
    pub fn rack_links(&self, pod: usize, rack: usize) -> Vec<(NodeId, NodeId)> {
        let e = self.edge(pod, rack);
        (0..self.k / 2).map(|a| (self.agg(pod, a), e)).collect()
    }

    /// Every intra-pod link (the full agg↔edge bipartite block). Core uplinks
    /// are excluded so the rest of the fabric keeps its redundancy.
    pub fn pod_links(&self, pod: usize) -> Vec<(NodeId, NodeId)> {
        let half = self.k / 2;
        let mut links = Vec::with_capacity(half * half);
        for a in 0..half {
            for e in 0..half {
                links.push((self.agg(pod, a), self.edge(pod, e)));
            }
        }
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn detect_recovers_fat_tree_coordinates() {
        let net = builders::fat_tree(4, 3);
        let layout = FatTreeLayout::detect(&net).expect("fat tree layout");
        assert_eq!(layout.k, 4);
        assert_eq!(layout.n_controllers, 3);
        assert_eq!(layout.switch_count(), net.switches.len());
        assert_eq!(layout.pod_count(), 4);
        assert_eq!(layout.racks_per_pod(), 2);
        // Every rack uplink and every intra-pod link must exist in the graph.
        for pod in 0..layout.pod_count() {
            for (a, b) in layout.pod_links(pod) {
                assert!(net.graph.has_link(a, b), "missing pod link {a}-{b}");
            }
            for rack in 0..layout.racks_per_pod() {
                let links = layout.rack_links(pod, rack);
                assert_eq!(links.len(), 2);
                for (a, b) in links {
                    assert!(net.graph.has_link(a, b), "missing rack link {a}-{b}");
                }
            }
        }
        // Rack links are a subset of the pod's links.
        let pod0: Vec<_> = layout.pod_links(0);
        for l in layout.rack_links(0, 1) {
            assert!(pod0.contains(&l));
        }
    }

    #[test]
    fn detect_rejects_other_topologies() {
        assert!(FatTreeLayout::detect(&builders::grid(3, 4, 2)).is_none());
        assert!(FatTreeLayout::detect(&builders::jellyfish(20, 3, 1, 2)).is_none());
    }
}
