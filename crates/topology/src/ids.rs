//! Node identifiers shared by every crate of the reproduction.
//!
//! The paper partitions the node set `P` into controllers `PC = {p_1, ..., p_nC}` and
//! switches `PS = {p_{nC+1}, ..., p_{nC+nS}}`. We mirror that with a single dense
//! `u32` identifier space where the node kind is determined by comparing against the
//! number of controllers, which every component knows as a configuration constant.

use std::fmt;

/// Identifier of a node (controller or switch) in the network.
///
/// `NodeId` is a thin newtype over `u32` so it can be freely copied, ordered,
/// hashed and embedded in compact packet-forwarding rules.
///
/// # Example
///
/// ```
/// use sdn_topology::NodeId;
/// let a = NodeId::new(3);
/// assert_eq!(a.index(), 3);
/// assert!(a < NodeId::new(4));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from its dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the dense index of the node.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the dense index as a `usize`, convenient for vector indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns the kind of this node given the number of controllers in the system.
    ///
    /// Controllers occupy identifiers `0..n_controllers`; everything else is a switch.
    pub fn kind(self, n_controllers: usize) -> NodeKind {
        if (self.0 as usize) < n_controllers {
            NodeKind::Controller
        } else {
            NodeKind::Switch
        }
    }

    /// Returns `true` when this node is a controller under the given split.
    pub fn is_controller(self, n_controllers: usize) -> bool {
        self.kind(n_controllers) == NodeKind::Controller
    }

    /// Returns `true` when this node is a switch under the given split.
    pub fn is_switch(self, n_controllers: usize) -> bool {
        self.kind(n_controllers) == NodeKind::Switch
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for u32 {
    fn from(value: NodeId) -> Self {
        value.0
    }
}

/// The role a node plays in the SDN: a remote controller or a packet-forwarding switch.
///
/// # Example
///
/// ```
/// use sdn_topology::{NodeId, NodeKind};
/// // With 2 controllers, node 1 is a controller and node 2 is a switch.
/// assert_eq!(NodeId::new(1).kind(2), NodeKind::Controller);
/// assert_eq!(NodeId::new(2).kind(2), NodeKind::Switch);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum NodeKind {
    /// A member of `PC`: runs the Renaissance control algorithm.
    Controller,
    /// A member of `PS`: forwards packets according to installed rules.
    Switch,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Controller => write!(f, "controller"),
            NodeKind::Switch => write!(f, "switch"),
        }
    }
}

/// An undirected link between two nodes, stored in canonical (smaller, larger) order.
///
/// # Example
///
/// ```
/// use sdn_topology::ids::Link;
/// use sdn_topology::NodeId;
/// let l1 = Link::new(NodeId::new(4), NodeId::new(2));
/// let l2 = Link::new(NodeId::new(2), NodeId::new(4));
/// assert_eq!(l1, l2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Link {
    /// The lower-indexed endpoint.
    pub a: NodeId,
    /// The higher-indexed endpoint.
    pub b: NodeId,
}

impl Link {
    /// Creates a canonical link between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`; self-loops are not part of the model.
    pub fn new(a: NodeId, b: NodeId) -> Self {
        assert_ne!(a, b, "self-loop links are not allowed");
        if a < b {
            Link { a, b }
        } else {
            Link { a: b, b: a }
        }
    }

    /// Returns the endpoint of the link that is not `from`, or `None` if `from` is not
    /// an endpoint.
    pub fn other(&self, from: NodeId) -> Option<NodeId> {
        if from == self.a {
            Some(self.b)
        } else if from == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Returns `true` if `node` is one of the two endpoints.
    pub fn touches(&self, node: NodeId) -> bool {
        self.a == node || self.b == node
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.as_usize(), 42);
        assert_eq!(u32::from(id), 42);
        assert_eq!(NodeId::from(42u32), id);
    }

    #[test]
    fn node_kind_split() {
        assert_eq!(NodeId::new(0).kind(1), NodeKind::Controller);
        assert_eq!(NodeId::new(0).kind(0), NodeKind::Switch);
        assert_eq!(NodeId::new(7).kind(3), NodeKind::Switch);
        assert!(NodeId::new(2).is_controller(3));
        assert!(NodeId::new(3).is_switch(3));
    }

    #[test]
    fn link_canonical_order() {
        let l = Link::new(NodeId::new(9), NodeId::new(1));
        assert_eq!(l.a, NodeId::new(1));
        assert_eq!(l.b, NodeId::new(9));
        assert_eq!(l.other(NodeId::new(1)), Some(NodeId::new(9)));
        assert_eq!(l.other(NodeId::new(9)), Some(NodeId::new(1)));
        assert_eq!(l.other(NodeId::new(5)), None);
        assert!(l.touches(NodeId::new(9)));
        assert!(!l.touches(NodeId::new(2)));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn link_rejects_self_loop() {
        let _ = Link::new(NodeId::new(1), NodeId::new(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::new(5).to_string(), "n5");
        assert_eq!(NodeKind::Controller.to_string(), "controller");
        assert_eq!(NodeKind::Switch.to_string(), "switch");
        assert_eq!(
            Link::new(NodeId::new(1), NodeId::new(2)).to_string(),
            "n1-n2"
        );
    }
}
