//! Edge connectivity `lambda(Gc)` and related checks.
//!
//! Renaissance's fault model assumes the connected topology `Gc` stays
//! `(kappa + 1)`-edge-connected throughout recovery (paper, Section 3.4.2). The bench
//! harness and the property tests use this module to (a) validate generated topologies
//! and (b) choose the largest `kappa` a topology can support.
//!
//! Edge connectivity is computed with unit-capacity max-flow (Edmonds–Karp) between a
//! fixed node and every other node, which is exact for undirected graphs.

use crate::graph::Graph;
use crate::ids::NodeId;
use crate::paths;
use std::collections::{BTreeMap, VecDeque};

/// Maximum number of edge-disjoint paths between `source` and `target`.
///
/// Returns 0 when either endpoint is missing or the nodes are disconnected, and
/// `usize::MAX` is never returned (the value is bounded by the minimum degree).
///
/// # Example
///
/// ```
/// use sdn_topology::{Graph, NodeId, connectivity};
/// let g = Graph::from_links([
///     (NodeId::new(0), NodeId::new(1)),
///     (NodeId::new(1), NodeId::new(2)),
///     (NodeId::new(2), NodeId::new(0)),
/// ]);
/// assert_eq!(connectivity::edge_disjoint_paths(&g, NodeId::new(0), NodeId::new(2)), 2);
/// ```
pub fn edge_disjoint_paths(graph: &Graph, source: NodeId, target: NodeId) -> usize {
    if source == target {
        return usize::from(graph.contains_node(source));
    }
    if !graph.contains_node(source) || !graph.contains_node(target) {
        return 0;
    }
    // Residual capacities over directed arcs; an undirected edge becomes two arcs of
    // capacity 1 each, which is the standard reduction for undirected edge connectivity.
    let mut capacity: BTreeMap<(NodeId, NodeId), i64> = BTreeMap::new();
    for link in graph.links() {
        capacity.insert((link.a, link.b), 1);
        capacity.insert((link.b, link.a), 1);
    }
    let mut flow = 0usize;
    loop {
        // BFS over arcs with residual capacity.
        let mut parent: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(source);
        parent.insert(source, source);
        while let Some(u) = queue.pop_front() {
            if u == target {
                break;
            }
            for v in graph.neighbors(u) {
                if !parent.contains_key(&v) && capacity.get(&(u, v)).copied().unwrap_or(0) > 0 {
                    parent.insert(v, u);
                    queue.push_back(v);
                }
            }
        }
        if !parent.contains_key(&target) {
            break;
        }
        // Augment along the path by one unit.
        let mut v = target;
        while v != source {
            let u = parent[&v];
            *capacity.entry((u, v)).or_insert(0) -= 1;
            *capacity.entry((v, u)).or_insert(0) += 1;
            v = u;
        }
        flow += 1;
    }
    flow
}

/// Computes the edge connectivity `lambda(G)`: the minimum number of link removals that
/// can disconnect the graph. Returns 0 for graphs with fewer than 2 nodes or graphs that
/// are already disconnected.
///
/// Uses the classic reduction: `lambda(G) = min over v != v0 of maxflow(v0, v)`.
pub fn edge_connectivity(graph: &Graph) -> usize {
    let nodes: Vec<NodeId> = graph.nodes().collect();
    if nodes.len() < 2 {
        return 0;
    }
    if !paths::is_connected(graph) {
        return 0;
    }
    let v0 = nodes[0];
    nodes[1..]
        .iter()
        .map(|&v| edge_disjoint_paths(graph, v0, v))
        .min()
        .unwrap_or(0)
}

/// Returns `true` when the graph can tolerate `kappa` link failures without
/// disconnecting, i.e. when it is `(kappa + 1)`-edge-connected.
pub fn supports_kappa(graph: &Graph, kappa: usize) -> bool {
    edge_connectivity(graph) > kappa
}

/// Largest `kappa` such that the graph is `(kappa + 1)`-edge-connected
/// (0 for trees and disconnected graphs).
pub fn max_supported_kappa(graph: &Graph) -> usize {
    edge_connectivity(graph).saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn cycle(k: u32) -> Graph {
        Graph::from_links((0..k).map(|i| (n(i), n((i + 1) % k))))
    }

    fn complete(k: u32) -> Graph {
        let mut g = Graph::new();
        for i in 0..k {
            for j in (i + 1)..k {
                g.add_link(n(i), n(j));
            }
        }
        g
    }

    #[test]
    fn path_graph_has_connectivity_one() {
        let g = Graph::from_links([(n(0), n(1)), (n(1), n(2))]);
        assert_eq!(edge_connectivity(&g), 1);
        assert!(supports_kappa(&g, 0));
        assert!(!supports_kappa(&g, 1));
        assert_eq!(max_supported_kappa(&g), 0);
    }

    #[test]
    fn cycle_has_connectivity_two() {
        let g = cycle(6);
        assert_eq!(edge_connectivity(&g), 2);
        assert!(supports_kappa(&g, 1));
        assert!(!supports_kappa(&g, 2));
    }

    #[test]
    fn complete_graph_connectivity() {
        let g = complete(5);
        assert_eq!(edge_connectivity(&g), 4);
        assert_eq!(max_supported_kappa(&g), 3);
    }

    #[test]
    fn disconnected_graph_has_zero_connectivity() {
        let mut g = cycle(3);
        g.add_node(n(10));
        assert_eq!(edge_connectivity(&g), 0);
        assert!(!supports_kappa(&g, 0));
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(edge_connectivity(&Graph::new()), 0);
        let mut g = Graph::new();
        g.add_node(n(0));
        assert_eq!(edge_connectivity(&g), 0);
        assert_eq!(edge_disjoint_paths(&g, n(0), n(0)), 1);
        assert_eq!(edge_disjoint_paths(&g, n(0), n(1)), 0);
    }

    #[test]
    fn disjoint_paths_on_two_parallel_routes() {
        // 0-1-3 and 0-2-3: two edge-disjoint paths between 0 and 3.
        let g = Graph::from_links([(n(0), n(1)), (n(1), n(3)), (n(0), n(2)), (n(2), n(3))]);
        assert_eq!(edge_disjoint_paths(&g, n(0), n(3)), 2);
        // Removing one middle edge drops it to 1.
        let g2 = g.without_links(&[crate::ids::Link::new(n(1), n(3))]);
        assert_eq!(edge_disjoint_paths(&g2, n(0), n(3)), 1);
    }

    #[test]
    fn connectivity_matches_min_degree_bound() {
        // lambda(G) <= min degree always.
        let g = complete(4);
        assert!(edge_connectivity(&g) <= g.min_degree());
        let h = cycle(5);
        assert!(edge_connectivity(&h) <= h.min_degree());
    }
}
