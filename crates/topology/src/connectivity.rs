//! Edge connectivity `lambda(Gc)` and related checks.
//!
//! Renaissance's fault model assumes the connected topology `Gc` stays
//! `(kappa + 1)`-edge-connected throughout recovery (paper, Section 3.4.2). The bench
//! harness and the property tests use this module to (a) validate generated topologies
//! and (b) choose the largest `kappa` a topology can support.
//!
//! Edge connectivity is computed with unit-capacity max-flow (Edmonds–Karp) between a
//! fixed node and every other node, which is exact for undirected graphs. The flow
//! network lives directly on the [`FlatGraph`] CSR arcs: every undirected link is two
//! directed arcs of capacity 1, the reverse-arc table is computed once per graph, and
//! the residual/parent arrays are reused across the `n - 1` max-flow runs instead of
//! being reallocated as `BTreeMap`s per BFS.

use crate::flat::{FlatGraph, NO_INDEX};
use crate::graph::Graph;
use crate::ids::NodeId;

/// The CSR flow network shared by every max-flow run over one graph: the snapshot,
/// the reverse-arc table, and the reusable residual-capacity / BFS workspaces.
struct FlowNetwork {
    flat: FlatGraph,
    /// For the arc at position `p` (an entry of the CSR neighbor array), the position
    /// of the opposite-direction arc.
    reverse_arc: Vec<u32>,
    /// Residual capacity per arc; refilled to 1 before each max-flow run.
    capacity: Vec<u8>,
    /// BFS workspace: the arc that discovered each node ([`NO_INDEX`] = undiscovered).
    parent_arc: Vec<u32>,
    queue: Vec<u32>,
}

impl FlowNetwork {
    fn new(graph: &Graph) -> Self {
        let flat = FlatGraph::from_graph(graph);
        let arc_count = flat.arc_targets().len();
        let mut reverse_arc = vec![NO_INDEX; arc_count];
        for u in 0..flat.node_count() as u32 {
            let start = flat.offsets()[u as usize] as usize;
            for (k, &v) in flat.neighbor_indices(u).iter().enumerate() {
                // The reverse arc is v's row entry pointing back at u; rows are
                // ascending, so a binary search finds it.
                let j = flat
                    .neighbor_indices(v)
                    .binary_search(&u)
                    // stancheck: allow(unwrap-expect) — infallible by construction: FlatGraph rows are built from an undirected Graph, so every arc u→v has its mirror v→u; a miss is a snapshot bug worth a loud stop
                    .expect("undirected link must appear in both rows");
                reverse_arc[start + k] = flat.offsets()[v as usize] + j as u32;
            }
        }
        let n = flat.node_count();
        FlowNetwork {
            flat,
            reverse_arc,
            capacity: vec![1; arc_count],
            parent_arc: vec![NO_INDEX; n],
            queue: Vec::with_capacity(n),
        }
    }

    /// Maximum flow between two dense indices, resetting the residual network first.
    fn max_flow(&mut self, source: u32, target: u32) -> usize {
        self.capacity.fill(1);
        let mut flow = 0usize;
        loop {
            // BFS over arcs with residual capacity, recording the discovering arc.
            self.parent_arc.fill(NO_INDEX);
            self.queue.clear();
            self.queue.push(source);
            let mut head = 0usize;
            let mut found = false;
            'search: while head < self.queue.len() {
                let u = self.queue[head];
                head += 1;
                let start = self.flat.offsets()[u as usize] as usize;
                for (k, &v) in self.flat.neighbor_indices(u).iter().enumerate() {
                    let p = start + k;
                    if v != source
                        && self.parent_arc[v as usize] == NO_INDEX
                        && self.capacity[p] > 0
                    {
                        self.parent_arc[v as usize] = p as u32;
                        if v == target {
                            found = true;
                            break 'search;
                        }
                        self.queue.push(v);
                    }
                }
            }
            if !found {
                break;
            }
            // Augment along the path by one unit.
            let mut v = target;
            while v != source {
                let p = self.parent_arc[v as usize] as usize;
                self.capacity[p] -= 1;
                self.capacity[self.reverse_arc[p] as usize] += 1;
                v = self.arc_tail(p);
            }
            flow += 1;
        }
        flow
    }

    /// The tail (origin) node of the arc at global position `p`: the node whose
    /// CSR row spans `p`, found by binary search over the row offsets.
    fn arc_tail(&self, p: usize) -> u32 {
        let offsets = self.flat.offsets();
        match offsets.binary_search(&(p as u32)) {
            // `p` is the first arc of one or more (possibly empty) rows: the tail is
            // the last row starting there.
            Ok(mut i) => {
                while i + 1 < offsets.len() && offsets[i + 1] as usize == p {
                    i += 1;
                }
                i as u32
            }
            Err(i) => (i - 1) as u32,
        }
    }
}

/// Maximum number of edge-disjoint paths between `source` and `target`.
///
/// Returns 0 when either endpoint is missing or the nodes are disconnected, and
/// `usize::MAX` is never returned (the value is bounded by the minimum degree).
///
/// # Example
///
/// ```
/// use sdn_topology::{Graph, NodeId, connectivity};
/// let g = Graph::from_links([
///     (NodeId::new(0), NodeId::new(1)),
///     (NodeId::new(1), NodeId::new(2)),
///     (NodeId::new(2), NodeId::new(0)),
/// ]);
/// assert_eq!(connectivity::edge_disjoint_paths(&g, NodeId::new(0), NodeId::new(2)), 2);
/// ```
pub fn edge_disjoint_paths(graph: &Graph, source: NodeId, target: NodeId) -> usize {
    if source == target {
        return usize::from(graph.contains_node(source));
    }
    // Cheap early exit before paying for the flow-network construction.
    if !graph.contains_node(source) || !graph.contains_node(target) {
        return 0;
    }
    let mut net = FlowNetwork::new(graph);
    let (Some(s), Some(t)) = (net.flat.index_of(source), net.flat.index_of(target)) else {
        return 0;
    };
    net.max_flow(s, t)
}

/// Computes the edge connectivity `lambda(G)`: the minimum number of link removals that
/// can disconnect the graph. Returns 0 for graphs with fewer than 2 nodes or graphs that
/// are already disconnected.
///
/// Uses the classic reduction: `lambda(G) = min over v != v0 of maxflow(v0, v)`, with
/// one shared flow network reused across every target.
pub fn edge_connectivity(graph: &Graph) -> usize {
    if graph.node_count() < 2 {
        return 0;
    }
    if !crate::paths::is_connected(graph) {
        return 0;
    }
    let mut net = FlowNetwork::new(graph);
    let mut lambda = usize::MAX;
    for v in 1..net.flat.node_count() as u32 {
        lambda = lambda.min(net.max_flow(0, v));
        if lambda == 0 {
            break;
        }
    }
    if lambda == usize::MAX {
        0
    } else {
        lambda
    }
}

/// Returns `true` when the graph can tolerate `kappa` link failures without
/// disconnecting, i.e. when it is `(kappa + 1)`-edge-connected.
pub fn supports_kappa(graph: &Graph, kappa: usize) -> bool {
    edge_connectivity(graph) > kappa
}

/// Largest `kappa` such that the graph is `(kappa + 1)`-edge-connected
/// (0 for trees and disconnected graphs).
pub fn max_supported_kappa(graph: &Graph) -> usize {
    edge_connectivity(graph).saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn cycle(k: u32) -> Graph {
        Graph::from_links((0..k).map(|i| (n(i), n((i + 1) % k))))
    }

    fn complete(k: u32) -> Graph {
        let mut g = Graph::new();
        for i in 0..k {
            for j in (i + 1)..k {
                g.add_link(n(i), n(j));
            }
        }
        g
    }

    #[test]
    fn path_graph_has_connectivity_one() {
        let g = Graph::from_links([(n(0), n(1)), (n(1), n(2))]);
        assert_eq!(edge_connectivity(&g), 1);
        assert!(supports_kappa(&g, 0));
        assert!(!supports_kappa(&g, 1));
        assert_eq!(max_supported_kappa(&g), 0);
    }

    #[test]
    fn cycle_has_connectivity_two() {
        let g = cycle(6);
        assert_eq!(edge_connectivity(&g), 2);
        assert!(supports_kappa(&g, 1));
        assert!(!supports_kappa(&g, 2));
    }

    #[test]
    fn complete_graph_connectivity() {
        let g = complete(5);
        assert_eq!(edge_connectivity(&g), 4);
        assert_eq!(max_supported_kappa(&g), 3);
    }

    #[test]
    fn disconnected_graph_has_zero_connectivity() {
        let mut g = cycle(3);
        g.add_node(n(10));
        assert_eq!(edge_connectivity(&g), 0);
        assert!(!supports_kappa(&g, 0));
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(edge_connectivity(&Graph::new()), 0);
        let mut g = Graph::new();
        g.add_node(n(0));
        assert_eq!(edge_connectivity(&g), 0);
        assert_eq!(edge_disjoint_paths(&g, n(0), n(0)), 1);
        assert_eq!(edge_disjoint_paths(&g, n(0), n(1)), 0);
    }

    #[test]
    fn disjoint_paths_on_two_parallel_routes() {
        // 0-1-3 and 0-2-3: two edge-disjoint paths between 0 and 3.
        let g = Graph::from_links([(n(0), n(1)), (n(1), n(3)), (n(0), n(2)), (n(2), n(3))]);
        assert_eq!(edge_disjoint_paths(&g, n(0), n(3)), 2);
        // Removing one middle edge drops it to 1.
        let g2 = g.without_links(&[crate::ids::Link::new(n(1), n(3))]);
        assert_eq!(edge_disjoint_paths(&g2, n(0), n(3)), 1);
    }

    #[test]
    fn connectivity_matches_min_degree_bound() {
        // lambda(G) <= min degree always.
        let g = complete(4);
        assert!(edge_connectivity(&g) <= g.min_degree());
        let h = cycle(5);
        assert!(edge_connectivity(&h) <= h.min_degree());
    }

    #[test]
    fn sparse_identifiers_flow_correctly() {
        // Same two parallel routes, but with holes in the identifier space.
        let g = Graph::from_links([
            (n(10), n(100)),
            (n(100), n(30)),
            (n(10), n(200)),
            (n(200), n(30)),
        ]);
        assert_eq!(edge_disjoint_paths(&g, n(10), n(30)), 2);
        assert_eq!(edge_connectivity(&g), 2);
    }
}
