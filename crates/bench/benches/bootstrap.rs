//! Criterion benchmark of the end-to-end in-band bootstrap (the Figure 5 quantity,
//! measured in wall-clock simulation cost rather than simulated seconds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use renaissance::{ControllerConfig, HarnessConfig, SdnNetwork};
use sdn_netsim::SimDuration;
use sdn_topology::builders;

fn bootstrap(name: &str, controllers: usize) -> f64 {
    let topology = builders::by_name(name, controllers);
    let mut sdn = SdnNetwork::new(
        topology.clone(),
        ControllerConfig::for_network(controllers, topology.switch_count()),
        HarnessConfig::default().with_task_delay(SimDuration::from_millis(200)),
    );
    sdn.run_until_legitimate(SimDuration::from_millis(200), SimDuration::from_secs(600))
        .expect("bootstrap")
        .as_secs_f64()
}

fn bench_bootstrap(c: &mut Criterion) {
    let mut group = c.benchmark_group("bootstrap");
    group.sample_size(10);
    for name in ["B4", "Clos"] {
        group.bench_with_input(BenchmarkId::new("paper_network", name), &name, |b, name| {
            b.iter(|| bootstrap(name, 3))
        });
    }
    group.bench_function("ring_10_switches_2_controllers", |b| {
        b.iter(|| {
            let topology = builders::ring(10, 2);
            let mut sdn = SdnNetwork::new(
                topology,
                ControllerConfig::for_network(2, 10),
                HarnessConfig::default().with_task_delay(SimDuration::from_millis(100)),
            );
            sdn.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(300))
                .expect("bootstrap")
                .as_secs_f64()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bootstrap);
criterion_main!(benches);
