//! Wall-clock benchmark of the end-to-end in-band bootstrap (the Figure 5 quantity,
//! measured in wall-clock simulation cost rather than simulated seconds).
//!
//! The workspace builds offline, so this is a plain `harness = false` timing binary
//! instead of a criterion benchmark: each case runs `RENAISSANCE_BENCH_ITERS`
//! iterations (default 3) and reports mean wall-clock time per iteration.
//!
//! Run with: `cargo bench -p renaissance-bench --bench bootstrap`

use renaissance::{ControllerConfig, HarnessConfig, SdnNetwork};
use sdn_netsim::SimDuration;
use sdn_topology::builders;

#[path = "common/timing.rs"]
mod timing;

fn bootstrap(name: &str, controllers: usize) -> f64 {
    let topology = builders::by_name(name, controllers);
    let mut sdn = SdnNetwork::new(
        topology.clone(),
        ControllerConfig::for_network(controllers, topology.switch_count()),
        HarnessConfig::default().with_task_delay(SimDuration::from_millis(200)),
    );
    sdn.run_until_legitimate(SimDuration::from_millis(200), SimDuration::from_secs(600))
        .expect("bootstrap")
        .as_secs_f64()
}

fn main() {
    println!("bootstrap wall-clock benchmark");
    for name in ["B4", "Clos"] {
        timing::bench(&format!("paper_network/{name}"), || bootstrap(name, 3));
    }
    timing::bench("ring_10_switches_2_controllers", || {
        let topology = builders::ring(10, 2);
        let mut sdn = SdnNetwork::new(
            topology,
            ControllerConfig::for_network(2, 10),
            HarnessConfig::default().with_task_delay(SimDuration::from_millis(100)),
        );
        sdn.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(300))
            .expect("bootstrap")
            .as_secs_f64()
    });
}
