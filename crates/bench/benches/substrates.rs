//! Wall-clock micro-benchmarks of the substrates Renaissance is built on: flow
//! planning, the switch rule table, and the self-stabilizing channel. These are the
//! per-iteration costs that dominate the controller's do-forever loop (paper,
//! Section 6.1 discusses how the number of messages and rule computations drives the
//! observed recovery times).
//!
//! Run with: `cargo bench -p renaissance-bench --bench substrates`

use sdn_channel::{Receiver, Sender};
use sdn_switch::{Rule, RuleTable};
use sdn_tags::Tag;
use sdn_topology::{builders, paths, FlowPlanner, NodeId};

#[path = "common/timing.rs"]
mod timing;

fn make_rule(i: u32) -> Rule {
    Rule {
        cid: NodeId::new(i % 3),
        sid: NodeId::new(100),
        src: None,
        dst: NodeId::new(i % 64),
        prt: (i % 4) as u8,
        fwd: NodeId::new(i % 8),
        tag: Tag::new(i % 3, 1),
    }
}

fn main() {
    println!("substrate wall-clock micro-benchmarks");

    for name in ["B4", "Telstra"] {
        let net = builders::by_name(name, 3);
        timing::bench(&format!("flow_planning/plan_all_pairs/{name}"), || {
            let planner = FlowPlanner::new(1).with_max_candidates(3);
            planner.plan(&net.graph)
        });
        timing::bench(&format!("flow_planning/diameter/{name}"), || {
            paths::diameter(&net.switch_graph)
        });
    }

    timing::bench("rule_table/insert_1000", || {
        let mut table = RuleTable::new(2_000);
        for i in 0..1_000u32 {
            table.insert(make_rule(i));
        }
        table.len()
    });

    let mut table = RuleTable::new(2_000);
    for i in 0..1_000u32 {
        table.insert(make_rule(i));
    }
    timing::bench("rule_table/match_lookup", || {
        table.matching(NodeId::new(5), NodeId::new(7)).len()
    });
    timing::bench("rule_table/replace_controller_rules", || {
        let mut t = table.clone();
        t.replace_controller_rules(NodeId::new(0), (0..200u32).map(make_rule), &[]);
        t.len()
    });

    timing::bench("channel_roundtrip_100_messages", || {
        let mut tx: Sender<u64> = Sender::new();
        let mut rx: Receiver<u64> = Receiver::new();
        for i in 0..100 {
            tx.push(i);
        }
        let mut delivered = 0;
        while delivered < 100 {
            if let Some(frame) = tx.frame_to_send() {
                let (msg, ack) = rx.on_frame(frame);
                if msg.is_some() {
                    delivered += 1;
                }
                tx.on_ack(ack);
            }
        }
        delivered
    });
}
