//! Criterion micro-benchmarks of the substrates Renaissance is built on: flow planning,
//! the switch rule table, and the self-stabilizing channel. These are the per-iteration
//! costs that dominate the controller's do-forever loop (paper, Section 6.1 discusses
//! how the number of messages and rule computations drives the observed recovery times).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdn_channel::{Receiver, Sender};
use sdn_switch::{Rule, RuleTable};
use sdn_tags::Tag;
use sdn_topology::{builders, paths, FlowPlanner, NodeId};

fn bench_flow_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_planning");
    for name in ["B4", "Telstra"] {
        let net = builders::by_name(name, 3);
        group.bench_with_input(BenchmarkId::new("plan_all_pairs", name), &net, |b, net| {
            let planner = FlowPlanner::new(1).with_max_candidates(3);
            b.iter(|| planner.plan(&net.graph));
        });
        group.bench_with_input(BenchmarkId::new("diameter", name), &net, |b, net| {
            b.iter(|| paths::diameter(&net.switch_graph));
        });
    }
    group.finish();
}

fn bench_rule_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("rule_table");
    let make_rule = |i: u32| Rule {
        cid: NodeId::new(i % 3),
        sid: NodeId::new(100),
        src: None,
        dst: NodeId::new(i % 64),
        prt: (i % 4) as u8,
        fwd: NodeId::new(i % 8),
        tag: Tag::new(i % 3, 1),
    };
    group.bench_function("insert_1000", |b| {
        b.iter(|| {
            let mut table = RuleTable::new(2_000);
            for i in 0..1_000u32 {
                table.insert(make_rule(i));
            }
            table.len()
        })
    });
    let mut table = RuleTable::new(2_000);
    for i in 0..1_000u32 {
        table.insert(make_rule(i));
    }
    group.bench_function("match_lookup", |b| {
        b.iter(|| table.matching(NodeId::new(5), NodeId::new(7)).len())
    });
    group.bench_function("replace_controller_rules", |b| {
        b.iter(|| {
            let mut t = table.clone();
            t.replace_controller_rules(NodeId::new(0), (0..200u32).map(make_rule), &[]);
            t.len()
        })
    });
    group.finish();
}

fn bench_channel(c: &mut Criterion) {
    c.bench_function("channel_roundtrip_100_messages", |b| {
        b.iter(|| {
            let mut tx: Sender<u64> = Sender::new();
            let mut rx: Receiver<u64> = Receiver::new();
            for i in 0..100 {
                tx.push(i);
            }
            let mut delivered = 0;
            while delivered < 100 {
                if let Some(frame) = tx.frame_to_send() {
                    let (msg, ack) = rx.on_frame(frame);
                    if msg.is_some() {
                        delivered += 1;
                    }
                    tx.on_ack(ack);
                }
            }
            delivered
        })
    });
}

criterion_group!(benches, bench_flow_planning, bench_rule_table, bench_channel);
criterion_main!(benches);
