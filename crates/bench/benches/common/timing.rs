//! Minimal shared timing helper for the `harness = false` benchmark binaries.
//!
//! Each benchmark case runs a warm-up iteration followed by `RENAISSANCE_BENCH_ITERS`
//! measured iterations (default 3) and prints the mean, min, and max wall-clock time.

use std::hint::black_box;
use std::time::Instant;

/// Number of measured iterations, from `RENAISSANCE_BENCH_ITERS` (default 3).
pub fn iterations() -> usize {
    std::env::var("RENAISSANCE_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or(3)
}

/// Times `f` over the configured number of iterations, prints a one-line summary,
/// and returns the mean seconds per iteration (for derived throughput figures).
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> f64 {
    let iters = iterations();
    black_box(f()); // warm-up
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        black_box(f());
        samples.push(start.elapsed().as_secs_f64());
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    println!(
        "{name:<44} mean {:>9.3} ms  min {:>9.3} ms  max {:>9.3} ms  ({iters} iters)",
        mean * 1e3,
        min * 1e3,
        max * 1e3
    );
    mean
}
