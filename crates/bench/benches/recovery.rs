//! Wall-clock benchmark of recovery from benign failures and from transient state
//! corruption (the Figure 10/13 and Theorem 2 quantities, at micro-benchmark scale).
//!
//! Run with: `cargo bench -p renaissance-bench --bench recovery`

use renaissance::{ControllerConfig, CorruptionPlan, FaultInjector, HarnessConfig, SdnNetwork};
use sdn_netsim::SimDuration;
use sdn_topology::builders;

#[path = "common/timing.rs"]
mod timing;

fn bootstrapped_b4() -> SdnNetwork {
    let topology = builders::b4(3);
    let mut sdn = SdnNetwork::new(
        topology,
        ControllerConfig::for_network(3, 12),
        HarnessConfig::default().with_task_delay(SimDuration::from_millis(200)),
    );
    sdn.run_until_legitimate(SimDuration::from_millis(200), SimDuration::from_secs(600))
        .expect("bootstrap");
    sdn
}

fn main() {
    println!("recovery wall-clock benchmark");

    timing::bench("b4_link_failure", || {
        let mut sdn = bootstrapped_b4();
        let mut injector = FaultInjector::new(7);
        let links = injector.random_safe_links(&sdn, 1);
        for (a, x) in links {
            sdn.remove_link(a, x);
        }
        sdn.run_until_legitimate(SimDuration::from_millis(200), SimDuration::from_secs(600))
            .expect("recovery")
            .as_secs_f64()
    });

    timing::bench("b4_controller_failure", || {
        let mut sdn = bootstrapped_b4();
        let victim = sdn.controller_ids()[2];
        sdn.fail_controller(victim);
        sdn.run_until_legitimate(SimDuration::from_millis(200), SimDuration::from_secs(600))
            .expect("recovery")
            .as_secs_f64()
    });

    timing::bench("b4_transient_corruption", || {
        let mut sdn = bootstrapped_b4();
        let mut injector = FaultInjector::new(11);
        injector.corrupt(&mut sdn, CorruptionPlan::heavy());
        sdn.run_until_legitimate(SimDuration::from_millis(200), SimDuration::from_secs(600))
            .expect("self-stabilization")
            .as_secs_f64()
    });
}
