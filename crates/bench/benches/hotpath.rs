//! Wall-clock benchmarks of the simulation hot path this repository's perf work
//! targets: legitimacy checking, operational-graph maintenance, and flat-indexed
//! (CSR) BFS against the legacy `BTreeMap` adjacency BFS.
//!
//! The workspace builds offline, so this is a plain `harness = false` timing binary
//! instead of a criterion benchmark: each case runs `RENAISSANCE_BENCH_ITERS`
//! iterations (default 3) and reports mean wall-clock time per iteration. Results —
//! including an end-to-end events-processed-per-second figure — also stream through
//! the typed `sdn-metrics` pipeline and are printed as digests at the end.
//!
//! Run with: `cargo bench -p renaissance-bench --bench hotpath`

use renaissance::{ControllerConfig, HarnessConfig, SdnNetwork};
use sdn_metrics::{MemorySink, MetricKey, Recorder};
use sdn_netsim::calendar::{CalendarQueue, EventRef};
use sdn_netsim::{SimDuration, SimTime};
use sdn_rng::Rng;
use sdn_topology::{builders, BfsScratch, Graph, NodeId};
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

#[path = "common/timing.rs"]
mod timing;

/// The three tentpole topologies of the hot-path issue: a ring at paper scale, the
/// PR 2 datacenter fat-tree, and a large random-regular jellyfish.
const NETWORKS: [&str; 3] = ["ring(64)", "fat_tree(8)", "jellyfish(256, 4, 7)"];

fn named(name: &str) -> sdn_topology::NamedTopology {
    if let Some(rest) = name.strip_prefix("ring(") {
        let n: usize = rest
            .trim_end_matches(')')
            .trim()
            .parse()
            .expect("ring size");
        builders::ring(n, 3)
    } else {
        builders::by_name(name, 3)
    }
}

/// The pre-FlatGraph BFS: `BTreeMap` distance/parent maps over the `BTreeMap`
/// adjacency — kept here as the comparison baseline for the CSR traversal.
fn btreemap_bfs(graph: &Graph, source: NodeId) -> usize {
    let mut distance: BTreeMap<NodeId, u32> = BTreeMap::new();
    let mut queue = VecDeque::new();
    distance.insert(source, 0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = distance[&u];
        for v in graph.neighbors(u) {
            if let std::collections::btree_map::Entry::Vacant(e) = distance.entry(v) {
                e.insert(du + 1);
                queue.push_back(v);
            }
        }
    }
    distance.len()
}

/// An agenda workload shaped like a campaign run: per-arc delivery bursts at
/// jittered link latencies plus periodic per-node timers, grouped into `rounds`
/// task-delay periods. Each round's events are pushed as simulated time reaches the
/// round — the interleaved push/pop pattern the simulator actually drives, where
/// scheduled times sit within a task delay of the clock.
fn agenda_schedule(graph: &Graph, rounds: u64) -> Vec<Vec<EventRef>> {
    let mut rng = Rng::seed_from_u64(0xA6E0DA);
    let mut schedule = Vec::new();
    let mut seq = 0u64;
    for round in 0..rounds {
        let base = round * 200_000;
        let mut burst = Vec::new();
        for link in graph.links() {
            burst.push(EventRef {
                at: SimTime::from_micros(base + 50 + rng.next_u64() % 500),
                seq,
                slot: link.a.index(),
            });
            seq += 1;
        }
        for (i, _) in graph.nodes().enumerate() {
            burst.push(EventRef {
                at: SimTime::from_micros(base + 200_000 + (i as u64 * 7) % 1_000),
                seq,
                slot: i as u32,
            });
            seq += 1;
        }
        schedule.push(burst);
    }
    schedule
}

/// Runs the round-interleaved workload through the pre-calendar reference agenda
/// (an ordered `BTreeMap` keyed by `(at, seq)`), recording every pop into `out`.
fn agenda_drain_btreemap(schedule: &[Vec<EventRef>], out: &mut Vec<(SimTime, u64)>) {
    out.clear();
    let mut agenda: BTreeMap<(SimTime, u64), u32> = BTreeMap::new();
    for (round, burst) in schedule.iter().enumerate() {
        let round_end = SimTime::from_micros((round as u64 + 1) * 200_000);
        for ev in burst {
            agenda.insert((ev.at, ev.seq), ev.slot);
        }
        while let Some((&key, _)) = agenda.iter().next() {
            if key.0 >= round_end {
                break;
            }
            agenda.remove(&key);
            out.push(key);
        }
    }
    while let Some((&key, _)) = agenda.iter().next() {
        agenda.remove(&key);
        out.push(key);
    }
}

/// Runs the same round-interleaved workload through the indexed calendar queue.
fn agenda_drain_calendar(schedule: &[Vec<EventRef>], out: &mut Vec<(SimTime, u64)>) {
    out.clear();
    let mut agenda = CalendarQueue::new();
    for (round, burst) in schedule.iter().enumerate() {
        let round_end = SimTime::from_micros((round as u64 + 1) * 200_000);
        for &ev in burst {
            agenda.push(ev);
        }
        while agenda.peek().is_some_and(|ev| ev.at < round_end) {
            if let Some(ev) = agenda.pop() {
                out.push((ev.at, ev.seq));
            }
        }
    }
    while let Some(ev) = agenda.pop() {
        out.push((ev.at, ev.seq));
    }
}

/// Builds a converged deployment, or a partially-run one when bootstrap would take
/// too long for a micro-benchmark — `legitimacy::check` costs the same either way.
fn deployment(name: &str, bootstrap: bool) -> SdnNetwork {
    let topology = named(name);
    let controllers = topology.controller_count();
    let switches = topology.switch_count();
    let mut sdn = SdnNetwork::new(
        topology,
        ControllerConfig::for_network(controllers, switches),
        HarnessConfig::default().with_task_delay(SimDuration::from_millis(200)),
    );
    if bootstrap {
        sdn.run_until_legitimate(SimDuration::from_millis(250), SimDuration::from_secs(1_200))
            .expect("bootstrap");
    } else {
        sdn.run_for(SimDuration::from_secs(5));
    }
    sdn
}

fn main() {
    println!("hot-path wall-clock benchmarks");
    let mut sink = MemorySink::default();

    // --- FlatGraph BFS vs the legacy BTreeMap BFS --------------------------------
    for name in NETWORKS {
        let net = named(name);
        let graph = &net.graph;
        let source = net.switches[0];
        let flat = graph.snapshot();
        let source_idx = flat.index_of(source).expect("source in snapshot");
        let mut scratch = BfsScratch::new();
        // Sanity: both traversals reach the same node set.
        assert_eq!(
            flat.bfs(source_idx, &mut scratch),
            btreemap_bfs(graph, source)
        );
        timing::bench(&format!("bfs/btreemap/{name}"), || {
            btreemap_bfs(graph, source)
        });
        timing::bench(&format!("bfs/flatgraph/{name}"), || {
            flat.bfs(source_idx, &mut scratch)
        });
        timing::bench(&format!("bfs/flatgraph+snapshot/{name}"), || {
            let flat = graph.snapshot();
            let mut scratch = BfsScratch::new();
            flat.bfs(source_idx, &mut scratch)
        });
    }

    // --- Event agenda: BTreeMap reference vs the indexed calendar queue ----------
    // The agenda workload of a campaign run: per-arc delivery bursts plus periodic
    // timers, pushed and popped in simulation order. Both agendas produce the exact
    // same pop sequence (asserted below and in netsim's calendar_order tests); the
    // cells measure agenda events/second, the figure the event-core rewrite targets.
    for name in NETWORKS {
        let net = named(name);
        let schedule = agenda_schedule(&net.graph, 40);
        let ops = schedule.iter().map(Vec::len).sum::<usize>() * 2; // push + pop each
        let mut reference_order = Vec::new();
        agenda_drain_btreemap(&schedule, &mut reference_order);
        let mut calendar_order = Vec::new();
        agenda_drain_calendar(&schedule, &mut calendar_order);
        assert_eq!(reference_order, calendar_order, "agenda order diverged");
        let mut scratch = Vec::new();
        let spent = timing::bench(&format!("agenda/btreemap/{name}"), || {
            agenda_drain_btreemap(&schedule, &mut scratch)
        });
        sink.record(
            &format!("agenda/btreemap/{name}"),
            &MetricKey::EVENTS_PER_SEC,
            ops as f64 / spent.max(1e-9),
        );
        let spent = timing::bench(&format!("agenda/calendar/{name}"), || {
            agenda_drain_calendar(&schedule, &mut scratch)
        });
        sink.record(
            &format!("agenda/calendar/{name}"),
            &MetricKey::EVENTS_PER_SEC,
            ops as f64 / spent.max(1e-9),
        );
    }

    // --- Operational graph: incremental maintenance vs from-scratch rebuild -----
    for name in NETWORKS {
        let mut sdn = deployment(name, false);
        let links: Vec<_> = sdn.topology().graph.links().take(8).collect();
        timing::bench(&format!("go/rebuild/{name}"), || {
            sdn.sim().rebuild_operational_graph()
        });
        timing::bench(&format!("go/incremental_fault_cycle/{name}"), || {
            // 8 fail/restore transitions, each maintained incrementally, plus the
            // O(1) read — the sequence `operational_graph()` used to rebuild for.
            for link in &links {
                sdn.fail_link(link.a, link.b);
            }
            for link in &links {
                sdn.restore_link(link.a, link.b);
            }
            sdn.sim().operational_graph().link_count()
        });
    }

    // --- Legitimacy check (the `run_until_legitimate` poll body) -----------------
    for name in NETWORKS {
        // Bootstrapping jellyfish(256) to full legitimacy is minutes of sim time;
        // the check itself costs the same on a partially-converged network.
        let bootstrap = name != "jellyfish(256, 4, 7)";
        let sdn = deployment(name, bootstrap);
        timing::bench(
            &format!(
                "legitimacy/check/{name}{}",
                if bootstrap { "" } else { " (unconverged)" }
            ),
            || sdn.legitimacy_report_fresh(),
        );
        timing::bench(&format!("legitimacy/cached_poll/{name}"), || {
            sdn.legitimacy_report()
        });
    }

    // --- End-to-end throughput through the metrics pipeline ----------------------
    for name in ["ring(64)", "fat_tree(8)"] {
        let started = Instant::now();
        let sdn = deployment(name, true);
        let wall_s = started.elapsed().as_secs_f64();
        let events = sdn.sim().events_processed();
        sink.record(name, &MetricKey::EVENTS_PER_SEC, events as f64 / wall_s);
        sink.record(name, &MetricKey::WALL_CLOCK, wall_s * 1e3);
    }
    println!("\nbootstrap throughput (typed pipeline digests):");
    for (scope, key, digest) in sink.iter() {
        println!(
            "{scope:<24} {:<22} mean {:>12.1} {}",
            key.path(),
            digest.mean(),
            key.unit().symbol()
        );
    }
}
