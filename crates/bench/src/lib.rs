//! Experiment harness regenerating every table and figure of the Renaissance ICDCS 2018
//! evaluation (Section 6).
//!
//! Each `fig*`/`table*` binary in `src/bin/` is a thin wrapper around a function of the
//! [`experiments`] module; all of them print a human-readable table to stdout and, when
//! the `RENAISSANCE_DUMP` environment variable is set, also emit the raw results as a
//! structured dump
//! so EXPERIMENTS.md can be regenerated mechanically.
//!
//! Scale knobs (environment variables, so `cargo run -p renaissance-bench --bin ...`
//! works without a CLI parser):
//!
//! * `RENAISSANCE_RUNS` — repetitions per configuration (default 3; the paper used 20),
//! * `RENAISSANCE_NETWORKS` — comma-separated subset of `B4,Clos,Telstra,AT&T,EBONE`
//!   (default: all five).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use experiments::{ExperimentScale, Measurement};
pub use report::{print_table, Row};
