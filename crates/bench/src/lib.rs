//! Experiment harness regenerating every table and figure of the Renaissance ICDCS 2018
//! evaluation (Section 6).
//!
//! Each `fig*`/`table*` binary in `src/bin/` is a thin wrapper around a function of the
//! [`experiments`] module; all of them print a human-readable table to stdout and, when
//! the `RENAISSANCE_DUMP` environment variable is set, also emit the raw results as a
//! structured dump
//! so EXPERIMENTS.md can be regenerated mechanically.
//!
//! Scale knobs follow one shared convention (see [`cli`]): every binary accepts
//! `--runs N`, `--seed N`, `--networks A,B`, `--task-delay-ms N`, and `--threads N`
//! (documented in `--help`), with environment fallbacks:
//!
//! * `RENAISSANCE_RUNS` — repetitions per configuration (default 3; the paper used 20),
//! * `RENAISSANCE_SEED` — base seed override (each experiment documents its default),
//! * `RENAISSANCE_NETWORKS` — comma-separated list: the paper networks
//!   `B4,Clos,Telstra,AT&T,EBONE` and/or generator names such as `fat_tree(8)`,
//!   `jellyfish(100, 4, 7)`, `grid(10, 12)`,
//! * `RENAISSANCE_THREADS` — scenario-runner worker threads (default: all cores).
//!
//! The `scale_campaign` binary sweeps topology family x size x fault scenario and
//! emits the machine-readable `BENCH_scale.json` artifact CI tracks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cli;
pub mod experiments;
pub mod output;
pub mod report;

pub use experiments::{ExperimentScale, Measurement};
pub use output::MetricPipeline;
pub use report::{print_table, Json, Row};
pub use sdn_metrics::{MetricKey, Recorder};
