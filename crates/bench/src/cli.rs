//! The shared command-line convention of every experiment binary.
//!
//! All `fig*`/`table*` binaries and the `scale_campaign` accept the same core flags,
//! so sweeping seeds or scaling repetitions never requires editing a binary:
//!
//! | flag | environment fallback | meaning |
//! |------|----------------------|---------|
//! | `--runs N` | `RENAISSANCE_RUNS` | repetitions per configuration |
//! | `--seed N` | `RENAISSANCE_SEED` | base seed (run `i` uses `seed + i`) |
//! | `--networks A,B` | `RENAISSANCE_NETWORKS` | topology list (paper names or generator names like `fat_tree(8)`) |
//! | `--task-delay-ms N` | — | controller do-forever-loop delay |
//! | `--threads N` | `RENAISSANCE_THREADS` | scenario-runner worker threads |
//! | `--out PATH` | — | machine-readable results file |
//! | `--format json\|csv` | — | format of the `--out` file |
//! | `--help` | — | print usage and exit |
//!
//! Flags take their value as the next argument (`--runs 5`) or inline (`--runs=5`).
//! A binary can register extra flags (the scale campaign adds `--smoke`,
//! `--baseline`, and `--gate`).

use std::collections::BTreeMap;

/// Description of one accepted flag, used for parsing and for `--help` output.
#[derive(Clone, Copy, Debug)]
pub struct Flag {
    /// The flag including the leading dashes, e.g. `"--runs"`.
    pub name: &'static str,
    /// Placeholder for the value in `--help`; `None` for boolean switches.
    pub value_name: Option<&'static str>,
    /// One-line help text.
    pub help: &'static str,
}

/// The flags every experiment binary accepts.
pub const COMMON_FLAGS: &[Flag] = &[
    Flag {
        name: "--runs",
        value_name: Some("N"),
        help: "repetitions per configuration (env RENAISSANCE_RUNS, default 3)",
    },
    Flag {
        name: "--seed",
        value_name: Some("N"),
        help: "base seed; run i uses seed+i (env RENAISSANCE_SEED, default per experiment)",
    },
    Flag {
        name: "--networks",
        value_name: Some("A,B"),
        help: "comma-separated topologies: B4,Clos,Telstra,AT&T,EBONE or fat_tree(8), jellyfish(100,4,7), grid(10,12) (env RENAISSANCE_NETWORKS)",
    },
    Flag {
        name: "--task-delay-ms",
        value_name: Some("N"),
        help: "controller do-forever-loop delay in milliseconds (default 500)",
    },
    Flag {
        name: "--threads",
        value_name: Some("N"),
        help: "scenario-runner worker threads (env RENAISSANCE_THREADS, default: all cores)",
    },
    Flag {
        name: "--out",
        value_name: Some("PATH"),
        help: "write machine-readable results to PATH (per-sample metric records; \
               the scale campaign writes its BENCH artifact here instead)",
    },
    Flag {
        name: "--format",
        value_name: Some("F"),
        help: "output format for --out: json (default) or csv",
    },
];

/// Parsed command-line arguments: `--flag value` pairs plus boolean switches.
#[derive(Clone, Debug, Default)]
pub struct CliArgs {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl CliArgs {
    /// The raw value of a flag, if it was passed.
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    /// A flag value parsed to any `FromStr` type.
    ///
    /// # Panics
    ///
    /// Exits the process with an error message when the value does not parse — a CLI
    /// typo should fail loudly, not fall back silently.
    pub fn parsed<T: std::str::FromStr>(&self, flag: &str) -> Option<T> {
        self.value(flag).map(|raw| match raw.parse() {
            Ok(v) => v,
            Err(_) => die(&format!("invalid value '{raw}' for {flag}")),
        })
    }

    /// Whether a boolean switch was passed.
    pub fn switch(&self, flag: &str) -> bool {
        self.switches.iter().any(|s| s == flag)
    }
}

/// Parses `std::env::args` against the common flags plus `extra` binary-specific ones.
///
/// Handles `--help` (prints `about`, the flag table, and exits 0) and rejects unknown
/// flags or missing values (exits 2), so every binary's `--help` documents the same
/// convention.
pub fn parse(about: &str, extra: &[Flag]) -> CliArgs {
    parse_from(about, extra, std::env::args().skip(1))
}

fn parse_from(about: &str, extra: &[Flag], args: impl Iterator<Item = String>) -> CliArgs {
    let flags: Vec<Flag> = COMMON_FLAGS.iter().chain(extra).copied().collect();
    let mut parsed = CliArgs::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if arg == "--help" || arg == "-h" {
            print_help(about, &flags);
            std::process::exit(0);
        }
        let (name, inline) = match arg.split_once('=') {
            Some((name, value)) => (name.to_string(), Some(value.to_string())),
            None => (arg, None),
        };
        let Some(flag) = flags.iter().find(|f| f.name == name) else {
            die(&format!("unknown argument '{name}' (try --help)"));
        };
        if flag.value_name.is_some() {
            let value = match inline {
                Some(v) => v,
                None => args
                    .next()
                    .unwrap_or_else(|| die(&format!("{name} requires a value"))),
            };
            parsed.values.insert(name, value);
        } else {
            if inline.is_some() {
                die(&format!("{name} does not take a value"));
            }
            parsed.switches.push(name);
        }
    }
    parsed
}

fn print_help(about: &str, flags: &[Flag]) {
    println!("{about}\n\nOptions:");
    for flag in flags {
        let left = match flag.value_name {
            Some(value) => format!("{} <{value}>", flag.name),
            None => flag.name.to_string(),
        };
        println!("  {left:<24} {}", flag.help);
    }
    println!("  {:<24} print this help", "--help");
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> impl Iterator<Item = String> {
        list.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    const SMOKE: Flag = Flag {
        name: "--smoke",
        value_name: None,
        help: "tiny sizes",
    };

    #[test]
    fn parses_values_switches_and_inline_form() {
        let parsed = parse_from(
            "t",
            &[SMOKE],
            args(&[
                "--runs",
                "5",
                "--seed=9",
                "--networks",
                "B4,grid(3,4)",
                "--smoke",
            ]),
        );
        assert_eq!(parsed.parsed::<usize>("--runs"), Some(5));
        assert_eq!(parsed.parsed::<u64>("--seed"), Some(9));
        assert_eq!(parsed.value("--networks"), Some("B4,grid(3,4)"));
        assert!(parsed.switch("--smoke"));
        assert!(!parsed.switch("--other"));
        assert_eq!(parsed.value("--threads"), None);
    }

    #[test]
    fn empty_args_parse_to_defaults() {
        let parsed = parse_from("t", &[], args(&[]));
        assert_eq!(parsed.parsed::<usize>("--runs"), None);
        assert!(!parsed.switch("--smoke"));
    }
}
