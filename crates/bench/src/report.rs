//! Reporting helpers shared by the experiment binaries: fixed-width stdout tables and
//! a dependency-free JSON emitter *and parser* for machine-readable benchmark
//! artifacts (`BENCH_scale.json`) and their baseline gating.

use std::fmt::{Debug, Write as _};

/// One row of an experiment output table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Row label (network name, configuration, ...).
    pub label: String,
    /// Column values, already formatted.
    pub values: Vec<String>,
}

impl Row {
    /// Creates a row from a label and pre-formatted values.
    pub fn new(label: impl Into<String>, values: Vec<String>) -> Self {
        Row {
            label: label.into(),
            values,
        }
    }
}

/// Prints a fixed-width table with a title and per-column headers, and (when the
/// `RENAISSANCE_DUMP` environment variable is set) a structured dump of `payload` so
/// EXPERIMENTS.md can be regenerated mechanically. `RENAISSANCE_JSON` is accepted as a
/// legacy alias for the dump switch.
pub fn print_table<T: Debug>(title: &str, headers: &[&str], rows: &[Row], payload: &T) {
    println!("\n== {title} ==");
    let label_width = rows
        .iter()
        .map(|r| r.label.len())
        .chain(std::iter::once(12))
        .max()
        .unwrap_or(12);
    print!("{:<label_width$}", "");
    for h in headers {
        print!("  {h:>14}");
    }
    println!();
    for row in rows {
        print!("{:<label_width$}", row.label);
        for v in &row.values {
            print!("  {v:>14}");
        }
        println!();
    }
    if std::env::var("RENAISSANCE_DUMP").is_ok() || std::env::var("RENAISSANCE_JSON").is_ok() {
        println!("\n--- RAW ---\n{payload:#?}");
    }
}

/// Formats a float with two decimals.
pub fn fmt2(value: f64) -> String {
    format!("{value:.2}")
}

/// A JSON value, built by hand so benchmark artifacts need no external dependency.
///
/// Serialization follows RFC 8259: strings are escaped, object member order is
/// preserved (insertion order — the emitter never reorders keys), and non-finite
/// numbers (which JSON cannot represent) become `null`.
///
/// # Example
///
/// ```
/// use renaissance_bench::report::Json;
/// let doc = Json::obj([
///     ("name", Json::str("scale")),
///     ("runs", Json::num(3.0)),
///     ("ok", Json::Bool(true)),
///     ("samples", Json::arr([Json::num(1.5), Json::num(2.0)])),
/// ]);
/// assert_eq!(
///     doc.to_string(),
///     r#"{"name":"scale","runs":3,"ok":true,"samples":[1.5,2]}"#
/// );
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered members.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// An array from any iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// An object from `(key, value)` pairs, preserving their order.
    pub fn obj<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Serializes the summary statistics of a [`Digest`](crate::Measurement) the way
    /// every benchmark artifact records measurements: count, mean, stddev, min/max,
    /// and the p50/p90/p99 quantiles.
    pub fn samples(samples: &crate::Measurement) -> Json {
        let quantiles = samples.quantiles(&[0.5, 0.9, 0.99]);
        Json::obj([
            ("n", Json::num(samples.len() as f64)),
            ("mean", Json::num(samples.mean())),
            ("stddev", Json::num(samples.stddev())),
            ("min", Json::num(samples.min())),
            ("p50", Json::num(quantiles[0])),
            ("p90", Json::num(quantiles[1])),
            ("p99", Json::num(quantiles[2])),
            ("max", Json::num(samples.max())),
        ])
    }

    /// The member of an object with the given key, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (RFC 8259) — the inverse of the emitter, used to read
    /// committed baseline artifacts back for regression gating.
    ///
    /// # Example
    ///
    /// ```
    /// use renaissance_bench::report::Json;
    /// let doc = Json::parse(r#"{"a":[1,true,"x\n"],"b":null}"#).unwrap();
    /// assert_eq!(doc.get("a").unwrap().as_array().unwrap()[0].as_f64(), Some(1.0));
    /// assert_eq!(doc.to_string(), "{\"a\":[1,true,\"x\\n\"],\"b\":null}");
    /// ```
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(value)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Writes a JSON document to `path` with a trailing newline.
pub fn write_json_file(path: &std::path::Path, doc: &Json) -> std::io::Result<()> {
    std::fs::write(path, format!("{doc}\n"))
}

/// Recursive-descent JSON parser over raw bytes (inputs are our own ASCII-heavy
/// artifacts; string content is still handled as UTF-8).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            // Copy the plain run up to the next quote or escape in one slice.
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?,
            );
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(_) => {
                    self.pos += 1; // consume the backslash
                    let escape = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our emitter; map
                            // lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("invalid escape '\\{}'", other as char)),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_formatting() {
        let row = Row::new("B4", vec![fmt2(1.234), fmt2(5.0)]);
        assert_eq!(row.label, "B4");
        assert_eq!(row.values, vec!["1.23".to_string(), "5.00".to_string()]);
        // Printing must not panic even with empty rows.
        print_table("test", &["a", "b"], &[row], &"payload");
        print_table::<()>("empty", &[], &[], &());
    }

    #[test]
    fn json_escaping_and_shapes() {
        let doc = Json::obj([
            ("plain", Json::str("a")),
            ("quoted", Json::str("say \"hi\"\n\tdone\\")),
            ("control", Json::str("\u{1}")),
            ("null", Json::Null),
            ("flag", Json::Bool(false)),
            ("int", Json::num(42.0)),
            ("float", Json::num(1.25)),
            ("nan", Json::Num(f64::NAN)),
            ("inf", Json::Num(f64::INFINITY)),
            ("empty_arr", Json::arr([])),
            ("empty_obj", Json::obj::<String>([])),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"plain":"a","quoted":"say \"hi\"\n\tdone\\","control":"\u0001","null":null,"flag":false,"int":42,"float":1.25,"nan":null,"inf":null,"empty_arr":[],"empty_obj":{}}"#
        );
    }

    #[test]
    fn json_samples_summary() {
        let mut m = crate::Measurement::default();
        m.record(1.0);
        m.record(3.0);
        let json = Json::samples(&m).to_string();
        assert_eq!(
            json,
            r#"{"n":2,"mean":2,"stddev":1.4142135623730951,"min":1,"p50":1,"p90":3,"p99":3,"max":3}"#
        );
    }

    #[test]
    fn json_parse_round_trips_the_emitter() {
        let doc = Json::obj([
            ("plain", Json::str("a")),
            ("quoted", Json::str("say \"hi\"\n\tdone\\")),
            ("control", Json::str("\u{1}")),
            ("unicode", Json::str("père")),
            ("null", Json::Null),
            ("flag", Json::Bool(false)),
            ("int", Json::num(42.0)),
            ("neg", Json::num(-1.25e-3)),
            ("arr", Json::arr([Json::num(1.0), Json::Bool(true)])),
            ("empty_obj", Json::obj::<String>([])),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // Whitespace tolerance.
        let spaced = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(spaced.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn json_parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a":1}x"#).is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
        assert!(Json::parse(r#""bad \q escape""#).is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("01a").is_err());
    }

    #[test]
    fn json_accessors() {
        let doc = Json::parse(r#"{"s":"x","n":2.5,"a":[]}"#).unwrap();
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(2.5));
        assert!(doc.get("a").unwrap().as_array().unwrap().is_empty());
        assert!(doc.get("missing").is_none());
        assert!(doc.get("s").unwrap().as_f64().is_none());
        assert!(Json::Null.get("x").is_none());
    }

    #[test]
    fn json_file_round_trip() {
        let path = std::env::temp_dir().join("renaissance_json_test.json");
        let doc = Json::obj([("k", Json::arr([Json::num(1.0), Json::str("two")]))]);
        write_json_file(&path, &doc).expect("write");
        let content = std::fs::read_to_string(&path).expect("read");
        assert_eq!(content, "{\"k\":[1,\"two\"]}\n");
        let _ = std::fs::remove_file(&path);
    }
}
