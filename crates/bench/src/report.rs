//! Tiny plain-text reporting helpers shared by the experiment binaries.

use std::fmt::Debug;

/// One row of an experiment output table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Row label (network name, configuration, ...).
    pub label: String,
    /// Column values, already formatted.
    pub values: Vec<String>,
}

impl Row {
    /// Creates a row from a label and pre-formatted values.
    pub fn new(label: impl Into<String>, values: Vec<String>) -> Self {
        Row {
            label: label.into(),
            values,
        }
    }
}

/// Prints a fixed-width table with a title and per-column headers, and (when the
/// `RENAISSANCE_DUMP` environment variable is set) a structured dump of `payload` so
/// EXPERIMENTS.md can be regenerated mechanically. `RENAISSANCE_JSON` is accepted as a
/// legacy alias for the dump switch.
pub fn print_table<T: Debug>(title: &str, headers: &[&str], rows: &[Row], payload: &T) {
    println!("\n== {title} ==");
    let label_width = rows
        .iter()
        .map(|r| r.label.len())
        .chain(std::iter::once(12))
        .max()
        .unwrap_or(12);
    print!("{:<label_width$}", "");
    for h in headers {
        print!("  {h:>14}");
    }
    println!();
    for row in rows {
        print!("{:<label_width$}", row.label);
        for v in &row.values {
            print!("  {v:>14}");
        }
        println!();
    }
    if std::env::var("RENAISSANCE_DUMP").is_ok() || std::env::var("RENAISSANCE_JSON").is_ok() {
        println!("\n--- RAW ---\n{payload:#?}");
    }
}

/// Formats a float with two decimals.
pub fn fmt2(value: f64) -> String {
    format!("{value:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_formatting() {
        let row = Row::new("B4", vec![fmt2(1.234), fmt2(5.0)]);
        assert_eq!(row.label, "B4");
        assert_eq!(row.values, vec!["1.23".to_string(), "5.00".to_string()]);
        // Printing must not panic even with empty rows.
        print_table("test", &["a", "b"], &[row], &"payload");
        print_table::<()>("empty", &[], &[], &());
    }
}
