//! Reporting helpers shared by the experiment binaries: fixed-width stdout tables and
//! a dependency-free JSON emitter for machine-readable benchmark artifacts
//! (`BENCH_scale.json`).

use std::fmt::{Debug, Write as _};

/// One row of an experiment output table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Row label (network name, configuration, ...).
    pub label: String,
    /// Column values, already formatted.
    pub values: Vec<String>,
}

impl Row {
    /// Creates a row from a label and pre-formatted values.
    pub fn new(label: impl Into<String>, values: Vec<String>) -> Self {
        Row {
            label: label.into(),
            values,
        }
    }
}

/// Prints a fixed-width table with a title and per-column headers, and (when the
/// `RENAISSANCE_DUMP` environment variable is set) a structured dump of `payload` so
/// EXPERIMENTS.md can be regenerated mechanically. `RENAISSANCE_JSON` is accepted as a
/// legacy alias for the dump switch.
pub fn print_table<T: Debug>(title: &str, headers: &[&str], rows: &[Row], payload: &T) {
    println!("\n== {title} ==");
    let label_width = rows
        .iter()
        .map(|r| r.label.len())
        .chain(std::iter::once(12))
        .max()
        .unwrap_or(12);
    print!("{:<label_width$}", "");
    for h in headers {
        print!("  {h:>14}");
    }
    println!();
    for row in rows {
        print!("{:<label_width$}", row.label);
        for v in &row.values {
            print!("  {v:>14}");
        }
        println!();
    }
    if std::env::var("RENAISSANCE_DUMP").is_ok() || std::env::var("RENAISSANCE_JSON").is_ok() {
        println!("\n--- RAW ---\n{payload:#?}");
    }
}

/// Formats a float with two decimals.
pub fn fmt2(value: f64) -> String {
    format!("{value:.2}")
}

/// A JSON value, built by hand so benchmark artifacts need no external dependency.
///
/// Serialization follows RFC 8259: strings are escaped, object member order is
/// preserved (insertion order — the emitter never reorders keys), and non-finite
/// numbers (which JSON cannot represent) become `null`.
///
/// # Example
///
/// ```
/// use renaissance_bench::report::Json;
/// let doc = Json::obj([
///     ("name", Json::str("scale")),
///     ("runs", Json::num(3.0)),
///     ("ok", Json::Bool(true)),
///     ("samples", Json::arr([Json::num(1.5), Json::num(2.0)])),
/// ]);
/// assert_eq!(
///     doc.to_string(),
///     r#"{"name":"scale","runs":3,"ok":true,"samples":[1.5,2]}"#
/// );
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered members.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// An array from any iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// An object from `(key, value)` pairs, preserving their order.
    pub fn obj<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Serializes summary statistics of a sample set the way every benchmark artifact
    /// records measurements: count plus mean/median/min/max.
    pub fn samples(samples: &crate::Measurement) -> Json {
        Json::obj([
            ("n", Json::num(samples.len() as f64)),
            ("mean", Json::num(samples.mean())),
            ("median", Json::num(samples.median())),
            ("min", Json::num(samples.min())),
            ("max", Json::num(samples.max())),
        ])
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Writes a JSON document to `path` with a trailing newline.
pub fn write_json_file(path: &std::path::Path, doc: &Json) -> std::io::Result<()> {
    std::fs::write(path, format!("{doc}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_formatting() {
        let row = Row::new("B4", vec![fmt2(1.234), fmt2(5.0)]);
        assert_eq!(row.label, "B4");
        assert_eq!(row.values, vec!["1.23".to_string(), "5.00".to_string()]);
        // Printing must not panic even with empty rows.
        print_table("test", &["a", "b"], &[row], &"payload");
        print_table::<()>("empty", &[], &[], &());
    }

    #[test]
    fn json_escaping_and_shapes() {
        let doc = Json::obj([
            ("plain", Json::str("a")),
            ("quoted", Json::str("say \"hi\"\n\tdone\\")),
            ("control", Json::str("\u{1}")),
            ("null", Json::Null),
            ("flag", Json::Bool(false)),
            ("int", Json::num(42.0)),
            ("float", Json::num(1.25)),
            ("nan", Json::Num(f64::NAN)),
            ("inf", Json::Num(f64::INFINITY)),
            ("empty_arr", Json::arr([])),
            ("empty_obj", Json::obj::<String>([])),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"plain":"a","quoted":"say \"hi\"\n\tdone\\","control":"\u0001","null":null,"flag":false,"int":42,"float":1.25,"nan":null,"inf":null,"empty_arr":[],"empty_obj":{}}"#
        );
    }

    #[test]
    fn json_samples_summary() {
        let mut m = crate::Measurement::default();
        m.push(1.0);
        m.push(3.0);
        let json = Json::samples(&m).to_string();
        assert_eq!(json, r#"{"n":2,"mean":2,"median":3,"min":1,"max":3}"#);
    }

    #[test]
    fn json_file_round_trip() {
        let path = std::env::temp_dir().join("renaissance_json_test.json");
        let doc = Json::obj([("k", Json::arr([Json::num(1.0), Json::str("two")]))]);
        write_json_file(&path, &doc).expect("write");
        let content = std::fs::read_to_string(&path).expect("read");
        assert_eq!(content, "{\"k\":[1,\"two\"]}\n");
        let _ = std::fs::remove_file(&path);
    }
}
