//! Figure 10: recovery time after the fail-stop of one controller.

use renaissance_bench::experiments::{recovery_after_failure, ExperimentScale, FailureKind};
use renaissance_bench::report::{fmt2, print_table, Row};
use renaissance_bench::MetricPipeline;

fn main() {
    let (scale, args) = ExperimentScale::from_cli(
        "Figure 10: recovery time after the fail-stop of one controller.",
    );
    let mut pipeline = MetricPipeline::from_args(&args);
    let results = recovery_after_failure(
        &scale,
        3,
        FailureKind::Controllers { count: 1 },
        &mut pipeline,
    );
    let rows: Vec<Row> = results
        .iter()
        .map(|r| {
            Row::new(
                r.network.clone(),
                vec![
                    fmt2(r.measurement.median()),
                    fmt2(r.measurement.mean()),
                    fmt2(r.measurement.max()),
                ],
            )
        })
        .collect();
    print_table(
        "Figure 10 — recovery time after one controller fail-stop (simulated seconds)",
        &["median", "mean", "max"],
        &rows,
        &results,
    );
    pipeline.finish();
}
