//! Figure 14: recovery time after 2, 4 or 6 simultaneous permanent link failures.

use renaissance_bench::experiments::{recovery_after_failure, ExperimentScale, FailureKind};
use renaissance_bench::report::{fmt2, print_table, Row};
use renaissance_bench::MetricPipeline;

fn main() {
    let (scale, args) = ExperimentScale::from_cli(
        "Figure 14: recovery time after 2, 4 or 6 simultaneous permanent link failures.",
    );
    let mut pipeline = MetricPipeline::from_args(&args);
    let mut all = Vec::new();
    let mut rows = Vec::new();
    for count in [2usize, 4, 6] {
        let results =
            recovery_after_failure(&scale, 3, FailureKind::Links { count }, &mut pipeline);
        for r in &results {
            rows.push(Row::new(
                format!("{} ({} links)", r.network, count),
                vec![fmt2(r.measurement.median()), fmt2(r.measurement.mean())],
            ));
        }
        all.extend(results);
    }
    print_table(
        "Figure 14 — recovery time after multiple permanent link failures (simulated seconds)",
        &["median", "mean"],
        &rows,
        &all,
    );
    pipeline.finish();
}
