//! Ablation: memory-adaptive main algorithm vs the Section 8.1 non-adaptive variant —
//! recovery time from arbitrary transient corruption and post-recovery memory use.

use renaissance_bench::experiments::{variant_ablation, ExperimentScale};
use renaissance_bench::report::{fmt2, print_table, Row};
use renaissance_bench::MetricPipeline;

fn main() {
    let (scale, args) = ExperimentScale::from_cli(
        "Ablation: memory-adaptive main algorithm vs the Section 8.1 non-adaptive variant",
    );
    let mut pipeline = MetricPipeline::from_args(&args);
    let results = variant_ablation(&scale, &mut pipeline);
    let rows: Vec<Row> = results
        .iter()
        .map(|r| {
            Row::new(
                format!(
                    "{} ({})",
                    r.network,
                    if r.memory_adaptive {
                        "adaptive"
                    } else {
                        "non-adaptive"
                    }
                ),
                vec![
                    fmt2(r.transient_recovery.median()),
                    fmt2(r.transient_recovery.mean()),
                    fmt2(r.total_rules_after.mean()),
                ],
            )
        })
        .collect();
    print_table(
        "Ablation — transient-fault recovery (s) and rules after stabilization",
        &["median s", "mean s", "rules after"],
        &rows,
        &results,
    );
    pipeline.finish();
}
