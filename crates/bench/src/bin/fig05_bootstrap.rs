//! Figure 5: bootstrap time for the paper's networks using 3 controllers.

use renaissance_bench::experiments::{bootstrap_times, ExperimentScale};
use renaissance_bench::report::{fmt2, print_table, Row};
use renaissance_bench::MetricPipeline;

fn main() {
    let (scale, args) = ExperimentScale::from_cli(
        "Figure 5: bootstrap time for the paper's networks using 3 controllers.",
    );
    let mut pipeline = MetricPipeline::from_args(&args);
    let results = bootstrap_times(&scale, 3, &mut pipeline);
    let rows: Vec<Row> = results
        .iter()
        .map(|r| {
            Row::new(
                r.network.clone(),
                vec![
                    fmt2(r.measurement.median()),
                    fmt2(r.measurement.mean()),
                    fmt2(r.measurement.stddev()),
                    fmt2(r.measurement.p90()),
                    fmt2(r.measurement.min()),
                    fmt2(r.measurement.max()),
                    r.measurement.len().to_string(),
                ],
            )
        })
        .collect();
    print_table(
        "Figure 5 — bootstrap time, 3 controllers (simulated seconds)",
        &["median", "mean", "stddev", "p90", "min", "max", "runs"],
        &rows,
        &results,
    );
    pipeline.finish();
}
