//! Figure 5: bootstrap time for the paper's networks using 3 controllers.

use renaissance_bench::experiments::{bootstrap_times, ExperimentScale};
use renaissance_bench::report::{fmt2, print_table, Row};

fn main() {
    let scale = ExperimentScale::from_cli(
        "Figure 5: bootstrap time for the paper's networks using 3 controllers.",
    );
    let results = bootstrap_times(&scale, 3);
    let rows: Vec<Row> = results
        .iter()
        .map(|r| {
            Row::new(
                r.network.clone(),
                vec![
                    fmt2(r.measurement.median()),
                    fmt2(r.measurement.mean()),
                    fmt2(r.measurement.min()),
                    fmt2(r.measurement.max()),
                    r.measurement.samples.len().to_string(),
                ],
            )
        })
        .collect();
    print_table(
        "Figure 5 — bootstrap time, 3 controllers (simulated seconds)",
        &["median", "mean", "min", "max", "runs"],
        &rows,
        &results,
    );
}
