//! Figure 6: bootstrap time for Telstra, AT&T and EBONE with 1 to 7 controllers.

use renaissance_bench::experiments::{bootstrap_vs_controllers, ExperimentScale};
use renaissance_bench::report::{fmt2, print_table, Row};
use renaissance_bench::MetricPipeline;

fn main() {
    let args = renaissance_bench::cli::parse(
        "Figure 6: bootstrap time for Telstra, AT&T and EBONE with 1 to 7 controllers.",
        &[],
    );
    let mut scale = ExperimentScale::from_env();
    // The figure's default network subset; an explicit env/CLI list still wins.
    if std::env::var("RENAISSANCE_NETWORKS").is_err() {
        scale.networks = vec!["Telstra".into(), "AT&T".into(), "EBONE".into()];
    }
    let scale = scale.with_args(&args);
    let mut pipeline = MetricPipeline::from_args(&args);
    let counts = [1, 3, 5, 7];
    let results = bootstrap_vs_controllers(&scale, &counts, &mut pipeline);
    let rows: Vec<Row> = results
        .iter()
        .map(|r| {
            Row::new(
                format!("{} ({} ctrl)", r.network, r.controllers),
                vec![
                    fmt2(r.measurement.median()),
                    fmt2(r.measurement.mean()),
                    fmt2(r.measurement.max()),
                ],
            )
        })
        .collect();
    print_table(
        "Figure 6 — bootstrap time vs number of controllers (simulated seconds)",
        &["median", "mean", "max"],
        &rows,
        &results,
    );
    pipeline.finish();
}
