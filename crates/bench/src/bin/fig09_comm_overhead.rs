//! Figure 9: communication cost per node for the maximum-loaded controller.

use renaissance_bench::experiments::{communication_overhead, ExperimentScale};
use renaissance_bench::report::{fmt2, print_table, Row};
use renaissance_bench::MetricPipeline;

fn main() {
    let (scale, args) = ExperimentScale::from_cli(
        "Figure 9: communication cost per node for the maximum-loaded controller.",
    );
    let mut pipeline = MetricPipeline::from_args(&args);
    let results = communication_overhead(&scale, 3, &mut pipeline);
    let rows: Vec<Row> = results
        .iter()
        .map(|r| {
            Row::new(
                r.network.clone(),
                vec![
                    fmt2(r.messages_per_node_per_iteration.median()),
                    fmt2(r.messages_per_node_per_iteration.mean()),
                ],
            )
        })
        .collect();
    print_table(
        "Figure 9 — messages per node per iteration (max-loaded controller)",
        &["median", "mean"],
        &rows,
        &results,
    );
    pipeline.finish();
}
