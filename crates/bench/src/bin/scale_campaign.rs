//! The scale campaign: sweeps topology family x size x fault scenario, records
//! wall-clock and simulated-time metrics through the typed metric pipeline, and
//! writes the machine-readable `BENCH_scale.json` that CI tracks as the repository's
//! performance trajectory — optionally gating it against a committed baseline.
//!
//! Three fault scenarios per topology, mirroring the paper's core measurements at
//! datacenter scale:
//!
//! * `bootstrap` — from the empty configuration to the first legitimate state,
//! * `controller_failure` — fail-stop of one random controller in a stable network,
//! * `midpath_link_failure` — removal of the link in the middle of the data-plane
//!   path between the two farthest switches.
//!
//! On selected networks two *under-load* scenarios ride along, driving the
//! heavy-traffic flow engine (up to a million concurrent flows) through the scenario
//! workload API:
//!
//! * `bootstrap_under_load` — bootstrap, then a full traffic matrix on the stable
//!   network: steady-state flow-completion-time (FCT) digests and achieved goodput,
//! * `link_failure_under_load` — the same population with a mid-path link failure at
//!   second 10 of the traffic window: what the flows experience while the control
//!   plane repairs.
//!
//! Under-load cells report `fct_p50_s` / `fct_p99_s` / `achieved_mbps` digests plus
//! completed-flow counts and (host-dependent, never gated) flows-per-second.
//!
//! Selected networks additionally run the *gray-failure* family (see
//! [`runs_gray_cells`]) — the dynamic fault schedules that stress recovery under
//! degradation rather than clean fail-stop:
//!
//! * `gray_link_recovery` — bursty one-way ~30% loss on correlated links (a whole
//!   rack on fat trees, random safe links elsewhere), then a mid-path link removal:
//!   time-to-relegitimacy *while degraded*,
//! * `partition_heal` — a two-halves controller partition that heals after 10 s;
//!   reports `partition_messages`, the control-plane messages sent mid-partition,
//! * `flapping_link` — one safe link flapping down/up for three 12-second cycles;
//!   reports `flap_survival`, the fraction of batches that re-legitimized in time,
//! * `rolling_upgrade` — controllers restarted one at a time (10 s apart, 5 s down
//!   each), the maintenance-window schedule.
//!
//! `--smoke` shrinks the sweep to three tiny topologies with one seed each so the CI
//! job finishes in seconds; the full campaign reaches several hundred switches.
//!
//! `--baseline BENCH.json --gate PCT` compares the fresh artifact against a committed
//! one: if any gated metric (`bootstrap_s`, `recovery_s`, `messages_sent` — all
//! simulated quantities, deterministic for equal seeds) regressed by more than PCT
//! percent in any matched cell, the campaign writes a `*.delta.json` report and exits
//! nonzero.

use renaissance::scenario::{
    ControllerSelector, DegradeSpec, Endpoints, FaultEvent, LinkSelector, PartitionSpec, Probe,
    RunReport, ScenarioReport,
};
use renaissance_bench::baseline::gate_campaign;
use renaissance_bench::cli::{self, Flag};
use renaissance_bench::output::OutputFormat;
use renaissance_bench::report::{fmt2, print_table, write_json_file, Json, Row};
use renaissance_bench::{ExperimentScale, MetricKey, MetricPipeline, Recorder};
use sdn_metrics::{csv_field, Digest};
use sdn_netsim::SimDuration;
use sdn_topology::{builders, connectivity};
use sdn_traffic::engine::{FlowEngineWorkload, FlowSetConfig};
use std::time::Instant;

const ABOUT: &str = "Scale campaign: topology family x size x fault scenario sweep, \
emitting BENCH_scale.json (--out PATH, --format json|csv) and optionally gating it \
against a baseline (--baseline BENCH.json --gate PCT)";

const EXTRA_FLAGS: &[Flag] = &[
    Flag {
        name: "--smoke",
        value_name: None,
        help: "tiny sizes, 1 seed: the CI smoke configuration",
    },
    Flag {
        name: "--large",
        value_name: None,
        help: "scale-large tier: fat_tree(16) and jellyfish(1024, 8, 1), 1 seed",
    },
    Flag {
        name: "--stable-output",
        value_name: None,
        help: "zero host-dependent fields (wall clock, events/sec, threads) so \
               artifacts from equal seeds byte-compare across runs",
    },
    Flag {
        name: "--baseline",
        value_name: Some("PATH"),
        help: "committed BENCH_scale.json to gate against; exits nonzero on regression",
    },
    Flag {
        name: "--gate",
        value_name: Some("PCT"),
        help: "regression threshold in percent for --baseline (default 25)",
    },
];

/// The three fault scenarios every network runs.
const SCENARIOS: [&str; 3] = ["bootstrap", "controller_failure", "midpath_link_failure"];

/// The heavy-traffic scenarios; selected networks only (see [`under_load_pairs`]).
const UNDER_LOAD_SCENARIOS: [&str; 2] = ["bootstrap_under_load", "link_failure_under_load"];

/// The gray-failure scenarios; selected networks only (see [`runs_gray_cells`]).
const GRAY_SCENARIOS: [&str; 4] = [
    "gray_link_recovery",
    "partition_heal",
    "flapping_link",
    "rolling_upgrade",
];

/// Whether a network runs the gray-failure family in the given tier. One small and
/// one mid-size fabric per gated tier keeps the smoke job fast while every schedule
/// shape still runs on a fat tree (exercising the rack-correlated selector) and on a
/// non-fat-tree family (exercising the random-safe fallback).
fn runs_gray_cells(network: &str, tier: &str) -> bool {
    matches!(
        (tier, network),
        ("smoke", "fat_tree(4)" | "grid(4, 5)")
            | ("large", "fat_tree(16)")
            | ("full", "fat_tree(8)" | "grid(5, 5)")
    )
}

/// The flow-population size (sampled src/dst pairs) of a network's under-load cells
/// in the given tier, or `None` when the network skips them. The large tier carries
/// the acceptance-scale population: one million concurrent flows per cell.
fn under_load_pairs(network: &str, tier: &str) -> Option<u32> {
    match (tier, network) {
        ("smoke", "fat_tree(8)") => Some(100_000),
        ("large", _) => Some(1_000_000),
        ("full", "fat_tree(8)" | "fat_tree(12)") => Some(100_000),
        _ => None,
    }
}

/// Length of the under-load traffic window in service ticks (simulated seconds).
fn under_load_ticks(tier: &str) -> u32 {
    if tier == "large" {
        60
    } else {
        30
    }
}

/// The full sweep: every family from a paper-scale anchor up to several hundred
/// switches. Jellyfish names pin the wiring seed so the topology (not just the run)
/// is reproducible.
const FULL_NETWORKS: [&str; 9] = [
    "fat_tree(4)",
    "fat_tree(8)",
    "fat_tree(12)",
    "jellyfish(50, 4, 1)",
    "jellyfish(150, 5, 1)",
    "jellyfish(300, 5, 1)",
    "grid(5, 5)",
    "grid(10, 10)",
    "grid(14, 20)",
];

/// The smoke sweep: one small instance per family, plus the fat_tree(8) cells the
/// event-core throughput work is tracked on.
const SMOKE_NETWORKS: [&str; 4] = [
    "fat_tree(4)",
    "fat_tree(8)",
    "jellyfish(20, 3, 1)",
    "grid(4, 5)",
];

/// The scale-large tier: the 10k-switch-class topologies that are too slow for the
/// PR gate and run on the nightly schedule instead.
const LARGE_NETWORKS: [&str; 2] = ["fat_tree(16)", "jellyfish(1024, 8, 1)"];

fn main() {
    let args = cli::parse(ABOUT, EXTRA_FLAGS);
    let smoke = args.switch("--smoke");
    let large = args.switch("--large");
    let tier = if smoke {
        "smoke"
    } else if large {
        "large"
    } else {
        "full"
    };
    let stable = args.switch("--stable-output");
    let out = args
        .value("--out")
        .unwrap_or(if smoke {
            // Keep casual smoke runs from overwriting the committed full baseline.
            "BENCH_scale_smoke.json"
        } else if large {
            "BENCH_scale_large.json"
        } else {
            "BENCH_scale.json"
        })
        .to_string();
    // The shared validator keeps --format semantics identical across every binary.
    let csv = OutputFormat::from_args(&args) == OutputFormat::Csv;

    let mut scale = ExperimentScale::from_env();
    // The campaign's own sweep is only the default: an explicit RENAISSANCE_NETWORKS
    // or --networks selection wins, like on every other binary.
    if std::env::var("RENAISSANCE_NETWORKS").is_err() {
        scale.networks = if smoke {
            &SMOKE_NETWORKS[..]
        } else if large {
            &LARGE_NETWORKS[..]
        } else {
            &FULL_NETWORKS[..]
        }
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    if smoke || large {
        scale.runs = 1;
        scale.task_delay = SimDuration::from_millis(200);
    }
    let scale = scale.with_args(&args);
    let seed = scale.seed_or(1_000);

    // The campaign's artifact is rendered from the typed pipeline: every per-run
    // sample is recorded under "spec/scenario" scopes and digested in memory.
    let mut pipeline = MetricPipeline::in_memory();
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for network in &scale.networks {
        // Topology metadata once per network: size and the largest kappa it supports.
        let topology = builders::by_name(network, 3);
        let switches = topology.switch_count();
        let kappa_max = connectivity::max_supported_kappa(&topology.switch_graph);
        let diameter = topology.expected_diameter;
        let load_pairs = under_load_pairs(network, tier);
        let mut scenarios: Vec<&str> = SCENARIOS.to_vec();
        if load_pairs.is_some() {
            scenarios.extend(UNDER_LOAD_SCENARIOS);
        }
        if runs_gray_cells(network, tier) {
            scenarios.extend(GRAY_SCENARIOS);
        }
        for scenario in scenarios {
            let scope = format!("{network}/{scenario}");
            let started = Instant::now();
            let report = run_scenario(
                &scale,
                network,
                scenario,
                seed,
                load_pairs,
                under_load_ticks(tier),
            );
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            pipeline.record(&scope, &MetricKey::WALL_CLOCK, wall_ms);
            // The hot-path throughput observable: simulator events processed per
            // wall-clock second across the cell's runs. Host-dependent, so it is
            // reported (and delta-tracked) but never gated.
            let events: u64 = report.runs.iter().map(|r| r.events_processed).sum();
            let events_per_sec = events as f64 / (wall_ms / 1e3).max(1e-9);
            pipeline.record(&scope, &MetricKey::EVENTS_PER_SEC, events_per_sec);
            let mut completed_flows = 0u64;
            let mut peak_concurrent = 0u64;
            for run in &report.runs {
                if let Some(s) = run.bootstrap_s {
                    pipeline.record(&scope, &MetricKey::BOOTSTRAP_TIME, s);
                }
                for recovery in run.recoveries.iter().filter_map(|r| r.recovered_in_s) {
                    pipeline.record(&scope, &MetricKey::RECOVERY_TIME, recovery);
                }
                pipeline.record(&scope, &MetricKey::SIM_END, run.sim_end_s);
                pipeline.record(&scope, &MetricKey::MESSAGES_SENT, run.messages_sent as f64);
                // Gray-failure observables: flap survival is the fraction of fault
                // batches that re-legitimized before the next batch fired, partition
                // messages the control-plane traffic between the cut and the heal.
                if scenario == "flapping_link" && !run.recoveries.is_empty() {
                    let survived = run
                        .recoveries
                        .iter()
                        .filter(|r| r.recovered_in_s.is_some())
                        .count();
                    pipeline.record(
                        &scope,
                        &MetricKey::FLAP_SURVIVAL,
                        survived as f64 / run.recoveries.len() as f64,
                    );
                }
                if scenario == "partition_heal" {
                    if let Some(messages) = messages_during_partition(run) {
                        pipeline.record(&scope, &MetricKey::PARTITION_MESSAGES, messages);
                    }
                }
                // The under-load cells carry a flow-engine workload whose report has
                // the FCT digest and achieved-goodput series.
                if let Some(wl) = run.workload("flow_engine") {
                    if let Some(fct) = wl.digest("fct_s") {
                        if !fct.is_empty() {
                            pipeline.record(&scope, &MetricKey::FCT_P50, fct.p50());
                            pipeline.record(&scope, &MetricKey::FCT_P99, fct.p99());
                        }
                        completed_flows += fct.count();
                    }
                    if let Some(series) = wl.series("achieved_mbps") {
                        if !series.is_empty() {
                            let mean = series.iter().sum::<f64>() / series.len() as f64;
                            pipeline.record(&scope, &MetricKey::ACHIEVED_THROUGHPUT, mean);
                        }
                    }
                    if let Some(peak) = wl.note("peak_concurrent").and_then(|p| p.parse().ok()) {
                        peak_concurrent = peak_concurrent.max(peak);
                    }
                }
            }
            // Completed flows per wall-clock second: the engine's headline rate.
            // Host-dependent like events_per_sec, so reported but never gated.
            let flows_per_sec = completed_flows as f64 / (wall_ms / 1e3).max(1e-9);
            let under_load = scenario.ends_with("_under_load");
            if under_load {
                pipeline.record(&scope, &MetricKey::FLOWS_PER_SEC, flows_per_sec);
            }
            let converged = report.all_converged();
            let digest = |key: &MetricKey| -> Digest {
                pipeline
                    .memory()
                    .digest(&scope, key)
                    .cloned()
                    .unwrap_or_default()
            };
            let bootstrap = digest(&MetricKey::BOOTSTRAP_TIME);
            let recovery = digest(&MetricKey::RECOVERY_TIME);
            rows.push(Row::new(
                format!("{} / {scenario}", topology.name),
                vec![
                    switches.to_string(),
                    fmt2(bootstrap.median()),
                    fmt2(recovery.median()),
                    fmt2(wall_ms),
                    if converged { "yes" } else { "NO" }.to_string(),
                ],
            ));
            let mut cell = vec![
                ("family", Json::str(family_of(network))),
                ("network", Json::str(topology.name.clone())),
                ("spec", Json::str(network.clone())),
                ("switches", Json::num(switches as f64)),
                ("diameter", Json::num(diameter as f64)),
                ("kappa_max", Json::num(kappa_max as f64)),
                ("scenario", Json::str(scenario)),
                ("runs", Json::num(report.runs.len() as f64)),
                ("seed", Json::str(seed.to_string())),
                ("converged", Json::Bool(converged)),
                // Host-dependent fields; zeroed under --stable-output so equal-seed
                // artifacts can be compared byte for byte (the determinism CI job).
                (
                    "wall_clock_ms",
                    Json::num(if stable { 0.0 } else { wall_ms }),
                ),
                (
                    "events_per_sec",
                    Json::num(if stable { 0.0 } else { events_per_sec }),
                ),
                ("bootstrap_s", Json::samples(&bootstrap)),
                ("recovery_s", Json::samples(&recovery)),
                ("sim_end_s", Json::samples(&digest(&MetricKey::SIM_END))),
                (
                    "messages_sent",
                    Json::samples(&digest(&MetricKey::MESSAGES_SENT)),
                ),
            ];
            if scenario == "flapping_link" {
                cell.push((
                    "flap_survival",
                    Json::samples(&digest(&MetricKey::FLAP_SURVIVAL)),
                ));
            }
            if scenario == "partition_heal" {
                cell.push((
                    "partition_messages",
                    Json::samples(&digest(&MetricKey::PARTITION_MESSAGES)),
                ));
            }
            if under_load {
                cell.extend([
                    ("flows", Json::num(load_pairs.unwrap_or(0) as f64)),
                    ("completed_flows", Json::num(completed_flows as f64)),
                    ("peak_concurrent_flows", Json::num(peak_concurrent as f64)),
                    ("fct_p50_s", Json::samples(&digest(&MetricKey::FCT_P50))),
                    ("fct_p99_s", Json::samples(&digest(&MetricKey::FCT_P99))),
                    (
                        "achieved_mbps",
                        Json::samples(&digest(&MetricKey::ACHIEVED_THROUGHPUT)),
                    ),
                    (
                        "flows_per_sec",
                        Json::num(if stable { 0.0 } else { flows_per_sec }),
                    ),
                ]);
            }
            results.push(Json::obj(cell));
        }
    }

    let doc = Json::obj([
        ("benchmark", Json::str("scale_campaign")),
        ("version", Json::num(2.0)),
        ("smoke", Json::Bool(smoke)),
        ("tier", Json::str(tier)),
        (
            "config",
            Json::obj([
                ("runs", Json::num(scale.runs as f64)),
                ("seed", Json::str(seed.to_string())),
                (
                    "task_delay_ms",
                    Json::num(scale.task_delay.as_secs_f64() * 1e3),
                ),
                (
                    "threads",
                    if stable {
                        Json::Null
                    } else {
                        scale
                            .threads
                            .map(|t| Json::num(t as f64))
                            .unwrap_or(Json::Null)
                    },
                ),
            ]),
        ),
        ("results", Json::Arr(results)),
    ]);
    if csv {
        write_campaign_csv(&out, &pipeline);
    } else {
        write_json_file(std::path::Path::new(&out), &doc)
            .unwrap_or_else(|e| panic!("failed to write {out}: {e}"));
    }

    print_table(
        &format!(
            "Scale campaign ({tier} mode) — medians over {} run(s), artifact: {out}",
            scale.runs
        ),
        &["switches", "boot med s", "recov med s", "wall ms", "conv"],
        &rows,
        &doc.to_string(),
    );

    if let Some(baseline_path) = args.value("--baseline") {
        let gate_pct = args.parsed::<f64>("--gate").unwrap_or(25.0);
        std::process::exit(gate_against(&doc, baseline_path, gate_pct, &out));
    }
}

/// Writes the campaign summary as CSV: one row per (cell, metric) with the digest
/// statistics.
fn write_campaign_csv(out: &str, pipeline: &MetricPipeline) {
    let mut text = String::from("scope,metric,unit,n,mean,stddev,min,p50,p90,p99,max\n");
    for (scope, key, digest) in pipeline.memory().iter() {
        let quantiles = digest.quantiles(&[0.5, 0.9, 0.99]);
        text.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            csv_field(scope),
            csv_field(&key.path()),
            csv_field(key.unit().symbol()),
            digest.len(),
            digest.mean(),
            digest.stddev(),
            digest.min(),
            quantiles[0],
            quantiles[1],
            quantiles[2],
            digest.max(),
        ));
    }
    std::fs::write(out, text).unwrap_or_else(|e| panic!("failed to write {out}: {e}"));
}

/// Gates the fresh artifact against a committed baseline; returns the process exit
/// code (0 = no regression) and writes the delta report next to the artifact.
fn gate_against(current: &Json, baseline_path: &str, gate_pct: f64, out: &str) -> i32 {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("failed to read baseline {baseline_path}: {e}"));
    let baseline = Json::parse(&text)
        .unwrap_or_else(|e| panic!("failed to parse baseline {baseline_path}: {e}"));
    let report = gate_campaign(current, &baseline, gate_pct)
        .unwrap_or_else(|e| panic!("cannot gate against {baseline_path}: {e}"));

    let delta_path = match out.strip_suffix(".json") {
        Some(stem) => format!("{stem}.delta.json"),
        None => format!("{out}.delta.json"),
    };
    write_json_file(std::path::Path::new(&delta_path), &report.to_json())
        .unwrap_or_else(|e| panic!("failed to write {delta_path}: {e}"));

    let regressions = report.regressions();
    println!(
        "\n== Baseline gate: {} vs {baseline_path} (threshold {gate_pct}%) ==",
        out
    );
    for cell in &report.unmatched {
        println!("  (unmatched: {cell})");
    }
    // Context metrics: throughput trend, reported but never gated.
    for entry in &report.context {
        println!(
            "  context {}/{} {}: {:.0} -> {:.0} ({:+.1}%)",
            entry.spec,
            entry.scenario,
            entry.metric,
            entry.baseline,
            entry.current,
            entry.change_pct
        );
    }
    if regressions.is_empty() {
        println!(
            "  OK — no gated metric regressed by more than {gate_pct}% \
             (delta report: {delta_path})"
        );
        0
    } else {
        for r in &regressions {
            println!(
                "  REGRESSION {}/{} {}: {} -> {} ({:+.1}%)",
                r.spec, r.scenario, r.metric, r.baseline, r.current, r.change_pct
            );
        }
        println!(
            "  {} regression(s) past the {gate_pct}% gate (delta report: {delta_path})",
            regressions.len()
        );
        1
    }
}

/// Builds and runs one campaign cell on the same scenario skeleton (timeout,
/// measurement resolution, thread plumbing) as the fig/table binaries.
fn run_scenario(
    scale: &ExperimentScale,
    network: &str,
    scenario: &str,
    seed: u64,
    load_pairs: Option<u32>,
    load_ticks: u32,
) -> ScenarioReport {
    let mut builder = renaissance_bench::experiments::experiment(
        scale,
        &format!("scale-{scenario}"),
        network,
        3,
        scale.task_delay,
    )
    .runs(scale.runs)
    .seeds_from(seed);
    // All flows up front: the cell measures peak concurrency and the completion
    // curve, seeded per run from the harness seed.
    let flow_workload = move || -> Box<dyn renaissance::scenario::Workload> {
        Box::new(FlowEngineWorkload::new(
            FlowSetConfig::stress(load_pairs.unwrap_or(0)),
            load_ticks,
        ))
    };
    builder = match scenario {
        "bootstrap" => builder,
        "controller_failure" => builder.fault_at(
            SimDuration::ZERO,
            FaultEvent::FailController(ControllerSelector::Random { count: 1 }),
        ),
        "midpath_link_failure" => builder.fault_at(
            SimDuration::ZERO,
            FaultEvent::RemoveLink(LinkSelector::MidPath(Endpoints::FarthestSwitches)),
        ),
        "bootstrap_under_load" => builder.workload(flow_workload),
        "link_failure_under_load" => builder.workload(flow_workload).fault_at(
            SimDuration::from_secs(10),
            FaultEvent::RemoveLink(LinkSelector::MidPath(Endpoints::FarthestSwitches)),
        ),
        // The gray-failure family. Offsets leave at least 2x the worst committed
        // recovery time (2.75 s across all tiers) between consecutive batches so a
        // healthy control plane converges inside every window — the flap half-period
        // (6 s) is the tightest such window.
        "gray_link_recovery" => builder
            .fault_at(
                SimDuration::ZERO,
                FaultEvent::DegradeLink(gray_selector(network), DegradeSpec::gray()),
            )
            .fault_at(
                SimDuration::from_secs(2),
                FaultEvent::RemoveLink(LinkSelector::MidPath(Endpoints::FarthestSwitches)),
            ),
        "partition_heal" => builder
            .fault_at(
                SimDuration::from_secs(2),
                FaultEvent::Partition {
                    groups: PartitionSpec::Halves,
                    heal_after: Some(SimDuration::from_secs(10)),
                },
            )
            .probe(Probe::messages_sent())
            .sample_probes_every(SimDuration::from_millis(500)),
        "flapping_link" => builder.fault_at(
            SimDuration::from_secs(2),
            FaultEvent::FlapLink {
                selector: LinkSelector::RandomSafe { count: 1 },
                period: SimDuration::from_secs(12),
                count: 3,
            },
        ),
        "rolling_upgrade" => builder.fault_at(
            SimDuration::from_secs(2),
            FaultEvent::RollingControllerRestart {
                interval: SimDuration::from_secs(10),
                down_for: SimDuration::from_secs(5),
                count: 3,
            },
        ),
        other => unreachable!("unknown campaign scenario {other}"),
    };
    builder.run()
}

/// The link selector the gray cells degrade: the rack-correlated selector on fat
/// trees (all uplinks of one random edge switch), two random safe links elsewhere.
fn gray_selector(network: &str) -> LinkSelector {
    if network.starts_with("fat_tree") {
        LinkSelector::SameRack
    } else {
        LinkSelector::RandomSafe { count: 2 }
    }
}

/// Control-plane messages sent while the partition of a `partition_heal` run was in
/// force: the sampled messages-sent probe's delta between the last sample at or
/// before the cut batch and the last sample at or before the heal batch. `None` when
/// the run has no such window (bootstrap timeout or missing probe).
fn messages_during_partition(run: &RunReport) -> Option<f64> {
    let boot = run.bootstrap_s?;
    let [cut, heal, ..] = &run.recoveries[..] else {
        return None;
    };
    let series = run
        .probes
        .iter()
        .find(|p| p.key == MetricKey::MESSAGES_SENT)?;
    let value_at = |t: f64| -> Option<f64> {
        series
            .times_s
            .iter()
            .zip(&series.values)
            .take_while(|(ts, _)| **ts <= t)
            .last()
            .map(|(_, v)| *v)
    };
    Some(value_at(boot + heal.fault_at_s)? - value_at(boot + cut.fault_at_s)?)
}

/// The topology family a network name belongs to (`fat_tree`, `jellyfish`, `grid`, or
/// the name itself for paper networks).
fn family_of(network: &str) -> String {
    let lower = network.to_ascii_lowercase();
    for family in ["fat_tree", "fat-tree", "fattree", "jellyfish", "grid"] {
        if lower.starts_with(family) {
            return family.replace('-', "_").replace("fattree", "fat_tree");
        }
    }
    lower
}
