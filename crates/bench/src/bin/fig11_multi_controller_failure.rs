//! Figure 11: recovery time after the fail-stop of 1 to 6 controllers (7 deployed).

use renaissance_bench::experiments::{recovery_after_failure, ExperimentScale, FailureKind};
use renaissance_bench::report::{fmt2, print_table, Row};
use renaissance_bench::MetricPipeline;

fn main() {
    let args = renaissance_bench::cli::parse(
        "Figure 11: recovery time after the fail-stop of 1 to 6 controllers (7 deployed).",
        &[],
    );
    let mut scale = ExperimentScale::from_env();
    // The figure's default network subset; an explicit env/CLI list still wins.
    if std::env::var("RENAISSANCE_NETWORKS").is_err() {
        scale.networks = vec!["Telstra".into(), "AT&T".into(), "EBONE".into()];
    }
    let scale = scale.with_args(&args);
    let mut pipeline = MetricPipeline::from_args(&args);
    let mut all = Vec::new();
    let mut rows = Vec::new();
    for count in [1usize, 2, 4, 6] {
        let results =
            recovery_after_failure(&scale, 7, FailureKind::Controllers { count }, &mut pipeline);
        for r in &results {
            rows.push(Row::new(
                format!("{} ({} failed)", r.network, count),
                vec![fmt2(r.measurement.median()), fmt2(r.measurement.mean())],
            ));
        }
        all.extend(results);
    }
    print_table(
        "Figure 11 — recovery time after multiple controller fail-stops (simulated seconds)",
        &["median", "mean"],
        &rows,
        &all,
    );
    pipeline.finish();
}
