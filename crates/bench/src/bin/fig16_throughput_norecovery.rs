//! Figure 16: TCP throughput across a mid-path link failure, backup paths only.

use renaissance_bench::experiments::{throughput_under_failure, ExperimentScale};
use renaissance_bench::report::{fmt2, print_table, Row};
use renaissance_bench::MetricPipeline;

fn main() {
    let (scale, args) = ExperimentScale::from_cli(
        "Figure 16: TCP throughput across a mid-path link failure, backup paths only. Plots one seeded trace (pick it with --seed); --runs is not used.",
    );
    let mut pipeline = MetricPipeline::from_args(&args);
    let results = throughput_under_failure(&scale, false, &mut pipeline);
    let rows: Vec<Row> = results
        .iter()
        .map(|r| {
            Row::new(
                r.network.clone(),
                vec![
                    fmt2(r.run.mean_throughput()),
                    fmt2(r.run.min_throughput()),
                    fmt2(r.fct.map(|f| f.p50_s).unwrap_or_default()),
                    fmt2(r.fct.map(|f| f.p99_s).unwrap_or_default()),
                ],
            )
        })
        .collect();
    print_table(
        "Figure 16 — throughput without recovery (Mbit/s): mean, dip, background-flow \
         FCT p50/p99 (s)",
        &["mean", "dip", "fct p50", "fct p99"],
        &rows,
        &results,
    );
    for r in &results {
        println!(
            "{} per-second Mbit/s: {:?}",
            r.network,
            r.run
                .throughput_mbps
                .iter()
                .map(|v| v.round())
                .collect::<Vec<_>>()
        );
    }
    pipeline.finish();
}
