//! Table 8: the number of nodes and diameter of the studied networks.

use renaissance_bench::experiments::table8;
use renaissance_bench::report::{print_table, Row};
use renaissance_bench::MetricPipeline;

fn main() {
    // Table 8 is deterministic (no seeds or repetitions), but it still speaks the
    // shared CLI convention so `--help` and `--out`/`--format` work uniformly
    // across the binaries.
    let args = renaissance_bench::cli::parse(
        "Table 8: the number of nodes and diameter of the studied networks.",
        &[],
    );
    let mut pipeline = MetricPipeline::from_args(&args);
    let rows_data = table8(&mut pipeline);
    let rows: Vec<Row> = rows_data
        .iter()
        .map(|r| {
            Row::new(
                r.network.clone(),
                vec![r.nodes.to_string(), r.diameter.to_string()],
            )
        })
        .collect();
    print_table(
        "Table 8 — studied networks",
        &["nodes", "diameter"],
        &rows,
        &rows_data,
    );
    pipeline.finish();
}
