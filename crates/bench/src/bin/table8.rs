//! Table 8: the number of nodes and diameter of the studied networks.

use renaissance_bench::experiments::table8;
use renaissance_bench::report::{print_table, Row};

fn main() {
    // Table 8 is deterministic (no seeds or repetitions), but it still speaks the
    // shared CLI convention so `--help` works uniformly across the binaries.
    let _ = renaissance_bench::cli::parse(
        "Table 8: the number of nodes and diameter of the studied networks.",
        &[],
    );
    let rows_data = table8();
    let rows: Vec<Row> = rows_data
        .iter()
        .map(|r| {
            Row::new(
                r.network.clone(),
                vec![r.nodes.to_string(), r.diameter.to_string()],
            )
        })
        .collect();
    print_table(
        "Table 8 — studied networks",
        &["nodes", "diameter"],
        &rows,
        &rows_data,
    );
}
