//! Table 17: correlation of the average throughput with vs without recovery.

use renaissance_bench::experiments::{
    throughput_correlations, throughput_under_failure, ExperimentScale,
};
use renaissance_bench::report::{print_table, Row};
use renaissance_bench::MetricPipeline;

fn main() {
    let (scale, args) = ExperimentScale::from_cli(
        "Table 17: correlation of the average throughput with vs without recovery. Plots one seeded trace (pick it with --seed); --runs is not used.",
    );
    let mut pipeline = MetricPipeline::from_args(&args);
    let with = throughput_under_failure(&scale, true, &mut pipeline);
    let without = throughput_under_failure(&scale, false, &mut pipeline);
    let correlations = throughput_correlations(&with, &without, &mut pipeline);
    let rows: Vec<Row> = correlations
        .iter()
        .map(|c| Row::new(c.network.clone(), vec![format!("{:.2}", c.correlation)]))
        .collect();
    print_table(
        "Table 17 — correlation of throughput with vs without recovery",
        &["correlation"],
        &rows,
        &correlations,
    );
    pipeline.finish();
}
