//! Figure 7: bootstrap time as a function of the task delay (query interval), 7 controllers.

use renaissance_bench::experiments::{bootstrap_vs_task_delay, ExperimentScale};
use renaissance_bench::report::{fmt2, print_table, Row};
use renaissance_bench::MetricPipeline;
use sdn_netsim::SimDuration;

fn main() {
    let (scale, args) = ExperimentScale::from_cli(
        "Figure 7: bootstrap time as a function of the task delay (query interval), 7 controllers.",
    );
    let mut pipeline = MetricPipeline::from_args(&args);
    let delays: Vec<SimDuration> = [1000u64, 700, 500, 300, 100, 60, 20, 5]
        .into_iter()
        .map(SimDuration::from_millis)
        .collect();
    let results = bootstrap_vs_task_delay(&scale, 7, &delays, &mut pipeline);
    let rows: Vec<Row> = results
        .iter()
        .map(|r| {
            Row::new(
                format!("{} @ {:.3}s", r.network, r.task_delay_s),
                vec![fmt2(r.measurement.median()), fmt2(r.measurement.mean())],
            )
        })
        .collect();
    print_table(
        "Figure 7 — bootstrap time vs task delay, 7 controllers (simulated seconds)",
        &["median", "mean"],
        &rows,
        &results,
    );
    pipeline.finish();
}
