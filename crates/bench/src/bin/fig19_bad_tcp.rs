//! Figure 19: "BAD TCP" flag percentage per second around the link failure.

use renaissance_bench::experiments::{throughput_under_failure, ExperimentScale};
use renaissance_bench::report::{fmt2, print_table, Row};
use renaissance_bench::MetricPipeline;

fn main() {
    let (scale, args) = ExperimentScale::from_cli(
        "Figure 19: BAD TCP flag percentage per second around the link failure. Plots one seeded trace (pick it with --seed); --runs is not used.",
    );
    let mut pipeline = MetricPipeline::from_args(&args);
    let results = throughput_under_failure(&scale, true, &mut pipeline);
    let rows: Vec<Row> = results
        .iter()
        .map(|r| {
            let peak = r.run.bad_tcp_pct.iter().copied().fold(0.0, f64::max);
            Row::new(r.network.clone(), vec![fmt2(peak)])
        })
        .collect();
    print_table(
        "Figure 19 — peak BAD-TCP % (burst at the failure second)",
        &["peak %"],
        &rows,
        &results,
    );
    for r in &results {
        println!(
            "{} per-second BAD TCP %: {:?}",
            r.network,
            r.run
                .bad_tcp_pct
                .iter()
                .map(|v| (v * 10.0).round() / 10.0)
                .collect::<Vec<_>>()
        );
    }
    pipeline.finish();
}
