//! The experiment implementations behind every figure and table of the evaluation.
//!
//! Every function takes an [`ExperimentScale`] (how many repetitions, which networks)
//! and returns plain serializable results; the `src/bin/*` wrappers print them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use renaissance::{ControllerConfig, FaultInjector, HarnessConfig, SdnNetwork};
use sdn_netsim::{SimDuration, SimTime};
use sdn_topology::{builders, NamedTopology, NodeId};
use sdn_traffic::iperf::{self, IperfConfig, IperfRun};
use serde::Serialize;

/// How long (simulated) an experiment is allowed to take before it is reported as a
/// timeout. Generous: the paper's slowest bootstrap is ~2 minutes.
const TIMEOUT: SimDuration = SimDuration::from_secs(1_200);
/// Legitimacy is probed at this period; it is also the measurement resolution.
const CHECK_EVERY: SimDuration = SimDuration::from_millis(250);

/// Global scale knobs shared by every experiment binary.
#[derive(Clone, Debug, Serialize)]
pub struct ExperimentScale {
    /// Repetitions per configuration (different seeds). The paper used 20.
    pub runs: usize,
    /// Which of the paper's networks to include.
    pub networks: Vec<String>,
    /// Controller do-forever-loop delay (the paper's default is 500 ms).
    pub task_delay: SimDuration,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale {
            runs: 3,
            networks: builders::PAPER_NETWORK_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            task_delay: SimDuration::from_millis(500),
        }
    }
}

impl ExperimentScale {
    /// Reads the scale from the `RENAISSANCE_RUNS` / `RENAISSANCE_NETWORKS` environment
    /// variables, falling back to the defaults.
    pub fn from_env() -> Self {
        let mut scale = ExperimentScale::default();
        if let Ok(runs) = std::env::var("RENAISSANCE_RUNS") {
            if let Ok(runs) = runs.parse::<usize>() {
                scale.runs = runs.max(1);
            }
        }
        if let Ok(networks) = std::env::var("RENAISSANCE_NETWORKS") {
            let list: Vec<String> = networks
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if !list.is_empty() {
                scale.networks = list;
            }
        }
        scale
    }

    /// A small scale for tests: one run on the two smallest networks.
    pub fn smoke() -> Self {
        ExperimentScale {
            runs: 1,
            networks: vec!["B4".to_string(), "Clos".to_string()],
            task_delay: SimDuration::from_millis(200),
        }
    }
}

/// Summary statistics of repeated measurements (the numbers behind a violin in the
/// paper's plots).
#[derive(Clone, Debug, Default, Serialize)]
pub struct Measurement {
    /// Individual samples, in seconds of simulated time.
    pub samples: Vec<f64>,
}

impl Measurement {
    /// Adds one sample (seconds).
    pub fn push(&mut self, seconds: f64) {
        self.samples.push(seconds);
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Median of the samples (0 when empty).
    pub fn median(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted[sorted.len() / 2]
    }

    /// Minimum sample (0 when empty).
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min).min(f64::MAX)
    }

    /// Maximum sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }
}

/// Builds one of the paper's networks (or any name the topology builders know).
pub fn build_network(name: &str, controllers: usize, task_delay: SimDuration, seed: u64) -> SdnNetwork {
    let topology = builders::by_name(name, controllers);
    build_from_topology(topology, task_delay, seed)
}

/// Builds an [`SdnNetwork`] from an explicit topology.
pub fn build_from_topology(topology: NamedTopology, task_delay: SimDuration, seed: u64) -> SdnNetwork {
    let controller_config =
        ControllerConfig::for_network(topology.controller_count(), topology.switch_count());
    let harness = HarnessConfig::default()
        .with_task_delay(task_delay)
        .with_seed(seed);
    SdnNetwork::new(topology, controller_config, harness)
}

/// Bootstraps `sdn` from empty switch configurations and returns the time to reach a
/// legitimate state, in seconds.
pub fn measure_bootstrap(sdn: &mut SdnNetwork) -> Option<f64> {
    sdn.run_until_legitimate(CHECK_EVERY, TIMEOUT)
        .map(|d| d.as_secs_f64())
}

/// Runs `sdn` until it is legitimate and returns the time it took, in seconds — used
/// after injecting a fault into an already legitimate network.
pub fn measure_recovery(sdn: &mut SdnNetwork) -> Option<f64> {
    measure_bootstrap(sdn)
}

// ---------------------------------------------------------------------------
// Table 8
// ---------------------------------------------------------------------------

/// One row of Table 8: network name, switch count, diameter.
#[derive(Clone, Debug, Serialize)]
pub struct Table8Row {
    /// Network name.
    pub network: String,
    /// Number of switches.
    pub nodes: usize,
    /// Switch-graph diameter.
    pub diameter: u32,
}

/// Regenerates Table 8 from the topology builders.
pub fn table8() -> Vec<Table8Row> {
    builders::paper_networks(3)
        .into_iter()
        .map(|net| Table8Row {
            network: net.name.clone(),
            nodes: net.switch_count(),
            diameter: sdn_topology::paths::diameter(&net.switch_graph),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 5–7: bootstrap time
// ---------------------------------------------------------------------------

/// Result of a bootstrap-time experiment for one configuration.
#[derive(Clone, Debug, Serialize)]
pub struct BootstrapResult {
    /// Network name.
    pub network: String,
    /// Number of controllers.
    pub controllers: usize,
    /// Task delay used, in seconds.
    pub task_delay_s: f64,
    /// Bootstrap times over the repetitions, in simulated seconds.
    pub measurement: Measurement,
}

/// Figure 5: bootstrap time for every network with `controllers` controllers.
pub fn bootstrap_times(scale: &ExperimentScale, controllers: usize) -> Vec<BootstrapResult> {
    scale
        .networks
        .iter()
        .map(|name| bootstrap_one(scale, name, controllers, scale.task_delay))
        .collect()
}

/// Figure 6: bootstrap time as a function of the number of controllers.
pub fn bootstrap_vs_controllers(
    scale: &ExperimentScale,
    controller_counts: &[usize],
) -> Vec<BootstrapResult> {
    let mut out = Vec::new();
    for name in &scale.networks {
        for &controllers in controller_counts {
            out.push(bootstrap_one(scale, name, controllers, scale.task_delay));
        }
    }
    out
}

/// Figure 7: bootstrap time as a function of the task delay.
pub fn bootstrap_vs_task_delay(
    scale: &ExperimentScale,
    controllers: usize,
    task_delays: &[SimDuration],
) -> Vec<BootstrapResult> {
    let mut out = Vec::new();
    for name in &scale.networks {
        for &delay in task_delays {
            out.push(bootstrap_one(scale, name, controllers, delay));
        }
    }
    out
}

fn bootstrap_one(
    scale: &ExperimentScale,
    name: &str,
    controllers: usize,
    task_delay: SimDuration,
) -> BootstrapResult {
    let mut measurement = Measurement::default();
    for run in 0..scale.runs {
        let mut sdn = build_network(name, controllers, task_delay, 100 + run as u64);
        if let Some(seconds) = measure_bootstrap(&mut sdn) {
            measurement.push(seconds);
        }
    }
    BootstrapResult {
        network: name.to_string(),
        controllers,
        task_delay_s: task_delay.as_secs_f64(),
        measurement,
    }
}

// ---------------------------------------------------------------------------
// Figure 9: communication overhead
// ---------------------------------------------------------------------------

/// Result of the communication-overhead experiment for one network.
#[derive(Clone, Debug, Serialize)]
pub struct OverheadResult {
    /// Network name.
    pub network: String,
    /// Number of controllers used.
    pub controllers: usize,
    /// Messages sent by the most loaded controller, divided by the number of
    /// do-forever iterations it needed to converge, divided by the number of nodes —
    /// the normalized per-node message count the paper plots.
    pub messages_per_node_per_iteration: Measurement,
}

/// Figure 9: messages per node (max-loaded controller, normalized by iterations).
pub fn communication_overhead(scale: &ExperimentScale, controllers: usize) -> Vec<OverheadResult> {
    let mut out = Vec::new();
    for name in &scale.networks {
        let mut measurement = Measurement::default();
        for run in 0..scale.runs {
            let mut sdn = build_network(name, controllers, scale.task_delay, 300 + run as u64);
            if measure_bootstrap(&mut sdn).is_none() {
                continue;
            }
            let nodes = sdn.topology().node_count() as f64;
            let live = sdn.live_controller_ids();
            if let Some((max_ctrl, sent)) = sdn
                .metrics()
                .max_sender_among(live.iter().copied())
            {
                let iterations = sdn
                    .controller(max_ctrl)
                    .map(|c| c.stats().iterations.max(1))
                    .unwrap_or(1) as f64;
                measurement.push(sent as f64 / iterations / nodes);
            }
        }
        out.push(OverheadResult {
            network: name.clone(),
            controllers,
            messages_per_node_per_iteration: measurement,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Figures 10–14: recovery after benign failures
// ---------------------------------------------------------------------------

/// The benign failure kinds of the paper's recovery experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum FailureKind {
    /// Fail-stop of `count` random controllers (Figures 10 and 11).
    Controllers {
        /// How many controllers fail simultaneously.
        count: usize,
    },
    /// Fail-stop of one random switch (Figure 12).
    Switch,
    /// Permanent removal of `count` random links that keep the network connected
    /// (Figures 13 and 14).
    Links {
        /// How many links are removed simultaneously.
        count: usize,
    },
}

/// Result of one recovery experiment.
#[derive(Clone, Debug, Serialize)]
pub struct RecoveryResult {
    /// Network name.
    pub network: String,
    /// Number of controllers in the deployment.
    pub controllers: usize,
    /// The injected failure.
    pub failure: FailureKind,
    /// Recovery times, in simulated seconds.
    pub measurement: Measurement,
}

/// Figures 10–14: recovery time after the given failure kind.
pub fn recovery_after_failure(
    scale: &ExperimentScale,
    controllers: usize,
    failure: FailureKind,
) -> Vec<RecoveryResult> {
    let mut out = Vec::new();
    for name in &scale.networks {
        let mut measurement = Measurement::default();
        for run in 0..scale.runs {
            let seed = 700 + run as u64;
            let mut sdn = build_network(name, controllers, scale.task_delay, seed);
            if measure_bootstrap(&mut sdn).is_none() {
                continue;
            }
            let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
            let mut injector = FaultInjector::new(seed ^ 0xBEEF);
            match failure {
                FailureKind::Controllers { count } => {
                    let mut victims = sdn.controller_ids();
                    // never kill every controller: the task needs at least one
                    let kill = count.min(victims.len().saturating_sub(1));
                    for _ in 0..kill {
                        let idx = rng.gen_range(0..victims.len());
                        let victim = victims.remove(idx);
                        sdn.fail_controller(victim);
                    }
                }
                FailureKind::Switch => {
                    let victim = pick_safe_switch(&sdn, &mut rng);
                    sdn.fail_switch(victim);
                }
                FailureKind::Links { count } => {
                    for (a, b) in injector.random_safe_links(&sdn, count) {
                        sdn.remove_link(a, b);
                    }
                }
            }
            if let Some(seconds) = measure_recovery(&mut sdn) {
                measurement.push(seconds);
            }
        }
        out.push(RecoveryResult {
            network: name.clone(),
            controllers,
            failure,
            measurement,
        });
    }
    out
}

/// Picks a switch whose removal keeps the rest of the network connected (the paper's
/// switch-failure experiment also always stays connected).
fn pick_safe_switch(sdn: &SdnNetwork, rng: &mut StdRng) -> NodeId {
    let switches = sdn.live_switch_ids();
    let graph = sdn.sim().topology();
    let mut candidates: Vec<NodeId> = switches
        .iter()
        .copied()
        .filter(|&s| {
            let pruned = graph.without_nodes(&[s]);
            sdn_topology::paths::is_connected(&pruned)
        })
        .collect();
    if candidates.is_empty() {
        candidates = switches;
    }
    candidates[rng.gen_range(0..candidates.len())]
}

// ---------------------------------------------------------------------------
// Figures 15–20 and Table 17: throughput under failure
// ---------------------------------------------------------------------------

/// Result of a throughput experiment on one network.
#[derive(Clone, Debug, Serialize)]
pub struct ThroughputResult {
    /// Network name.
    pub network: String,
    /// The per-second run data.
    pub run: IperfRun,
}

/// Figures 15/16: per-second TCP throughput with a mid-path link failure at second 10,
/// with (`recovery = true`) or without (`recovery = false`) controller-driven repair.
pub fn throughput_under_failure(scale: &ExperimentScale, recovery: bool) -> Vec<ThroughputResult> {
    let mut out = Vec::new();
    for name in &scale.networks {
        let mut sdn = build_network(name, 3, scale.task_delay, 42);
        if measure_bootstrap(&mut sdn).is_none() {
            continue;
        }
        let Some((src, dst)) = iperf::farthest_switch_pair(&sdn) else {
            continue;
        };
        let run = iperf::run_throughput_experiment(
            &mut sdn,
            src,
            dst,
            IperfConfig {
                recovery_enabled: recovery,
                ..IperfConfig::default()
            },
        );
        out.push(ThroughputResult {
            network: name.clone(),
            run,
        });
    }
    out
}

/// Table 17: correlation between the with-recovery and without-recovery runs.
#[derive(Clone, Debug, Serialize)]
pub struct CorrelationRow {
    /// Network name.
    pub network: String,
    /// Pearson correlation coefficient of the two throughput curves.
    pub correlation: f64,
}

/// Computes the Table 17 correlations from two sets of throughput runs.
pub fn throughput_correlations(
    with_recovery: &[ThroughputResult],
    without_recovery: &[ThroughputResult],
) -> Vec<CorrelationRow> {
    with_recovery
        .iter()
        .filter_map(|w| {
            without_recovery
                .iter()
                .find(|n| n.network == w.network)
                .and_then(|n| sdn_traffic::throughput_correlation(&w.run, &n.run))
                .map(|correlation| CorrelationRow {
                    network: w.network.clone(),
                    correlation,
                })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Ablation: memory-adaptive vs non-adaptive variant, transient-fault recovery
// ---------------------------------------------------------------------------

/// Result of the variant ablation on one network.
#[derive(Clone, Debug, Serialize)]
pub struct AblationResult {
    /// Network name.
    pub network: String,
    /// Whether the memory-adaptive (main) algorithm was used.
    pub memory_adaptive: bool,
    /// Time to recover from an arbitrary corrupted state, in seconds.
    pub transient_recovery: Measurement,
    /// Total rules installed across all switches after stabilization.
    pub total_rules_after: Measurement,
}

/// Compares the main memory-adaptive algorithm with the Section 8.1 non-adaptive
/// variant: recovery time from heavy transient corruption and post-recovery memory use.
pub fn variant_ablation(scale: &ExperimentScale) -> Vec<AblationResult> {
    let mut out = Vec::new();
    for name in &scale.networks {
        for adaptive in [true, false] {
            let mut recovery = Measurement::default();
            let mut rules_after = Measurement::default();
            for run in 0..scale.runs {
                let topology = builders::by_name(name, 3);
                let mut config = ControllerConfig::for_network(
                    topology.controller_count(),
                    topology.switch_count(),
                );
                if !adaptive {
                    config = config.non_adaptive();
                }
                let harness = HarnessConfig::default()
                    .with_task_delay(scale.task_delay)
                    .with_seed(900 + run as u64);
                let mut sdn = SdnNetwork::new(topology, config, harness);
                if measure_bootstrap(&mut sdn).is_none() {
                    continue;
                }
                let mut injector = FaultInjector::new(31 + run as u64);
                injector.corrupt(&mut sdn, renaissance::CorruptionPlan::heavy());
                if let Some(seconds) = measure_recovery(&mut sdn) {
                    recovery.push(seconds);
                    rules_after.push(sdn.total_rules() as f64);
                }
            }
            out.push(AblationResult {
                network: name.clone(),
                memory_adaptive: adaptive,
                transient_recovery: recovery,
                total_rules_after: rules_after,
            });
        }
    }
    out
}

/// Convenience: current simulated time of a network as seconds (used by binaries that
/// want to report absolute timestamps).
pub fn now_seconds(sdn: &SdnNetwork) -> f64 {
    let now: SimTime = sdn.now();
    now.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_matches_paper() {
        let rows = table8();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].network, "B4");
        assert_eq!(rows[0].nodes, 12);
        assert_eq!(rows[0].diameter, 5);
        assert_eq!(rows[4].network, "EBONE");
        assert_eq!(rows[4].nodes, 208);
        assert_eq!(rows[4].diameter, 11);
    }

    #[test]
    fn measurement_statistics() {
        let mut m = Measurement::default();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.median(), 0.0);
        m.push(2.0);
        m.push(4.0);
        m.push(9.0);
        assert_eq!(m.mean(), 5.0);
        assert_eq!(m.median(), 4.0);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 9.0);
    }

    #[test]
    fn scale_from_env_defaults() {
        let scale = ExperimentScale::default();
        assert_eq!(scale.runs, 3);
        assert_eq!(scale.networks.len(), 5);
        let smoke = ExperimentScale::smoke();
        assert_eq!(smoke.runs, 1);
        assert_eq!(smoke.networks, vec!["B4", "Clos"]);
    }

    #[test]
    fn smoke_bootstrap_and_recovery_on_b4() {
        let scale = ExperimentScale {
            runs: 1,
            networks: vec!["B4".to_string()],
            task_delay: SimDuration::from_millis(200),
        };
        let bootstrap = bootstrap_times(&scale, 3);
        assert_eq!(bootstrap.len(), 1);
        assert_eq!(bootstrap[0].measurement.samples.len(), 1, "B4 must bootstrap");
        let recovery = recovery_after_failure(&scale, 3, FailureKind::Links { count: 1 });
        assert_eq!(recovery[0].measurement.samples.len(), 1, "B4 must recover");
        assert!(recovery[0].measurement.mean() > 0.0);
    }
}
