//! The experiment implementations behind every figure and table of the evaluation.
//!
//! Every function takes an [`ExperimentScale`] (how many repetitions, which networks)
//! and a [`Recorder`] the per-run samples stream through under typed [`MetricKey`]s,
//! and returns digest-backed results the `src/bin/*` wrappers print. Each experiment
//! is a declarative [`Scenario`]: topology + fault schedule + workloads + probes,
//! executed by the event-driven scenario runner — no experiment hand-rolls fault
//! injection, polling loops, or stringly-typed summaries anymore.

use renaissance::scenario::{
    ControlPlane, ControllerSelector, Endpoints, FaultEvent, LinkSelector, Scenario,
    ScenarioBuilder, SwitchSelector,
};
use renaissance::{ControllerConfig, CorruptionPlan, SdnNetwork};
use sdn_metrics::{MetricKey, Namespace, Polarity, Recorder, Unit};
use sdn_netsim::SimDuration;
use sdn_topology::builders;
use sdn_traffic::engine::{FctSummary, FlowEngineWorkload, FlowSetConfig};
use sdn_traffic::iperf::{IperfRun, IperfWorkload};

/// Streaming summary statistics of repeated measurements (the numbers behind a violin
/// in the paper's plots): count, mean, stddev, min/max, p50/p90/p99.
pub use sdn_metrics::Digest as Measurement;

/// The Figure 9 communication-overhead metric: messages per node per do-forever
/// iteration of the maximum-loaded controller.
pub const OVERHEAD: MetricKey = MetricKey::named(
    Namespace::Scenario,
    "overhead_msgs_per_node_per_iter",
    Unit::Count,
    Polarity::LowerIsBetter,
);

/// The per-second BAD-TCP flag percentage of the iperf workload (Figure 19).
pub const BAD_TCP: MetricKey = MetricKey::named(
    Namespace::Workload,
    "bad_tcp_pct",
    Unit::Percent,
    Polarity::LowerIsBetter,
);

/// The per-second out-of-order packet percentage of the iperf workload (Figure 20).
pub const OUT_OF_ORDER: MetricKey = MetricKey::named(
    Namespace::Workload,
    "out_of_order_pct",
    Unit::Percent,
    Polarity::LowerIsBetter,
);

/// The with/without-recovery throughput correlation of Table 17.
pub const CORRELATION: MetricKey = MetricKey::named(
    Namespace::Bench,
    "throughput_correlation",
    Unit::Ratio,
    Polarity::Neutral,
);

/// How long (simulated) an experiment is allowed to take before it is reported as a
/// timeout. Generous: the paper's slowest bootstrap is ~2 minutes.
const TIMEOUT: SimDuration = SimDuration::from_secs(1_200);
/// Legitimacy is probed at this period; it is also the measurement resolution.
const CHECK_EVERY: SimDuration = SimDuration::from_millis(250);

/// Global scale knobs shared by every experiment binary.
#[derive(Clone, Debug)]
pub struct ExperimentScale {
    /// Repetitions per configuration (different seeds). The paper used 20.
    pub runs: usize,
    /// Which networks to include: paper names or generator names such as
    /// `fat_tree(8)`, `jellyfish(100, 4, 7)`, `grid(10, 12)`.
    pub networks: Vec<String>,
    /// Controller do-forever-loop delay (the paper's default is 500 ms).
    pub task_delay: SimDuration,
    /// Base-seed override; `None` keeps each experiment's documented default seed.
    pub seed: Option<u64>,
    /// Scenario-runner worker threads; `None` lets the runner pick
    /// (`RENAISSANCE_THREADS`, then all cores).
    pub threads: Option<usize>,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale {
            runs: 3,
            networks: builders::PAPER_NETWORK_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            task_delay: SimDuration::from_millis(500),
            seed: None,
            threads: None,
        }
    }
}

impl ExperimentScale {
    /// Reads the scale from the `RENAISSANCE_RUNS` / `RENAISSANCE_NETWORKS` /
    /// `RENAISSANCE_SEED` environment variables, falling back to the defaults.
    pub fn from_env() -> Self {
        let mut scale = ExperimentScale::default();
        if let Ok(runs) = std::env::var("RENAISSANCE_RUNS") {
            if let Ok(runs) = runs.parse::<usize>() {
                scale.runs = runs.max(1);
            }
        }
        if let Ok(networks) = std::env::var("RENAISSANCE_NETWORKS") {
            let list = split_network_list(&networks);
            if !list.is_empty() {
                scale.networks = list;
            }
        }
        if let Ok(seed) = std::env::var("RENAISSANCE_SEED") {
            if let Ok(seed) = seed.parse::<u64>() {
                scale.seed = Some(seed);
            }
        }
        scale
    }

    /// The scale every experiment binary uses: environment variables overridden by the
    /// shared command-line convention (see [`crate::cli`]). Handles `--help` itself.
    /// Also returns the parsed arguments so the binary can build its
    /// [`MetricPipeline`](crate::output::MetricPipeline) from `--out`/`--format`.
    pub fn from_cli(about: &str) -> (Self, crate::cli::CliArgs) {
        let args = crate::cli::parse(about, &[]);
        (Self::from_env().with_args(&args), args)
    }

    /// Applies parsed command-line arguments on top of this scale.
    pub fn with_args(mut self, args: &crate::cli::CliArgs) -> Self {
        if let Some(runs) = args.parsed::<usize>("--runs") {
            self.runs = runs.max(1);
        }
        if let Some(seed) = args.parsed::<u64>("--seed") {
            self.seed = Some(seed);
        }
        if let Some(networks) = args.value("--networks") {
            let list = split_network_list(networks);
            if !list.is_empty() {
                self.networks = list;
            }
        }
        if let Some(ms) = args.parsed::<u64>("--task-delay-ms") {
            self.task_delay = SimDuration::from_millis(ms.max(1));
        }
        if let Some(threads) = args.parsed::<usize>("--threads") {
            self.threads = Some(threads.max(1));
        }
        self
    }

    /// The base seed to use: the CLI/env override if one was given, otherwise the
    /// experiment's documented default.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// A small scale for tests: one run on the two smallest networks.
    pub fn smoke() -> Self {
        ExperimentScale {
            runs: 1,
            networks: vec!["B4".to_string(), "Clos".to_string()],
            task_delay: SimDuration::from_millis(200),
            ..ExperimentScale::default()
        }
    }
}

/// Splits a comma-separated network list, keeping commas inside parentheses: the
/// generator names (`jellyfish(100, 4, 7)`, `grid(10, 12)`) use commas for their own
/// arguments, so `"grid(4,4),B4"` is two entries, not three.
pub fn split_network_list(raw: &str) -> Vec<String> {
    let mut list = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in raw.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 => {
                list.push(std::mem::take(&mut current));
            }
            c => current.push(c),
        }
    }
    list.push(current);
    list.into_iter()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// The shared scenario skeleton of every experiment: a network, the scale's task
/// delay and thread count, and the evaluation's timeout and measurement resolution.
/// Public so the scale campaign measures with exactly the same skeleton as the
/// fig/table binaries.
pub fn experiment(
    scale: &ExperimentScale,
    name: &str,
    network: &str,
    controllers: usize,
    task_delay: SimDuration,
) -> ScenarioBuilder {
    let mut builder = Scenario::builder(name)
        .network(network)
        .controllers(controllers)
        .task_delay(task_delay)
        .timeout(TIMEOUT)
        .check_every(CHECK_EVERY);
    if let Some(threads) = scale.threads {
        builder = builder.threads(threads);
    }
    builder
}

// ---------------------------------------------------------------------------
// Table 8
// ---------------------------------------------------------------------------

/// One row of Table 8: network name, switch count, diameter.
#[derive(Clone, Debug)]
pub struct Table8Row {
    /// Network name.
    pub network: String,
    /// Number of switches.
    pub nodes: usize,
    /// Switch-graph diameter.
    pub diameter: u32,
}

/// Regenerates Table 8 from the topology builders.
pub fn table8(rec: &mut dyn Recorder) -> Vec<Table8Row> {
    let switches = MetricKey::custom(Namespace::Bench, "switches");
    let diameter = MetricKey::custom(Namespace::Bench, "diameter");
    builders::paper_networks(3)
        .into_iter()
        .map(|net| {
            let row = Table8Row {
                network: net.name.clone(),
                nodes: net.switch_count(),
                diameter: sdn_topology::paths::diameter(&net.switch_graph),
            };
            rec.record(&row.network, &switches, row.nodes as f64);
            rec.record(&row.network, &diameter, row.diameter as f64);
            row
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 5–7: bootstrap time
// ---------------------------------------------------------------------------

/// Result of a bootstrap-time experiment for one configuration.
#[derive(Clone, Debug)]
pub struct BootstrapResult {
    /// Network name.
    pub network: String,
    /// Number of controllers.
    pub controllers: usize,
    /// Task delay used, in seconds.
    pub task_delay_s: f64,
    /// Bootstrap times over the repetitions, in simulated seconds.
    pub measurement: Measurement,
}

/// Figure 5: bootstrap time for every network with `controllers` controllers.
pub fn bootstrap_times(
    scale: &ExperimentScale,
    controllers: usize,
    rec: &mut dyn Recorder,
) -> Vec<BootstrapResult> {
    scale
        .networks
        .iter()
        .map(|name| bootstrap_one(scale, name, controllers, scale.task_delay, rec))
        .collect()
}

/// Figure 6: bootstrap time as a function of the number of controllers.
pub fn bootstrap_vs_controllers(
    scale: &ExperimentScale,
    controller_counts: &[usize],
    rec: &mut dyn Recorder,
) -> Vec<BootstrapResult> {
    let mut out = Vec::new();
    for name in &scale.networks {
        for &controllers in controller_counts {
            out.push(bootstrap_one(
                scale,
                name,
                controllers,
                scale.task_delay,
                rec,
            ));
        }
    }
    out
}

/// Figure 7: bootstrap time as a function of the task delay.
pub fn bootstrap_vs_task_delay(
    scale: &ExperimentScale,
    controllers: usize,
    task_delays: &[SimDuration],
    rec: &mut dyn Recorder,
) -> Vec<BootstrapResult> {
    let mut out = Vec::new();
    for name in &scale.networks {
        for &delay in task_delays {
            out.push(bootstrap_one(scale, name, controllers, delay, rec));
        }
    }
    out
}

fn bootstrap_one(
    scale: &ExperimentScale,
    name: &str,
    controllers: usize,
    task_delay: SimDuration,
    rec: &mut dyn Recorder,
) -> BootstrapResult {
    let report = experiment(scale, "bootstrap", name, controllers, task_delay)
        .runs(scale.runs)
        .seeds_from(scale.seed_or(100))
        .run();
    let scope = format!(
        "{name}/c={controllers}/task={:.0}ms",
        task_delay.as_secs_f64() * 1e3
    );
    let mut measurement = Measurement::default();
    for run in &report.runs {
        if let Some(s) = run.bootstrap_s {
            rec.record(&scope, &MetricKey::BOOTSTRAP_TIME, s);
            measurement.record(s);
        }
    }
    BootstrapResult {
        network: name.to_string(),
        controllers,
        task_delay_s: task_delay.as_secs_f64(),
        measurement,
    }
}

// ---------------------------------------------------------------------------
// Figure 9: communication overhead
// ---------------------------------------------------------------------------

/// Result of the communication-overhead experiment for one network.
#[derive(Clone, Debug)]
pub struct OverheadResult {
    /// Network name.
    pub network: String,
    /// Number of controllers used.
    pub controllers: usize,
    /// Messages sent by the most loaded controller, divided by the number of
    /// do-forever iterations it needed to converge, divided by the number of nodes —
    /// the normalized per-node message count the paper plots.
    pub messages_per_node_per_iteration: Measurement,
}

/// The Figure 9 observable, evaluated over a converged network.
fn overhead_per_node_per_iteration(net: &SdnNetwork) -> f64 {
    let nodes = net.topology().node_count() as f64;
    let live = net.live_controller_ids();
    let Some((max_ctrl, sent)) = net.metrics().max_sender_among(live.iter().copied()) else {
        return 0.0;
    };
    let iterations = net
        .controller(max_ctrl)
        .map(|c| c.stats().iterations.max(1))
        .unwrap_or(1) as f64;
    sent as f64 / iterations / nodes
}

/// Figure 9: messages per node (max-loaded controller, normalized by iterations).
pub fn communication_overhead(
    scale: &ExperimentScale,
    controllers: usize,
    rec: &mut dyn Recorder,
) -> Vec<OverheadResult> {
    scale
        .networks
        .iter()
        .map(|name| {
            let report = experiment(scale, "comm-overhead", name, controllers, scale.task_delay)
                .runs(scale.runs)
                .seeds_from(scale.seed_or(300))
                .summary(OVERHEAD, overhead_per_node_per_iteration)
                .run();
            let scope = format!("{name}/c={controllers}");
            let mut measurement = Measurement::default();
            for run in report.runs.iter().filter(|r| r.bootstrap_s.is_some()) {
                if let Some(value) = run.metric(&OVERHEAD) {
                    rec.record(&scope, &OVERHEAD, value);
                    measurement.record(value);
                }
            }
            OverheadResult {
                network: name.clone(),
                controllers,
                messages_per_node_per_iteration: measurement,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 10–14: recovery after benign failures
// ---------------------------------------------------------------------------

/// The benign failure kinds of the paper's recovery experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// Fail-stop of `count` random controllers (Figures 10 and 11).
    Controllers {
        /// How many controllers fail simultaneously.
        count: usize,
    },
    /// Fail-stop of one random switch (Figure 12).
    Switch,
    /// Permanent removal of `count` random links that keep the network connected
    /// (Figures 13 and 14).
    Links {
        /// How many links are removed simultaneously.
        count: usize,
    },
}

impl FailureKind {
    /// The fault event this failure kind injects.
    fn event(self) -> FaultEvent {
        match self {
            FailureKind::Controllers { count } => {
                FaultEvent::FailController(ControllerSelector::Random { count })
            }
            FailureKind::Switch => FaultEvent::FailSwitch(SwitchSelector::Random),
            FailureKind::Links { count } => {
                FaultEvent::RemoveLink(LinkSelector::RandomSafe { count })
            }
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Controllers { count } => write!(f, "controllers({count})"),
            FailureKind::Switch => write!(f, "switch"),
            FailureKind::Links { count } => write!(f, "links({count})"),
        }
    }
}

/// Result of one recovery experiment.
#[derive(Clone, Debug)]
pub struct RecoveryResult {
    /// Network name.
    pub network: String,
    /// Number of controllers in the deployment.
    pub controllers: usize,
    /// The injected failure.
    pub failure: FailureKind,
    /// Recovery times, in simulated seconds.
    pub measurement: Measurement,
}

/// Figures 10–14: recovery time after the given failure kind, injected into an
/// already-legitimate network.
pub fn recovery_after_failure(
    scale: &ExperimentScale,
    controllers: usize,
    failure: FailureKind,
    rec: &mut dyn Recorder,
) -> Vec<RecoveryResult> {
    scale
        .networks
        .iter()
        .map(|name| {
            let report = experiment(scale, "recovery", name, controllers, scale.task_delay)
                .runs(scale.runs)
                .seeds_from(scale.seed_or(700))
                .fault_at(SimDuration::ZERO, failure.event())
                .run();
            let scope = format!("{name}/c={controllers}/{failure}");
            let mut measurement = Measurement::default();
            for run in &report.runs {
                for recovery in run.recoveries.iter().filter_map(|r| r.recovered_in_s) {
                    rec.record(&scope, &MetricKey::RECOVERY_TIME, recovery);
                    measurement.record(recovery);
                }
            }
            RecoveryResult {
                network: name.clone(),
                controllers,
                failure,
                measurement,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 15–20 and Table 17: throughput under failure
// ---------------------------------------------------------------------------

/// Result of a throughput experiment on one network.
#[derive(Clone, Debug)]
pub struct ThroughputResult {
    /// Network name.
    pub network: String,
    /// The per-second run data.
    pub run: IperfRun,
    /// Description of the mid-path link that was failed, if any.
    pub failed_link: Option<String>,
    /// Flow-completion-time summary of the background flow-engine population that
    /// shared the run (present when the population completed any flows).
    pub fct: Option<FctSummary>,
}

/// Flow-population size of the background flow engine the figure experiments run
/// beside the iperf flow. Small enough to keep the figure binaries fast; large
/// enough for stable FCT quantiles.
const FIGURE_FLOW_PAIRS: u32 = 10_000;

/// Figures 15/16: per-second TCP throughput with a mid-path link failure at second 10,
/// with (`recovery = true`) or without (`recovery = false`) controller-driven repair.
/// Every per-second sample of the run streams through the recorder.
///
/// Beside the single mechanistic iperf flow, the heavy-traffic flow engine runs a
/// 10k-flow background population on the same agenda (both workloads tick at one
/// simulated second, and workloads observe the simulator without perturbing it — so
/// the iperf series are bit-identical to a run without the population). Its FCT
/// digest lands in [`ThroughputResult::fct`] and on the recorder as `fct_p50_s` /
/// `fct_p99_s`.
pub fn throughput_under_failure(
    scale: &ExperimentScale,
    recovery: bool,
    rec: &mut dyn Recorder,
) -> Vec<ThroughputResult> {
    let mut out = Vec::new();
    for name in &scale.networks {
        let report = experiment(scale, "throughput", name, 3, scale.task_delay)
            .seeds_from(scale.seed_or(42))
            .workload(|| Box::new(IperfWorkload::farthest(30)))
            .workload(|| {
                Box::new(FlowEngineWorkload::new(
                    FlowSetConfig::stress(FIGURE_FLOW_PAIRS),
                    30,
                ))
            })
            .fault_at(
                SimDuration::from_secs(10),
                FaultEvent::RemoveLink(LinkSelector::MidPath(Endpoints::FarthestSwitches)),
            )
            .control_plane(if recovery {
                ControlPlane::Live
            } else {
                ControlPlane::Frozen
            })
            .run();
        let run = &report.runs[0];
        if run.bootstrap_s.is_none() {
            continue;
        }
        let Some(iperf) = run.workload("iperf") else {
            continue;
        };
        let Some(typed) = IperfWorkload::run_from_report(iperf) else {
            continue;
        };
        let scope = format!(
            "{name}/{}",
            if recovery {
                "with-recovery"
            } else {
                "no-recovery"
            }
        );
        for (key, series) in [
            (&MetricKey::THROUGHPUT, &typed.throughput_mbps),
            (&MetricKey::RETRANSMISSIONS, &typed.retransmission_pct),
            (&BAD_TCP, &typed.bad_tcp_pct),
            (&OUT_OF_ORDER, &typed.out_of_order_pct),
        ] {
            for &value in series {
                rec.record(&scope, key, value);
            }
        }
        let fct = run
            .workload("flow_engine")
            .and_then(|wl| wl.digest("fct_s"))
            .filter(|d| !d.is_empty())
            .map(|d| {
                rec.record(&scope, &MetricKey::FCT_P50, d.p50());
                rec.record(&scope, &MetricKey::FCT_P99, d.p99());
                FctSummary::from_digest(d)
            });
        out.push(ThroughputResult {
            network: name.clone(),
            run: typed,
            failed_link: run.injected.first().map(|f| f.description.clone()),
            fct,
        });
    }
    out
}

/// Table 17: correlation between the with-recovery and without-recovery runs.
#[derive(Clone, Debug)]
pub struct CorrelationRow {
    /// Network name.
    pub network: String,
    /// Pearson correlation coefficient of the two throughput curves.
    pub correlation: f64,
}

/// Computes the Table 17 correlations from two sets of throughput runs.
pub fn throughput_correlations(
    with_recovery: &[ThroughputResult],
    without_recovery: &[ThroughputResult],
    rec: &mut dyn Recorder,
) -> Vec<CorrelationRow> {
    with_recovery
        .iter()
        .filter_map(|w| {
            without_recovery
                .iter()
                .find(|n| n.network == w.network)
                .and_then(|n| sdn_traffic::throughput_correlation(&w.run, &n.run))
                .map(|correlation| {
                    rec.record(&w.network, &CORRELATION, correlation);
                    CorrelationRow {
                        network: w.network.clone(),
                        correlation,
                    }
                })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Ablation: memory-adaptive vs non-adaptive variant, transient-fault recovery
// ---------------------------------------------------------------------------

/// Result of the variant ablation on one network.
#[derive(Clone, Debug)]
pub struct AblationResult {
    /// Network name.
    pub network: String,
    /// Whether the memory-adaptive (main) algorithm was used.
    pub memory_adaptive: bool,
    /// Time to recover from an arbitrary corrupted state, in seconds.
    pub transient_recovery: Measurement,
    /// Total rules installed across all switches after stabilization.
    pub total_rules_after: Measurement,
}

/// Compares the main memory-adaptive algorithm with the Section 8.1 non-adaptive
/// variant: recovery time from heavy transient corruption and post-recovery memory use.
pub fn variant_ablation(scale: &ExperimentScale, rec: &mut dyn Recorder) -> Vec<AblationResult> {
    let mut out = Vec::new();
    for name in &scale.networks {
        for adaptive in [true, false] {
            let mut builder = experiment(scale, "variant-ablation", name, 3, scale.task_delay)
                .runs(scale.runs)
                .seeds_from(scale.seed_or(900))
                .fault_at(
                    SimDuration::ZERO,
                    FaultEvent::CorruptState(CorruptionPlan::heavy()),
                )
                .summary(MetricKey::TOTAL_RULES, |net| net.total_rules() as f64);
            if !adaptive {
                builder = builder.tune_controllers(ControllerConfig::non_adaptive);
            }
            let report = builder.run();
            let scope = format!(
                "{name}/{}",
                if adaptive { "adaptive" } else { "non-adaptive" }
            );
            let mut recovery = Measurement::default();
            let mut rules_after = Measurement::default();
            for run in &report.runs {
                if let Some(seconds) = run.first_recovery_s() {
                    rec.record(&scope, &MetricKey::RECOVERY_TIME, seconds);
                    recovery.record(seconds);
                    if let Some(rules) = run.metric(&MetricKey::TOTAL_RULES) {
                        rec.record(&scope, &MetricKey::TOTAL_RULES, rules);
                        rules_after.record(rules);
                    }
                }
            }
            out.push(AblationResult {
                network: name.clone(),
                memory_adaptive: adaptive,
                transient_recovery: recovery,
                total_rules_after: rules_after,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_metrics::MemorySink;

    #[test]
    fn table8_matches_paper() {
        let mut sink = MemorySink::default();
        let rows = table8(&mut sink);
        // The typed pipeline saw every row.
        assert_eq!(
            sink.digest("B4", &MetricKey::custom(Namespace::Bench, "switches"))
                .unwrap()
                .mean(),
            12.0
        );
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].network, "B4");
        assert_eq!(rows[0].nodes, 12);
        assert_eq!(rows[0].diameter, 5);
        assert_eq!(rows[4].network, "EBONE");
        assert_eq!(rows[4].nodes, 208);
        assert_eq!(rows[4].diameter, 11);
    }

    #[test]
    fn measurement_statistics() {
        let mut m = Measurement::default();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.median(), 0.0);
        m.record(2.0);
        m.record(4.0);
        m.record(9.0);
        assert_eq!(m.mean(), 5.0);
        assert_eq!(m.median(), 4.0);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 9.0);
        // The digest-backed Measurement adds the spread statistics the old Samples
        // type could not provide.
        assert!(m.stddev() > 0.0);
        assert_eq!(m.p90(), 9.0);
    }

    #[test]
    fn network_list_splitting_respects_parentheses() {
        assert_eq!(
            split_network_list("grid(4,4),fat_tree(8), B4 ,jellyfish(20, 3, 1)"),
            vec!["grid(4,4)", "fat_tree(8)", "B4", "jellyfish(20, 3, 1)"]
        );
        assert_eq!(split_network_list("B4,Clos"), vec!["B4", "Clos"]);
        assert_eq!(split_network_list(" , "), Vec::<String>::new());
    }

    #[test]
    fn scale_from_env_defaults() {
        let scale = ExperimentScale::default();
        assert_eq!(scale.runs, 3);
        assert_eq!(scale.networks.len(), 5);
        let smoke = ExperimentScale::smoke();
        assert_eq!(smoke.runs, 1);
        assert_eq!(smoke.networks, vec!["B4", "Clos"]);
    }

    #[test]
    fn smoke_bootstrap_and_recovery_on_b4() {
        let scale = ExperimentScale {
            runs: 1,
            networks: vec!["B4".to_string()],
            task_delay: SimDuration::from_millis(200),
            ..ExperimentScale::default()
        };
        let mut sink = MemorySink::default();
        let bootstrap = bootstrap_times(&scale, 3, &mut sink);
        assert_eq!(bootstrap.len(), 1);
        assert_eq!(bootstrap[0].measurement.len(), 1, "B4 must bootstrap");
        // The same sample flowed through the typed pipeline, under a scope naming
        // the full configuration.
        assert_eq!(
            sink.digest("B4/c=3/task=200ms", &MetricKey::BOOTSTRAP_TIME)
                .unwrap()
                .mean(),
            bootstrap[0].measurement.mean()
        );
        let recovery =
            recovery_after_failure(&scale, 3, FailureKind::Links { count: 1 }, &mut sink);
        assert_eq!(recovery[0].measurement.len(), 1, "B4 must recover");
        assert!(recovery[0].measurement.mean() > 0.0);
        assert!(sink
            .digest("B4/c=3/links(1)", &MetricKey::RECOVERY_TIME)
            .is_some());
    }

    #[test]
    fn background_flow_engine_leaves_iperf_numbers_unchanged() {
        let scale = ExperimentScale {
            runs: 1,
            networks: vec!["B4".to_string()],
            task_delay: SimDuration::from_millis(200),
            ..ExperimentScale::default()
        };
        let mut sink = MemorySink::default();
        let with_flows = throughput_under_failure(&scale, true, &mut sink);
        assert_eq!(with_flows.len(), 1);
        let fct = with_flows[0]
            .fct
            .expect("the background population must complete flows");
        assert!(fct.count > 0);
        assert!(fct.p50_s > 0.0 && fct.p50_s <= fct.p99_s);
        assert!(sink
            .digest("B4/with-recovery", &MetricKey::FCT_P50)
            .is_some());

        // The identical scenario minus the background population: the legacy iperf
        // series must be bit-for-bit what the migrated experiment reports, because
        // workloads observe the simulator without perturbing it.
        let report = experiment(&scale, "throughput", "B4", 3, scale.task_delay)
            .seeds_from(scale.seed_or(42))
            .workload(|| Box::new(IperfWorkload::farthest(30)))
            .fault_at(
                SimDuration::from_secs(10),
                FaultEvent::RemoveLink(LinkSelector::MidPath(Endpoints::FarthestSwitches)),
            )
            .run();
        let iperf = report.runs[0].workload("iperf").expect("iperf report");
        let legacy = IperfWorkload::run_from_report(iperf).expect("typed run");
        assert_eq!(legacy.throughput_mbps, with_flows[0].run.throughput_mbps);
        assert_eq!(
            legacy.retransmission_pct,
            with_flows[0].run.retransmission_pct
        );
        assert_eq!(legacy.bad_tcp_pct, with_flows[0].run.bad_tcp_pct);
        assert_eq!(legacy.path_hops, with_flows[0].run.path_hops);
    }

    #[test]
    fn smoke_overhead_and_ablation_on_b4() {
        let scale = ExperimentScale {
            runs: 1,
            networks: vec!["B4".to_string()],
            task_delay: SimDuration::from_millis(200),
            ..ExperimentScale::default()
        };
        let mut sink = MemorySink::default();
        let overhead = communication_overhead(&scale, 3, &mut sink);
        assert_eq!(overhead.len(), 1);
        assert!(overhead[0].messages_per_node_per_iteration.mean() > 0.0);
        let ablation = variant_ablation(&scale, &mut sink);
        assert_eq!(ablation.len(), 2);
        // The memory-adaptive main algorithm recovers from arbitrary corruption
        // (Theorem 2). The non-adaptive variant never deletes other controllers'
        // state, so with bogus-controller garbage installed it may legitimately
        // never return to a legitimate state — no assertion on its recovery.
        let adaptive = &ablation[0];
        assert!(adaptive.memory_adaptive);
        assert_eq!(
            adaptive.transient_recovery.len(),
            1,
            "adaptive variant must recover"
        );
        assert!(adaptive.total_rules_after.mean() > 0.0);
    }
}
