//! The recorder pipeline every experiment binary emits its results through.
//!
//! A [`MetricPipeline`] always contains an in-memory digest sink (the data behind the
//! printed tables) and, when the shared `--out`/`--format` flags are given, a
//! streaming file sink (JSON-lines or CSV) receiving every individual sample as it is
//! produced — so machine-readable artifacts of arbitrarily long campaigns never
//! require buffering the sample stream.

use crate::cli::CliArgs;
use sdn_metrics::{CsvSink, JsonLinesSink, MemorySink, MetricKey, Recorder};
use std::fs::File;
use std::io::BufWriter;

/// The file format of a streaming metrics sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputFormat {
    /// One JSON object per observation, one per line.
    JsonLines,
    /// RFC 4180 CSV with a header row.
    Csv,
}

impl OutputFormat {
    /// Parses the `--format` value (`json` or `csv`), exiting with an error on
    /// anything else — consistent with the CLI's fail-loud convention.
    pub fn from_args(args: &CliArgs) -> OutputFormat {
        match args.value("--format") {
            None | Some("json") | Some("jsonl") => OutputFormat::JsonLines,
            Some("csv") => OutputFormat::Csv,
            Some(other) => {
                eprintln!("error: invalid value '{other}' for --format (expected json or csv)");
                std::process::exit(2);
            }
        }
    }
}

/// An in-memory digest store plus an optional streaming file sink, driven by the
/// shared `--out PATH` / `--format json|csv` flags.
pub struct MetricPipeline {
    memory: MemorySink,
    file: Option<(Box<dyn Recorder>, String)>,
}

impl MetricPipeline {
    /// A pipeline honouring the parsed `--out`/`--format` flags. Without `--out`, the
    /// pipeline only aggregates in memory.
    pub fn from_args(args: &CliArgs) -> MetricPipeline {
        let format = OutputFormat::from_args(args);
        let file = args.value("--out").map(|path| {
            let writer = BufWriter::new(File::create(path).unwrap_or_else(|e| {
                eprintln!("error: cannot create {path}: {e}");
                std::process::exit(2);
            }));
            let sink: Box<dyn Recorder> = match format {
                OutputFormat::JsonLines => Box::new(JsonLinesSink::new(writer)),
                OutputFormat::Csv => Box::new(CsvSink::new(writer)),
            };
            (sink, path.to_string())
        });
        MetricPipeline {
            memory: MemorySink::default(),
            file,
        }
    }

    /// A memory-only pipeline (used by tests and by binaries with their own artifact
    /// format).
    pub fn in_memory() -> MetricPipeline {
        MetricPipeline {
            memory: MemorySink::default(),
            file: None,
        }
    }

    /// The digests aggregated so far.
    pub fn memory(&self) -> &MemorySink {
        &self.memory
    }

    /// Flushes the file sink (if any) and reports where the records went.
    pub fn finish(mut self) {
        if let Some((mut sink, path)) = self.file.take() {
            if let Err(e) = sink.flush() {
                eprintln!("error: flushing {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("metric records written to {path}");
        }
    }
}

impl Recorder for MetricPipeline {
    fn record(&mut self, scope: &str, key: &MetricKey, value: f64) {
        self.memory.record(scope, key, value);
        if let Some((sink, _)) = &mut self.file {
            sink.record(scope, key, value);
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if let Some((sink, _)) = &mut self.file {
            sink.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_only_pipeline_aggregates() {
        let mut pipeline = MetricPipeline::in_memory();
        pipeline.record("B4", &MetricKey::BOOTSTRAP_TIME, 2.0);
        pipeline.record("B4", &MetricKey::BOOTSTRAP_TIME, 4.0);
        assert_eq!(
            pipeline
                .memory()
                .digest("B4", &MetricKey::BOOTSTRAP_TIME)
                .unwrap()
                .mean(),
            3.0
        );
        pipeline.finish();
    }

    #[test]
    fn file_sink_streams_records() {
        let path = std::env::temp_dir().join("renaissance_pipeline_test.jsonl");
        let path_str = path.to_str().unwrap();
        let mut pipeline = MetricPipeline {
            memory: MemorySink::default(),
            file: Some((
                Box::new(JsonLinesSink::new(BufWriter::new(
                    File::create(&path).unwrap(),
                ))),
                path_str.to_string(),
            )),
        };
        pipeline.record("B4", &MetricKey::RECOVERY_TIME, 1.5);
        pipeline.finish();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            content,
            "{\"scope\":\"B4\",\"metric\":\"scenario/recovery_s\",\"unit\":\"s\",\"value\":1.5}\n"
        );
        let _ = std::fs::remove_file(&path);
    }
}
