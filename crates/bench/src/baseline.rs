//! Baseline regression gating for the scale campaign.
//!
//! The campaign's JSON artifact (`BENCH_scale.json`) is the repository's performance
//! trajectory; this module compares a freshly produced artifact against a committed
//! baseline and decides whether the change regressed. Gating uses the *simulated*
//! quantities (`bootstrap_s`, `recovery_s`, `messages_sent`) — deterministic for equal
//! seeds, so the gate cannot flake on CI-runner noise the way wall-clock comparisons
//! would. Wall clock is reported in the delta for context but never gated.

use crate::report::Json;

/// The per-cell metrics the gate compares, all lower-is-better. Each entry is the key
/// of a `Json::samples` object in a campaign result cell; its `mean` member is
/// compared. Every cell must carry all of them — a missing member is schema drift
/// and fails the gate loudly.
pub const GATED_METRICS: &[&str] = &["bootstrap_s", "recovery_s", "messages_sent"];

/// Scenario-specific gated metrics, lower-is-better, compared only when present in
/// both the current and the baseline cell (only the gray-failure cells carry them).
pub const OPTIONAL_GATED_METRICS: &[&str] = &["partition_messages"];

/// Scenario-specific gated metrics that are *higher*-is-better (a drop past the
/// threshold regresses). Compared only when present in both cells.
pub const OPTIONAL_GATED_HIGHER: &[&str] = &["flap_survival"];

/// Per-cell metrics compared in the delta report but never gated: host-dependent
/// wall-clock quantities whose drift is interesting context (is the simulator getting
/// faster?) but would make the gate flake on runner noise, plus the flow-engine
/// telemetry of the under-load cells. Schema-tolerant — cells missing one of these
/// are simply not compared on it, so old baselines without `events_per_sec` (or
/// without the under-load cells entirely) still gate cleanly.
pub const CONTEXT_METRICS: &[&str] = &[
    "wall_clock_ms",
    "events_per_sec",
    "fct_p50_s",
    "fct_p99_s",
    "achieved_mbps",
    "flows_per_sec",
];

/// The change of one gated metric in one campaign cell.
#[derive(Clone, Debug, PartialEq)]
pub struct GateEntry {
    /// The topology spec of the cell (e.g. `"fat_tree(4)"`).
    pub spec: String,
    /// The fault scenario of the cell (e.g. `"bootstrap"`).
    pub scenario: String,
    /// Which metric this entry compares (`"bootstrap_s"`, ...).
    pub metric: &'static str,
    /// The baseline mean.
    pub baseline: f64,
    /// The current mean.
    pub current: f64,
    /// Relative change in percent, oriented so positive = got worse regardless of
    /// the metric's polarity. Infinite when the baseline mean is zero and the
    /// current one moved in the worse direction.
    pub change_pct: f64,
}

impl GateEntry {
    /// Whether this entry trips the gate.
    pub fn regressed(&self, gate_pct: f64) -> bool {
        self.change_pct > gate_pct
    }
}

/// The full comparison of a campaign artifact against a baseline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GateReport {
    /// The gate threshold, in percent.
    pub gate_pct: f64,
    /// One entry per `(cell, gated metric)` present in both artifacts.
    pub entries: Vec<GateEntry>,
    /// One entry per `(cell, context metric)` present in both artifacts — reported
    /// for throughput trend visibility, never counted as a regression. For these,
    /// `change_pct` is the raw relative change (sign uninterpreted).
    pub context: Vec<GateEntry>,
    /// Cells present in only one of the two artifacts (`"spec/scenario"`), compared
    /// with nothing and reported so a silently shrinking sweep is visible.
    pub unmatched: Vec<String>,
}

impl GateReport {
    /// The entries that regressed past the gate.
    pub fn regressions(&self) -> Vec<&GateEntry> {
        self.entries
            .iter()
            .filter(|e| e.regressed(self.gate_pct))
            .collect()
    }

    /// Renders the delta report as a JSON document (the CI artifact).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("report", Json::str("scale_campaign_delta")),
            ("gate_pct", Json::num(self.gate_pct)),
            ("regressions", Json::num(self.regressions().len() as f64)),
            (
                "entries",
                Json::arr(self.entries.iter().map(|e| {
                    Json::obj([
                        ("spec", Json::str(e.spec.clone())),
                        ("scenario", Json::str(e.scenario.clone())),
                        ("metric", Json::str(e.metric)),
                        ("baseline_mean", Json::num(e.baseline)),
                        ("current_mean", Json::num(e.current)),
                        ("change_pct", Json::num(e.change_pct)),
                        ("regressed", Json::Bool(e.regressed(self.gate_pct))),
                    ])
                })),
            ),
            (
                "context",
                Json::arr(self.context.iter().map(|e| {
                    Json::obj([
                        ("spec", Json::str(e.spec.clone())),
                        ("scenario", Json::str(e.scenario.clone())),
                        ("metric", Json::str(e.metric)),
                        ("baseline", Json::num(e.baseline)),
                        ("current", Json::num(e.current)),
                        ("change_pct", Json::num(e.change_pct)),
                    ])
                })),
            ),
            (
                "unmatched_cells",
                Json::arr(self.unmatched.iter().map(Json::str)),
            ),
        ])
    }
}

/// The identity and gated means of one campaign cell.
fn cell_metrics(result: &Json) -> Option<(String, Vec<(&'static str, f64)>)> {
    let spec = result.get("spec")?.as_str()?;
    let scenario = result.get("scenario")?.as_str()?;
    let mut means = Vec::new();
    for &metric in GATED_METRICS {
        let mean = result.get(metric)?.get("mean")?.as_f64()?;
        means.push((metric, mean));
    }
    Some((format!("{spec}/{scenario}"), means))
}

/// Compares a current campaign artifact against a baseline artifact, producing the
/// per-cell deltas of the gated metrics.
///
/// Cells are matched by `(spec, scenario)`; cells present in only one artifact are
/// listed in [`GateReport::unmatched`] rather than compared. Fails loudly — rather
/// than comparing nothing and reporting success — when either document is not a
/// `scale_campaign` artifact, when any result cell lacks the gated stats members
/// (schema drift would otherwise silently disable the gate), or when no cell of the
/// current artifact matched the baseline at all.
pub fn gate_campaign(current: &Json, baseline: &Json, gate_pct: f64) -> Result<GateReport, String> {
    for (label, doc) in [("current", current), ("baseline", baseline)] {
        let name = doc
            .get("benchmark")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{label} artifact has no \"benchmark\" field"))?;
        if name != "scale_campaign" {
            return Err(format!(
                "{label} artifact is a '{name}' benchmark, expected 'scale_campaign'"
            ));
        }
    }
    let results = |doc: &Json, label: &str| -> Result<Vec<Json>, String> {
        doc.get("results")
            .and_then(Json::as_array)
            .map(<[Json]>::to_vec)
            .ok_or_else(|| format!("{label} artifact has no \"results\" array"))
    };
    let current_cells = results(current, "current")?;
    let baseline_cells = results(baseline, "baseline")?;

    let mut baseline_by_cell: Vec<(String, Vec<(&'static str, f64)>)> = Vec::new();
    for (i, cell) in baseline_cells.iter().enumerate() {
        baseline_by_cell.push(cell_metrics(cell).ok_or_else(|| {
            format!("baseline result cell #{i} is missing gated stats members (schema drift?)")
        })?);
    }

    // A context metric can be a plain number on the cell or a samples object; either
    // shape (or its absence) is tolerated.
    let context_value = |cell: &Json, metric: &str| -> Option<f64> {
        let v = cell.get(metric)?;
        v.as_f64().or_else(|| v.get("mean")?.as_f64())
    };

    let mut report = GateReport {
        gate_pct,
        entries: Vec::new(),
        context: Vec::new(),
        unmatched: Vec::new(),
    };
    let mut matched_baselines = vec![false; baseline_by_cell.len()];
    for (i, result) in current_cells.iter().enumerate() {
        let (cell, current_means) = cell_metrics(result).ok_or_else(|| {
            format!("current result cell #{i} is missing gated stats members (schema drift?)")
        })?;
        let Some(index) = baseline_by_cell.iter().position(|(c, _)| c == &cell) else {
            report.unmatched.push(format!("{cell} (current only)"));
            continue;
        };
        matched_baselines[index] = true;
        let (spec, scenario) = cell
            .split_once('/')
            .ok_or_else(|| format!("malformed cell id `{cell}` (expected `spec/scenario`)"))?;
        for ((metric, current), &(_, base)) in
            current_means.into_iter().zip(&baseline_by_cell[index].1)
        {
            let change_pct = if base != 0.0 {
                (current - base) / base * 100.0
            } else if current == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
            report.entries.push(GateEntry {
                spec: spec.to_string(),
                scenario: scenario.to_string(),
                metric,
                baseline: base,
                current,
                change_pct,
            });
        }
        // Scenario-specific gated metrics: only the gray-failure cells carry them,
        // so each is compared when both artifacts have it and skipped otherwise.
        for (metrics, higher_is_better) in [
            (OPTIONAL_GATED_METRICS, false),
            (OPTIONAL_GATED_HIGHER, true),
        ] {
            for &metric in metrics {
                let (Some(current), Some(base)) = (
                    context_value(result, metric),
                    context_value(&baseline_cells[index], metric),
                ) else {
                    continue;
                };
                // Orient the delta so positive = regressed, whatever the polarity.
                let worse = if higher_is_better {
                    base - current
                } else {
                    current - base
                };
                let change_pct = if base != 0.0 {
                    worse / base * 100.0
                } else if worse == 0.0 {
                    0.0
                } else if worse > 0.0 {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                };
                report.entries.push(GateEntry {
                    spec: spec.to_string(),
                    scenario: scenario.to_string(),
                    metric,
                    baseline: base,
                    current,
                    change_pct,
                });
            }
        }
        for &metric in CONTEXT_METRICS {
            let (Some(current), Some(base)) = (
                context_value(result, metric),
                context_value(&baseline_cells[index], metric),
            ) else {
                continue;
            };
            let change_pct = if base != 0.0 {
                (current - base) / base * 100.0
            } else {
                0.0
            };
            report.context.push(GateEntry {
                spec: spec.to_string(),
                scenario: scenario.to_string(),
                metric,
                baseline: base,
                current,
                change_pct,
            });
        }
    }
    for (matched, (cell, _)) in matched_baselines.iter().zip(&baseline_by_cell) {
        if !matched {
            report.unmatched.push(format!("{cell} (baseline only)"));
        }
    }
    if report.entries.is_empty() && !current_cells.is_empty() {
        return Err(format!(
            "no cell of the current artifact matched the baseline ({} current, {} baseline \
             cells) — wrong baseline file?",
            current_cells.len(),
            baseline_by_cell.len()
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(cells: &[(&str, &str, f64, f64, f64)]) -> Json {
        Json::obj([
            ("benchmark", Json::str("scale_campaign")),
            (
                "results",
                Json::arr(cells.iter().map(|(spec, scenario, boot, recov, msgs)| {
                    Json::obj([
                        ("spec", Json::str(*spec)),
                        ("scenario", Json::str(*scenario)),
                        ("bootstrap_s", Json::obj([("mean", Json::num(*boot))])),
                        ("recovery_s", Json::obj([("mean", Json::num(*recov))])),
                        ("messages_sent", Json::obj([("mean", Json::num(*msgs))])),
                    ])
                })),
            ),
        ])
    }

    /// An artifact whose single cell also carries the gray-failure metrics.
    fn gray_artifact(survival: f64, partition_msgs: f64) -> Json {
        Json::obj([
            ("benchmark", Json::str("scale_campaign")),
            (
                "results",
                Json::arr([Json::obj([
                    ("spec", Json::str("fat_tree(4)")),
                    ("scenario", Json::str("partition_heal")),
                    ("bootstrap_s", Json::obj([("mean", Json::num(1.0))])),
                    ("recovery_s", Json::obj([("mean", Json::num(0.5))])),
                    ("messages_sent", Json::obj([("mean", Json::num(1000.0))])),
                    ("flap_survival", Json::obj([("mean", Json::num(survival))])),
                    (
                        "partition_messages",
                        Json::obj([("mean", Json::num(partition_msgs))]),
                    ),
                ])]),
            ),
        ])
    }

    #[test]
    fn optional_gray_metrics_are_gated_with_polarity() {
        let baseline = gray_artifact(1.0, 200.0);
        // Survival dropped (higher-is-better) and partition traffic doubled
        // (lower-is-better): both must read as positive regressions.
        let current = gray_artifact(0.5, 400.0);
        let report = gate_campaign(&current, &baseline, 25.0).unwrap();
        let regressions = report.regressions();
        let metrics: Vec<&str> = regressions.iter().map(|r| r.metric).collect();
        assert!(metrics.contains(&"flap_survival"));
        assert!(metrics.contains(&"partition_messages"));
        let survival = regressions
            .iter()
            .find(|r| r.metric == "flap_survival")
            .unwrap();
        assert!((survival.change_pct - 50.0).abs() < 1e-9);
        // The opposite direction is an improvement and never trips.
        assert!(gate_campaign(&baseline, &current, 25.0)
            .unwrap()
            .regressions()
            .is_empty());
        // A baseline without the optional members still gates cleanly.
        let plain = artifact(&[("fat_tree(4)", "partition_heal", 1.0, 0.5, 1000.0)]);
        let report = gate_campaign(&current, &plain, 25.0).unwrap();
        assert!(report.entries.iter().all(|e| e.metric != "flap_survival"));
    }

    #[test]
    fn identical_artifacts_pass() {
        let doc = artifact(&[("fat_tree(4)", "bootstrap", 10.0, 0.0, 1000.0)]);
        let report = gate_campaign(&doc, &doc, 25.0).unwrap();
        assert_eq!(report.entries.len(), 3);
        assert!(report.regressions().is_empty());
        assert!(report.unmatched.is_empty());
        assert!(report.entries.iter().all(|e| e.change_pct == 0.0));
    }

    #[test]
    fn synthetic_regression_trips_the_gate() {
        let baseline = artifact(&[
            ("fat_tree(4)", "bootstrap", 10.0, 0.0, 1000.0),
            ("grid(4, 5)", "controller_failure", 10.0, 5.0, 2000.0),
        ]);
        // Bootstrap 50% slower on one cell, messages doubled on the other.
        let current = artifact(&[
            ("fat_tree(4)", "bootstrap", 15.0, 0.0, 1000.0),
            ("grid(4, 5)", "controller_failure", 10.0, 5.0, 4000.0),
        ]);
        let report = gate_campaign(&current, &baseline, 25.0).unwrap();
        let regressions = report.regressions();
        assert_eq!(regressions.len(), 2);
        assert_eq!(regressions[0].metric, "bootstrap_s");
        assert_eq!(regressions[0].spec, "fat_tree(4)");
        assert!((regressions[0].change_pct - 50.0).abs() < 1e-9);
        assert_eq!(regressions[1].metric, "messages_sent");
        // A 150% gate tolerates both.
        assert!(gate_campaign(&current, &baseline, 150.0)
            .unwrap()
            .regressions()
            .is_empty());
        // Improvements never trip the gate.
        assert!(gate_campaign(&baseline, &current, 25.0)
            .unwrap()
            .regressions()
            .is_empty());
    }

    #[test]
    fn context_metrics_are_reported_not_gated() {
        let with_context = |eps: f64| {
            Json::obj([
                ("benchmark", Json::str("scale_campaign")),
                (
                    "results",
                    Json::arr([Json::obj([
                        ("spec", Json::str("a")),
                        ("scenario", Json::str("bootstrap")),
                        ("bootstrap_s", Json::obj([("mean", Json::num(1.0))])),
                        ("recovery_s", Json::obj([("mean", Json::num(0.0))])),
                        ("messages_sent", Json::obj([("mean", Json::num(1.0))])),
                        ("wall_clock_ms", Json::num(100.0)),
                        ("events_per_sec", Json::num(eps)),
                    ])]),
                ),
            ])
        };
        // Throughput halved: reported in `context`, but no regression is flagged.
        let report = gate_campaign(&with_context(500.0), &with_context(1000.0), 25.0).unwrap();
        assert!(report.regressions().is_empty());
        let eps = report
            .context
            .iter()
            .find(|e| e.metric == "events_per_sec")
            .expect("events_per_sec context entry");
        assert!((eps.change_pct + 50.0).abs() < 1e-9);
        assert!(report.context.iter().any(|e| e.metric == "wall_clock_ms"));
        let json = report.to_json().to_string();
        assert!(json.contains("\"context\":["));
        // A baseline without the context keys (pre-throughput schema) still gates.
        let old = artifact(&[("a", "bootstrap", 1.0, 0.0, 1.0)]);
        let report = gate_campaign(&with_context(500.0), &old, 25.0).unwrap();
        assert!(report.context.is_empty());
        assert_eq!(report.entries.len(), 3);
    }

    #[test]
    fn zero_baseline_growth_is_infinite_regression() {
        let baseline = artifact(&[("g", "bootstrap", 10.0, 0.0, 100.0)]);
        let current = artifact(&[("g", "bootstrap", 10.0, 3.0, 100.0)]);
        let report = gate_campaign(&current, &baseline, 1000.0).unwrap();
        let regressions = report.regressions();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].metric, "recovery_s");
        assert!(regressions[0].change_pct.is_infinite());
    }

    #[test]
    fn unmatched_cells_are_reported_not_compared() {
        let baseline = artifact(&[
            ("a", "bootstrap", 1.0, 0.0, 1.0),
            ("gone", "bootstrap", 1.0, 0.0, 1.0),
        ]);
        let current = artifact(&[
            ("a", "bootstrap", 1.0, 0.0, 1.0),
            ("new", "bootstrap", 99.0, 0.0, 99.0),
        ]);
        let report = gate_campaign(&current, &baseline, 25.0).unwrap();
        assert!(report.regressions().is_empty());
        assert_eq!(
            report.unmatched,
            vec![
                "new/bootstrap (current only)",
                "gone/bootstrap (baseline only)"
            ]
        );
        let json = report.to_json().to_string();
        assert!(json.contains("\"unmatched_cells\":[\"new/bootstrap (current only)\""));
    }

    #[test]
    fn schema_drift_fails_the_gate_loudly() {
        let good = artifact(&[("a", "bootstrap", 1.0, 0.0, 1.0)]);
        // A cell whose bootstrap_s object lost its "mean" member.
        let drifted = Json::obj([
            ("benchmark", Json::str("scale_campaign")),
            (
                "results",
                Json::arr([Json::obj([
                    ("spec", Json::str("a")),
                    ("scenario", Json::str("bootstrap")),
                    ("bootstrap_s", Json::obj([("median", Json::num(1.0))])),
                    ("recovery_s", Json::obj([("mean", Json::num(0.0))])),
                    ("messages_sent", Json::obj([("mean", Json::num(1.0))])),
                ])]),
            ),
        ]);
        let err = gate_campaign(&drifted, &good, 25.0).unwrap_err();
        assert!(err.contains("schema drift"), "{err}");
        let err = gate_campaign(&good, &drifted, 25.0).unwrap_err();
        assert!(err.contains("schema drift"), "{err}");
        // Disjoint sweeps compare nothing: also a loud failure, not a green gate.
        let disjoint = artifact(&[("b", "bootstrap", 1.0, 0.0, 1.0)]);
        let err = gate_campaign(&good, &disjoint, 25.0).unwrap_err();
        assert!(err.contains("no cell"), "{err}");
    }

    #[test]
    fn non_campaign_artifacts_are_rejected() {
        let doc = artifact(&[]);
        let other = Json::obj([("benchmark", Json::str("other"))]);
        assert!(gate_campaign(&doc, &other, 10.0).is_err());
        assert!(gate_campaign(&other, &doc, 10.0).is_err());
        assert!(gate_campaign(&doc, &Json::Null, 10.0).is_err());
    }
}
