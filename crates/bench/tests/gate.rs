//! End-to-end test of the scale campaign's baseline regression gate: the binary must
//! exit zero when the fresh artifact matches the baseline and nonzero when a gated
//! metric regressed past `--gate`.
//!
//! The campaign's gated metrics are simulated quantities, deterministic for equal
//! seeds, so "no regression against an artifact produced by the same command" is an
//! exact statement, not a tolerance.

use renaissance_bench::report::Json;
use std::path::PathBuf;
use std::process::Command;

/// A scratch path that does not collide across parallel test runs.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("renaissance_gate_{}_{name}", std::process::id()))
}

/// Runs the scale campaign on one tiny network and returns (exit code, stdout).
fn run_campaign(extra: &[&str]) -> (i32, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_scale_campaign"))
        .args([
            "--smoke",
            "--networks",
            "grid(3, 3)",
            "--seed",
            "77",
            "--runs",
            "1",
        ])
        .args(extra)
        .output()
        .expect("spawn scale_campaign");
    (
        output.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&output.stdout).into_owned(),
    )
}

#[test]
fn campaign_gate_passes_on_identical_baseline_and_fails_on_regression() {
    let baseline = scratch("baseline.json");
    let current = scratch("current.json");
    let doctored = scratch("doctored.json");
    let baseline_str = baseline.to_str().unwrap().to_string();

    // 1. Produce a baseline artifact.
    let (code, _) = run_campaign(&["--out", &baseline_str]);
    assert_eq!(code, 0, "baseline campaign run failed");

    // 2. The same command gated against its own artifact is clean: simulated metrics
    //    are deterministic for equal seeds.
    let (code, stdout) = run_campaign(&[
        "--out",
        current.to_str().unwrap(),
        "--baseline",
        &baseline_str,
        "--gate",
        "5",
    ]);
    assert_eq!(code, 0, "identical rerun tripped the gate:\n{stdout}");
    assert!(
        stdout.contains("OK — no gated metric regressed"),
        "{stdout}"
    );
    let delta = scratch("current.delta.json");
    assert!(delta.exists(), "delta report missing");

    // 3. Doctor the baseline so the current run looks 10x slower to bootstrap, then
    //    verify the synthetic regression makes the campaign exit nonzero.
    let text = std::fs::read_to_string(&baseline).expect("read baseline");
    let mut doc = Json::parse(&text).expect("parse baseline");
    shrink_bootstrap_means(&mut doc, 10.0);
    std::fs::write(&doctored, format!("{doc}\n")).expect("write doctored baseline");
    let (code, stdout) = run_campaign(&[
        "--out",
        current.to_str().unwrap(),
        "--baseline",
        doctored.to_str().unwrap(),
        "--gate",
        "25",
    ]);
    assert_eq!(code, 1, "synthetic regression must exit nonzero:\n{stdout}");
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    assert!(stdout.contains("bootstrap_s"), "{stdout}");

    for path in [&baseline, &current, &doctored, &delta] {
        let _ = std::fs::remove_file(path);
    }
}

/// Divides every result cell's `bootstrap_s.mean` by `factor`, making a re-run of the
/// same command appear `factor`x slower than this baseline.
fn shrink_bootstrap_means(doc: &mut Json, factor: f64) {
    let Json::Obj(members) = doc else {
        panic!("artifact is not an object")
    };
    let results = members
        .iter_mut()
        .find(|(k, _)| k == "results")
        .map(|(_, v)| v)
        .expect("results array");
    let Json::Arr(cells) = results else {
        panic!("results is not an array")
    };
    let mut shrunk = 0;
    for cell in cells {
        let Json::Obj(cell_members) = cell else {
            continue;
        };
        let Some((_, bootstrap)) = cell_members.iter_mut().find(|(k, _)| k == "bootstrap_s") else {
            continue;
        };
        let Json::Obj(stats) = bootstrap else {
            continue;
        };
        if let Some((_, Json::Num(mean))) = stats.iter_mut().find(|(k, _)| k == "mean") {
            *mean /= factor;
            shrunk += 1;
        }
    }
    assert!(shrunk > 0, "no bootstrap_s.mean members found to doctor");
}
