//! Self-stabilizing data-link / end-to-end channel protocol.
//!
//! Renaissance assumes (paper, Section 3.1) reliable, FIFO, exactly-once communication
//! channels built over unreliable media that may *omit*, *duplicate*, and *reorder*
//! packets, citing the self-stabilizing end-to-end protocols of Dolev et al. \[9, 10\].
//! This crate implements that building block: a token-based stop-and-wait protocol with
//! bounded labels.
//!
//! # Protocol
//!
//! The sender transmits the current message together with a label from the bounded
//! domain `0..LABEL_DOMAIN`; it keeps retransmitting (on every tick) until an
//! acknowledgment carrying the same label arrives, then advances the label and moves to
//! the next queued message. The receiver delivers a data frame exactly when its label
//! differs from the last delivered label, and always acknowledges the label it saw.
//!
//! With `LABEL_DOMAIN = 3` (one more than the standard alternating bit), an arbitrary
//! initial state — corrupted sender/receiver labels and up to one stale frame per
//! direction in flight — causes at most [`DELTA_COMM`] spurious deliveries or false
//! acknowledgments before the channel behaves like a reliable FIFO channel, which is
//! exactly the `Delta_comm` constant the paper's analysis uses.
//!
//! The protocol is transport-agnostic: [`Sender`] and [`Receiver`] are pure state
//! machines producing and consuming [`Frame`]s, so they can run over the `sdn-netsim`
//! links (per hop) or over Renaissance flows (end to end).
//!
//! # Example
//!
//! ```
//! use sdn_channel::{Frame, Receiver, Sender};
//!
//! let mut tx: Sender<&'static str> = Sender::new();
//! let mut rx: Receiver<&'static str> = Receiver::new();
//! tx.push("hello");
//! tx.push("world");
//!
//! let mut delivered = Vec::new();
//! for _ in 0..10 {
//!     if let Some(frame) = tx.frame_to_send() {
//!         let (msg, ack) = rx.on_frame(frame);
//!         if let Some(m) = msg { delivered.push(m); }
//!         tx.on_ack(ack);
//!     }
//! }
//! assert_eq!(delivered, vec!["hello", "world"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;

/// Size of the bounded label domain.
pub const LABEL_DOMAIN: u8 = 3;

/// Maximum number of spurious acknowledgments / deliveries that can occur while the
/// channel recovers from an arbitrary state (the paper's `Delta_comm <= 3`).
pub const DELTA_COMM: usize = 3;

/// A frame exchanged between a [`Sender`] and a [`Receiver`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame<M> {
    /// A data frame carrying the current message and the sender's label.
    Data {
        /// The sender's current label.
        label: u8,
        /// The transported message.
        payload: M,
    },
    /// An acknowledgment for the given label.
    Ack {
        /// The label being acknowledged.
        label: u8,
    },
}

impl<M> Frame<M> {
    /// The label carried by this frame.
    pub fn label(&self) -> u8 {
        match self {
            Frame::Data { label, .. } | Frame::Ack { label } => *label,
        }
    }

    /// Returns `true` for data frames.
    pub fn is_data(&self) -> bool {
        matches!(self, Frame::Data { .. })
    }
}

/// Sender half of the self-stabilizing channel.
///
/// The sender owns a FIFO queue of outgoing messages. At any point in time at most one
/// message (the *token*) is in flight; [`Sender::frame_to_send`] returns the frame to
/// (re)transmit and should be called on every timer tick — retransmission is what makes
/// the protocol tolerate omissions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sender<M> {
    label: u8,
    queue: VecDeque<M>,
    acked: u64,
    transmissions: u64,
}

impl<M: Clone> Default for Sender<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Clone> Sender<M> {
    /// Creates an idle sender.
    pub fn new() -> Self {
        Sender {
            label: 0,
            queue: VecDeque::new(),
            acked: 0,
            transmissions: 0,
        }
    }

    /// Enqueues a message for reliable delivery.
    pub fn push(&mut self, msg: M) {
        self.queue.push_back(msg);
    }

    /// Number of messages waiting (including the one currently in flight).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of messages that completed their round trip.
    pub fn delivered(&self) -> u64 {
        self.acked
    }

    /// Number of data-frame transmissions performed (retransmissions included).
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// The sender's current label (exposed for tests and corruption injection).
    pub fn label(&self) -> u8 {
        self.label
    }

    /// The data frame to transmit now, or `None` when the queue is empty.
    ///
    /// Call this on every retransmission tick; the same frame is returned until the
    /// matching acknowledgment arrives.
    pub fn frame_to_send(&mut self) -> Option<Frame<M>> {
        let payload = self.queue.front()?.clone();
        self.transmissions += 1;
        Some(Frame::Data {
            label: self.label,
            payload,
        })
    }

    /// Processes an incoming acknowledgment frame.
    ///
    /// Data frames arriving at the sender (possible in an arbitrary initial state) are
    /// ignored. Returns `true` when the acknowledgment completed the current message.
    pub fn on_ack(&mut self, frame: Frame<M>) -> bool {
        let Frame::Ack { label } = frame else {
            return false;
        };
        if label == self.label && !self.queue.is_empty() {
            self.queue.pop_front();
            self.label = (self.label + 1) % LABEL_DOMAIN;
            self.acked += 1;
            true
        } else {
            false
        }
    }

    /// Simulates a transient fault by overwriting the label (test helper).
    pub fn corrupt_label(&mut self, label: u8) {
        self.label = label % LABEL_DOMAIN;
    }
}

/// Receiver half of the self-stabilizing channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Receiver<M> {
    last_label: u8,
    delivered: u64,
    _marker: std::marker::PhantomData<M>,
}

impl<M> Default for Receiver<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Receiver<M> {
    /// Creates a receiver that has not delivered anything yet.
    pub fn new() -> Self {
        Receiver {
            // Start "expecting" label 0 by remembering a label that is not 0.
            last_label: LABEL_DOMAIN - 1,
            delivered: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of messages delivered to the application.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The last delivered label (exposed for tests and corruption injection).
    pub fn last_label(&self) -> u8 {
        self.last_label
    }

    /// Processes an incoming frame.
    ///
    /// Returns the delivered message (if the frame was a *new* data frame) and the
    /// acknowledgment frame to send back. Duplicate data frames produce no delivery but
    /// are still acknowledged, which is what lets the sender make progress when the
    /// previous acknowledgment was lost.
    pub fn on_frame(&mut self, frame: Frame<M>) -> (Option<M>, Frame<M>) {
        match frame {
            Frame::Data { label, payload } => {
                let ack = Frame::Ack { label };
                if label != self.last_label {
                    self.last_label = label;
                    self.delivered += 1;
                    (Some(payload), ack)
                } else {
                    (None, ack)
                }
            }
            // Stray acknowledgments (arbitrary initial state) are acknowledged with the
            // receiver's current label so the sender can resynchronize.
            Frame::Ack { .. } => (
                None,
                Frame::Ack {
                    label: self.last_label,
                },
            ),
        }
    }

    /// Simulates a transient fault by overwriting the last delivered label (test helper).
    pub fn corrupt_label(&mut self, label: u8) {
        self.last_label = label % LABEL_DOMAIN;
    }
}

/// A bidirectional reliable mailbox built from a [`Sender`] and a [`Receiver`] in each
/// direction — the "logical FIFO communication channel" a Renaissance node keeps per
/// peer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Endpoint<M> {
    /// Outgoing half.
    pub tx: Sender<M>,
    /// Incoming half.
    pub rx: Receiver<M>,
}

impl<M: Clone> Default for Endpoint<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Clone> Endpoint<M> {
    /// Creates an idle endpoint.
    pub fn new() -> Self {
        Endpoint {
            tx: Sender::new(),
            rx: Receiver::new(),
        }
    }

    /// Enqueues an outgoing message.
    pub fn send(&mut self, msg: M) {
        self.tx.push(msg);
    }

    /// Handles an incoming frame, returning the delivered message (if any) and the
    /// frame to send back to the peer.
    pub fn handle(&mut self, frame: Frame<M>) -> (Option<M>, Option<Frame<M>>) {
        match frame {
            ack @ Frame::Ack { .. } => {
                self.tx.on_ack(ack);
                (None, None)
            }
            data @ Frame::Data { .. } => {
                let (delivered, ack) = self.rx.on_frame(data);
                (delivered, Some(ack))
            }
        }
    }

    /// The data frame this endpoint should (re)transmit now, if any.
    pub fn frame_to_send(&mut self) -> Option<Frame<M>> {
        self.tx.frame_to_send()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_rng::Rng;

    /// Simulates `ticks` rounds of the protocol over a lossy/duplicating FIFO medium and
    /// returns the messages delivered in order.
    fn run_lossy(
        tx: &mut Sender<u32>,
        rx: &mut Receiver<u32>,
        ticks: usize,
        loss: f64,
        dup: f64,
        seed: u64,
    ) -> Vec<u32> {
        let mut rng = Rng::seed_from_u64(seed);
        let mut delivered = Vec::new();
        // FIFO queues modelling the two directions of the medium.
        let mut to_rx: VecDeque<Frame<u32>> = VecDeque::new();
        let mut to_tx: VecDeque<Frame<u32>> = VecDeque::new();
        for _ in 0..ticks {
            // Sender retransmits on every tick.
            if let Some(frame) = tx.frame_to_send() {
                if !rng.gen_bool(loss) {
                    to_rx.push_back(frame.clone());
                    if rng.gen_bool(dup) {
                        to_rx.push_back(frame);
                    }
                }
            }
            // Medium delivers every queued frame (per direction) once per tick, so
            // duplicated frames cannot build an ever-growing backlog.
            while let Some(frame) = to_rx.pop_front() {
                let (msg, ack) = rx.on_frame(frame);
                if let Some(m) = msg {
                    delivered.push(m);
                }
                if !rng.gen_bool(loss) {
                    to_tx.push_back(ack);
                }
            }
            while let Some(frame) = to_tx.pop_front() {
                tx.on_ack(frame);
            }
        }
        delivered
    }

    #[test]
    fn perfect_medium_delivers_in_order_exactly_once() {
        let mut tx = Sender::new();
        let mut rx = Receiver::new();
        for i in 0..20u32 {
            tx.push(i);
        }
        let delivered = run_lossy(&mut tx, &mut rx, 200, 0.0, 0.0, 1);
        assert_eq!(delivered, (0..20).collect::<Vec<_>>());
        assert_eq!(tx.delivered(), 20);
        assert_eq!(rx.delivered(), 20);
        assert_eq!(tx.pending(), 0);
    }

    #[test]
    fn lossy_medium_still_delivers_in_order_exactly_once() {
        let mut tx = Sender::new();
        let mut rx = Receiver::new();
        for i in 0..30u32 {
            tx.push(i);
        }
        let delivered = run_lossy(&mut tx, &mut rx, 5_000, 0.3, 0.0, 42);
        assert_eq!(delivered, (0..30).collect::<Vec<_>>());
        assert!(tx.transmissions() > 30, "losses must force retransmissions");
    }

    #[test]
    fn duplicating_medium_never_double_delivers() {
        let mut tx = Sender::new();
        let mut rx = Receiver::new();
        for i in 0..30u32 {
            tx.push(i);
        }
        let delivered = run_lossy(&mut tx, &mut rx, 5_000, 0.1, 0.5, 7);
        assert_eq!(delivered, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn recovery_from_arbitrary_labels_is_bounded_by_delta_comm() {
        // Try every combination of corrupted sender/receiver labels: after at most
        // DELTA_COMM spurious events, the stream 100..120 is delivered as a suffix,
        // in order and without duplicates.
        for s_label in 0..LABEL_DOMAIN {
            for r_label in 0..LABEL_DOMAIN {
                let mut tx = Sender::new();
                let mut rx = Receiver::new();
                tx.corrupt_label(s_label);
                rx.corrupt_label(r_label);
                for i in 100..120u32 {
                    tx.push(i);
                }
                let delivered = run_lossy(&mut tx, &mut rx, 2_000, 0.0, 0.0, 3);
                // Every pushed message except possibly the very first DELTA_COMM ones
                // must be delivered exactly once and in order.
                let expected: Vec<u32> = (100..120).collect();
                let tail_of_expected = delivered
                    .iter()
                    .filter(|v| expected.contains(v))
                    .copied()
                    .collect::<Vec<_>>();
                // No duplicates among the real messages.
                let mut dedup = tail_of_expected.clone();
                dedup.dedup();
                assert_eq!(
                    dedup, tail_of_expected,
                    "duplicate delivery for labels {s_label}/{r_label}"
                );
                // In-order suffix: the delivered real messages must be increasing.
                assert!(
                    tail_of_expected.windows(2).all(|w| w[0] < w[1]),
                    "out-of-order delivery for labels {s_label}/{r_label}"
                );
                // At most DELTA_COMM of the pushed messages may be missing.
                assert!(
                    tail_of_expected.len() + DELTA_COMM >= expected.len(),
                    "too many messages lost during recovery for labels {s_label}/{r_label}"
                );
            }
        }
    }

    /// Property: from *any* corrupted sender/receiver label pair, under a randomly
    /// lossy and duplicating medium, the channel stabilizes within [`DELTA_COMM`]
    /// spurious deliveries: the pushed stream arrives in order, without duplicates,
    /// missing at most `DELTA_COMM` messages from its front.
    #[test]
    fn stabilizes_from_arbitrary_labels_under_random_media() {
        for case in 0..24u64 {
            let mut rng = Rng::seed_from_u64(0xC044A1 + case);
            let loss = rng.gen_f64() * 0.4;
            let dup = rng.gen_f64() * 0.4;
            for s_label in 0..LABEL_DOMAIN {
                for r_label in 0..LABEL_DOMAIN {
                    let mut tx = Sender::new();
                    let mut rx = Receiver::new();
                    tx.corrupt_label(s_label);
                    rx.corrupt_label(r_label);
                    for i in 100..130u32 {
                        tx.push(i);
                    }
                    let delivered = run_lossy(&mut tx, &mut rx, 8_000, loss, dup, 0x5EED + case);
                    let expected: Vec<u32> = (100..130).collect();
                    let real: Vec<u32> = delivered
                        .iter()
                        .filter(|v| expected.contains(v))
                        .copied()
                        .collect();
                    let mut dedup = real.clone();
                    dedup.dedup();
                    assert_eq!(
                        dedup, real,
                        "case {case}: duplicate delivery for labels {s_label}/{r_label}"
                    );
                    assert!(
                        real.windows(2).all(|w| w[0] < w[1]),
                        "case {case}: out-of-order delivery for labels {s_label}/{r_label}"
                    );
                    assert!(
                        real.len() + DELTA_COMM >= expected.len(),
                        "case {case}: lost {} messages for labels {s_label}/{r_label}, \
                         more than DELTA_COMM = {DELTA_COMM}",
                        expected.len() - real.len(),
                    );
                }
            }
        }
    }

    /// Property: an arbitrary initial state may also include one stale frame per
    /// direction already in flight. Those frames cause at most [`DELTA_COMM`] spurious
    /// deliveries before the channel behaves like a reliable FIFO channel.
    #[test]
    fn stale_in_flight_frames_cause_at_most_delta_comm_spurious_deliveries() {
        for case in 0..24u64 {
            let mut rng = Rng::seed_from_u64(0x57A1E + case);
            let s_label = rng.gen_range(0..LABEL_DOMAIN as u32) as u8;
            let r_label = rng.gen_range(0..LABEL_DOMAIN as u32) as u8;
            let stale_data_label = rng.gen_range(0..LABEL_DOMAIN as u32) as u8;
            let stale_ack_label = rng.gen_range(0..LABEL_DOMAIN as u32) as u8;
            let mut tx: Sender<u32> = Sender::new();
            let mut rx: Receiver<u32> = Receiver::new();
            tx.corrupt_label(s_label);
            rx.corrupt_label(r_label);
            for i in 200..220u32 {
                tx.push(i);
            }
            // The stale payload value 999 is outside the pushed stream, so every
            // delivery of it is spurious by construction.
            let mut spurious = 0usize;
            let (msg, ack) = rx.on_frame(Frame::Data {
                label: stale_data_label,
                payload: 999,
            });
            if msg.is_some() {
                spurious += 1;
            }
            tx.on_ack(ack);
            tx.on_ack(Frame::Ack {
                label: stale_ack_label,
            });
            let delivered = run_lossy(&mut tx, &mut rx, 2_000, 0.0, 0.0, 0xACE + case);
            spurious += delivered.iter().filter(|&&v| v == 999).count();
            assert!(
                spurious <= DELTA_COMM,
                "case {case}: {spurious} spurious deliveries exceed DELTA_COMM"
            );
            let real: Vec<u32> = delivered.iter().filter(|&&v| v != 999).copied().collect();
            let expected: Vec<u32> = (200..220).collect();
            assert!(
                real.len() + DELTA_COMM >= expected.len(),
                "case {case}: too many real messages lost during recovery"
            );
            assert!(
                real.windows(2).all(|w| w[0] < w[1]),
                "case {case}: out-of-order delivery after stale frames"
            );
        }
    }

    #[test]
    fn sender_ignores_stray_data_frames_and_wrong_labels() {
        let mut tx: Sender<u32> = Sender::new();
        tx.push(1);
        assert!(!tx.on_ack(Frame::Data {
            label: 0,
            payload: 9
        }));
        assert!(!tx.on_ack(Frame::Ack { label: 2 }));
        assert_eq!(tx.pending(), 1);
        assert!(tx.on_ack(Frame::Ack { label: 0 }));
        assert_eq!(tx.pending(), 0);
        // Acks with no message in flight are ignored.
        assert!(!tx.on_ack(Frame::Ack { label: 1 }));
    }

    #[test]
    fn receiver_acknowledges_duplicates_without_delivering() {
        let mut rx: Receiver<u32> = Receiver::new();
        let (first, ack1) = rx.on_frame(Frame::Data {
            label: 0,
            payload: 5,
        });
        assert_eq!(first, Some(5));
        assert_eq!(ack1, Frame::Ack { label: 0 });
        let (second, ack2) = rx.on_frame(Frame::Data {
            label: 0,
            payload: 5,
        });
        assert_eq!(second, None);
        assert_eq!(ack2, Frame::Ack { label: 0 });
        assert_eq!(rx.delivered(), 1);
        // A stray ack is answered with the receiver's current label.
        let (none, echo) = rx.on_frame(Frame::Ack { label: 2 });
        assert!(none.is_none());
        assert_eq!(echo, Frame::Ack { label: 0 });
    }

    #[test]
    fn endpoint_round_trip() {
        let mut a: Endpoint<String> = Endpoint::new();
        let mut b: Endpoint<String> = Endpoint::new();
        a.send("ping".to_string());
        let mut delivered_at_b = Vec::new();
        for _ in 0..5 {
            if let Some(frame) = a.frame_to_send() {
                let (msg, reply) = b.handle(frame);
                if let Some(m) = msg {
                    delivered_at_b.push(m);
                }
                if let Some(reply) = reply {
                    a.handle(reply);
                }
            }
        }
        assert_eq!(delivered_at_b, vec!["ping".to_string()]);
        assert_eq!(a.tx.delivered(), 1);
    }

    #[test]
    fn frame_accessors() {
        let d: Frame<u32> = Frame::Data {
            label: 2,
            payload: 1,
        };
        let a: Frame<u32> = Frame::Ack { label: 1 };
        assert!(d.is_data());
        assert!(!a.is_data());
        assert_eq!(d.label(), 2);
        assert_eq!(a.label(), 1);
    }
}
