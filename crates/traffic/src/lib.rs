//! Data-plane host traffic model for the Renaissance reproduction.
//!
//! The paper's throughput experiments (Section 6.4.3) place two hosts at maximal
//! distance, run iperf (TCP Reno) between them for 30 seconds, and fail a mid-path link
//! at second 10. The paper's testbed used real TCP over Mininet; this crate substitutes
//! a mechanistic Reno model driven by the state of the simulated data plane:
//!
//! * [`reno`] — an AIMD congestion-window model producing throughput, retransmission,
//!   BAD-TCP, and out-of-order series,
//! * [`iperf`] — the experiment driver: host placement, mid-path link failure, and the
//!   with-recovery (Figure 15) / without-recovery (Figure 16) modes,
//! * [`stats`] — series extraction and the Table 17 correlation statistic,
//! * [`engine`] — the heavy-traffic flow engine: struct-of-arrays flow batches,
//!   seeded traffic-matrix generators, bottleneck fair-share progress charged per
//!   coarse service tick, and flow-completion-time telemetry — millions of concurrent
//!   flows with no per-packet state.
//!
//! # Example
//!
//! ```
//! use renaissance::{ControllerConfig, HarnessConfig, SdnNetwork};
//! use sdn_netsim::SimDuration;
//! use sdn_topology::builders;
//! use sdn_traffic::iperf::{self, IperfConfig};
//!
//! let mut sdn = SdnNetwork::new(
//!     builders::ring(6, 2),
//!     ControllerConfig::for_network(2, 6),
//!     HarnessConfig::default().with_task_delay(SimDuration::from_millis(100)),
//! );
//! sdn.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120)).unwrap();
//! let (src, dst) = iperf::farthest_switch_pair(&sdn).unwrap();
//! let run = iperf::run_throughput_experiment(&mut sdn, src, dst, IperfConfig {
//!     duration_secs: 12,
//!     failure_at_secs: 5,
//!     ..IperfConfig::default()
//! });
//! assert_eq!(run.throughput_mbps.len(), 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod iperf;
pub mod reno;
pub mod stats;

pub use engine::{
    generate, Arrival, EngineConfig, FanOut, FctCollector, FctSummary, FlowBatch, FlowEngine,
    FlowEngineWorkload, FlowId, FlowMix, FlowSetConfig, FlowSpec, TrafficMatrix,
};
pub use iperf::{
    farthest_switch_pair, run_throughput_experiment, IperfConfig, IperfRun, IperfWorkload,
};
pub use reno::{PathEvent, RenoConfig, RenoConnection};
pub use stats::{throughput_correlation, Series};
