//! The iperf-style throughput experiment of the paper's Section 6.4.3.
//!
//! Two hosts sit at maximal distance from each other (we attach them to the two
//! farthest-apart switches); a TCP Reno flow runs between them for 30 seconds; after 10
//! seconds a link as close to the middle of the primary path as possible fails. With
//! Renaissance running ("with recovery", Figure 15) the controllers repair the
//! kappa-fault-resilient flows using tagged updates; without recovery (Figure 16) only
//! the pre-installed backup paths carry the traffic. Either way the data plane fails
//! over locally, so the throughput only dips briefly.

use crate::reno::{PathEvent, RenoConfig, RenoConnection, StepOutcome};
use renaissance::{legitimacy, SdnNetwork};
use sdn_netsim::SimDuration;
use sdn_topology::{paths, NodeId};
use serde::{Deserialize, Serialize};

/// Parameters of one throughput experiment.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IperfConfig {
    /// Total duration in seconds (the paper uses 30).
    pub duration_secs: u32,
    /// The second at which the link failure is injected (the paper uses 10).
    pub failure_at_secs: u32,
    /// Whether the controllers keep repairing flows after the failure
    /// (`true` = Figure 15, `false` = Figure 16).
    pub recovery_enabled: bool,
    /// TCP model parameters.
    pub reno: RenoConfig,
}

impl Default for IperfConfig {
    fn default() -> Self {
        IperfConfig {
            duration_secs: 30,
            failure_at_secs: 10,
            recovery_enabled: true,
            reno: RenoConfig::default(),
        }
    }
}

/// Result of one throughput experiment: per-second series, exactly the quantities the
/// paper plots in Figures 15, 16, 18, 19, and 20.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IperfRun {
    /// The two endpoints the flow ran between.
    pub endpoints: (NodeId, NodeId),
    /// The link that was failed at `failure_at_secs`.
    pub failed_link: Option<(NodeId, NodeId)>,
    /// Per-second goodput in Mbit/s.
    pub throughput_mbps: Vec<f64>,
    /// Per-second retransmission percentage.
    pub retransmission_pct: Vec<f64>,
    /// Per-second BAD-TCP percentage.
    pub bad_tcp_pct: Vec<f64>,
    /// Per-second out-of-order percentage.
    pub out_of_order_pct: Vec<f64>,
    /// Per-second hop count of the path in use (useful for debugging / the examples).
    pub path_hops: Vec<usize>,
}

impl IperfRun {
    /// Average goodput over the whole run.
    pub fn mean_throughput(&self) -> f64 {
        if self.throughput_mbps.is_empty() {
            return 0.0;
        }
        self.throughput_mbps.iter().sum::<f64>() / self.throughput_mbps.len() as f64
    }

    /// The lowest per-second goodput (the failure dip).
    pub fn min_throughput(&self) -> f64 {
        self.throughput_mbps.iter().copied().fold(f64::MAX, f64::min)
    }
}

/// Picks the two switches at maximal distance in the switch graph — where the paper
/// attaches its iperf hosts.
pub fn farthest_switch_pair(sdn: &SdnNetwork) -> Option<(NodeId, NodeId)> {
    paths::farthest_pair(&sdn.topology().switch_graph).map(|(a, b, _)| (a, b))
}

/// Runs the throughput experiment on an already-bootstrapped network.
///
/// The data packets follow the same in-band forwarding semantics as the control plane:
/// highest-priority applicable rule, local fast-failover, bounce-back. The TCP model is
/// driven by whether the path exists and whether it changed since the previous second.
pub fn run_throughput_experiment(
    sdn: &mut SdnNetwork,
    src: NodeId,
    dst: NodeId,
    config: IperfConfig,
) -> IperfRun {
    let mut reno = RenoConnection::new(config.reno);
    let mut run = IperfRun {
        endpoints: (src, dst),
        ..IperfRun::default()
    };
    let mut previous_path: Option<Vec<NodeId>> = current_path(sdn, src, dst);

    for second in 0..config.duration_secs {
        if second == config.failure_at_secs {
            run.failed_link = fail_mid_path_link(sdn, previous_path.as_deref());
        }
        if config.recovery_enabled {
            sdn.run_for(SimDuration::from_secs(1));
        }
        let path = current_path(sdn, src, dst);
        let event = match (&previous_path, &path) {
            (_, None) => PathEvent::Unavailable,
            (None, Some(_)) => PathEvent::Rerouted,
            (Some(old), Some(new)) if old != new => PathEvent::Rerouted,
            _ => PathEvent::Stable,
        };
        let hops = path.as_ref().map(|p| p.len().saturating_sub(1)).unwrap_or(0);
        let outcome: StepOutcome = reno.step(1.0, hops.max(1), event);
        run.throughput_mbps.push(outcome.throughput_mbps);
        run.retransmission_pct.push(outcome.retransmission_pct());
        run.bad_tcp_pct.push(outcome.bad_tcp_pct());
        run.out_of_order_pct.push(outcome.out_of_order_pct());
        run.path_hops.push(hops);
        previous_path = path;
    }
    run
}

/// The data-plane path currently taken by packets from `src` to `dst`, or `None`.
fn current_path(sdn: &SdnNetwork, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    let operational = sdn.sim().operational_graph();
    legitimacy::route_in_band(sdn, &operational, src, dst)
}

/// Fails the link closest to the middle of `path`, preferring links whose removal keeps
/// the topology connected (the paper chooses a link "such that it enables a backup
/// path"). Returns the failed link.
fn fail_mid_path_link(
    sdn: &mut SdnNetwork,
    path: Option<&[NodeId]>,
) -> Option<(NodeId, NodeId)> {
    let path = path?;
    if path.len() < 2 {
        return None;
    }
    let mid = path.len() / 2;
    // Try the middle link first, then walk outwards until a safe link is found.
    let mut candidates: Vec<usize> = (0..path.len() - 1).collect();
    candidates.sort_by_key(|&i| i.abs_diff(mid.saturating_sub(1)));
    for i in candidates {
        let (a, b) = (path[i], path[i + 1]);
        let mut graph = sdn.sim().topology().clone();
        graph.remove_link(a, b);
        if paths::is_connected(&graph) {
            sdn.remove_link(a, b);
            return Some((a, b));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use renaissance::{ControllerConfig, HarnessConfig};
    use sdn_topology::builders;

    fn bootstrapped_b4() -> SdnNetwork {
        let topology = builders::b4(3);
        let mut sdn = SdnNetwork::new(
            topology,
            ControllerConfig::for_network(3, 12),
            HarnessConfig::default()
                .with_task_delay(SimDuration::from_millis(200))
                .with_seed(5),
        );
        sdn.run_until_legitimate(SimDuration::from_millis(500), SimDuration::from_secs(300))
            .expect("bootstrap B4");
        sdn
    }

    #[test]
    fn throughput_experiment_shows_failure_dip_and_recovery() {
        let mut sdn = bootstrapped_b4();
        let (src, dst) = farthest_switch_pair(&sdn).expect("farthest pair");
        let config = IperfConfig {
            duration_secs: 20,
            failure_at_secs: 8,
            recovery_enabled: true,
            ..IperfConfig::default()
        };
        let run = run_throughput_experiment(&mut sdn, src, dst, config);
        assert_eq!(run.throughput_mbps.len(), 20);
        assert!(run.failed_link.is_some(), "a mid-path link must fail");
        // Steady state before the failure.
        let before = run.throughput_mbps[7];
        assert!(before > 200.0, "pre-failure throughput {before}");
        // The retransmission burst happens at / right after the failure second.
        let burst: f64 = run.retransmission_pct[8..=10.min(run.retransmission_pct.len() - 1)]
            .iter()
            .copied()
            .fold(0.0, f64::max);
        assert!(burst > 0.0, "failure must cause retransmissions");
        // The flow keeps running: the last seconds are back near the pre-failure rate.
        let after = *run.throughput_mbps.last().unwrap();
        assert!(after > before * 0.8, "after {after} vs before {before}");
        assert!(run.min_throughput() <= before);
        assert!(run.mean_throughput() > 0.0);
    }

    #[test]
    fn no_recovery_still_survives_thanks_to_backup_paths() {
        let mut sdn = bootstrapped_b4();
        let (src, dst) = farthest_switch_pair(&sdn).expect("farthest pair");
        let config = IperfConfig {
            duration_secs: 16,
            failure_at_secs: 6,
            recovery_enabled: false,
            ..IperfConfig::default()
        };
        let run = run_throughput_experiment(&mut sdn, src, dst, config);
        assert!(run.failed_link.is_some());
        let after = *run.throughput_mbps.last().unwrap();
        assert!(
            after > 100.0,
            "backup paths must keep the flow alive without controller help, got {after}"
        );
    }

    #[test]
    fn farthest_pair_spans_the_diameter() {
        let sdn = bootstrapped_b4();
        let (a, b) = farthest_switch_pair(&sdn).unwrap();
        let d = paths::distance(&sdn.topology().switch_graph, a, b).unwrap();
        assert_eq!(d, sdn.topology().expected_diameter);
    }
}
