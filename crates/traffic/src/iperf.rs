//! The iperf-style throughput experiment of the paper's Section 6.4.3.
//!
//! Two hosts sit at maximal distance from each other (we attach them to the two
//! farthest-apart switches); a TCP Reno flow runs between them for 30 seconds; after 10
//! seconds a link as close to the middle of the primary path as possible fails. With
//! Renaissance running ("with recovery", Figure 15) the controllers repair the
//! kappa-fault-resilient flows using tagged updates; without recovery (Figure 16) only
//! the pre-installed backup paths carry the traffic. Either way the data plane fails
//! over locally, so the throughput only dips briefly.
//!
//! Two entry points expose the model:
//!
//! * [`IperfWorkload`] — a [`Workload`](renaissance::scenario::Workload) for the
//!   declarative scenario API: the runner drives the ticks, the mid-path failure is a
//!   [`FaultEvent`](renaissance::scenario::FaultEvent) on the schedule, and the
//!   "without recovery" mode is the scenario's
//!   [`ControlPlane::Frozen`](renaissance::scenario::ControlPlane::Frozen),
//! * [`run_throughput_experiment`] — the self-contained escape hatch driving an
//!   [`SdnNetwork`] directly (used by this crate's tests and available to ad-hoc
//!   experiments).

use crate::reno::{PathEvent, RenoConfig, RenoConnection, StepOutcome};
use renaissance::scenario::{mid_path_link, Endpoints, Workload, WorkloadReport, WorkloadTick};
use renaissance::{legitimacy, SdnNetwork};
use sdn_netsim::SimDuration;
use sdn_topology::{paths, NodeId};

/// Parameters of one throughput experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IperfConfig {
    /// Total duration in seconds (the paper uses 30).
    pub duration_secs: u32,
    /// The second at which the link failure is injected (the paper uses 10).
    pub failure_at_secs: u32,
    /// Whether the controllers keep repairing flows after the failure
    /// (`true` = Figure 15, `false` = Figure 16).
    pub recovery_enabled: bool,
    /// TCP model parameters.
    pub reno: RenoConfig,
}

impl Default for IperfConfig {
    fn default() -> Self {
        IperfConfig {
            duration_secs: 30,
            failure_at_secs: 10,
            recovery_enabled: true,
            reno: RenoConfig::default(),
        }
    }
}

/// Result of one throughput experiment: per-second series, exactly the quantities the
/// paper plots in Figures 15, 16, 18, 19, and 20.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IperfRun {
    /// The two endpoints the flow ran between.
    pub endpoints: (NodeId, NodeId),
    /// The link that was failed at `failure_at_secs`.
    pub failed_link: Option<(NodeId, NodeId)>,
    /// Per-second goodput in Mbit/s.
    pub throughput_mbps: Vec<f64>,
    /// Per-second retransmission percentage.
    pub retransmission_pct: Vec<f64>,
    /// Per-second BAD-TCP percentage.
    pub bad_tcp_pct: Vec<f64>,
    /// Per-second out-of-order percentage.
    pub out_of_order_pct: Vec<f64>,
    /// Per-second hop count of the path in use (useful for debugging / the examples).
    pub path_hops: Vec<usize>,
}

impl IperfRun {
    /// Average goodput over the whole run.
    pub fn mean_throughput(&self) -> f64 {
        if self.throughput_mbps.is_empty() {
            return 0.0;
        }
        self.throughput_mbps.iter().sum::<f64>() / self.throughput_mbps.len() as f64
    }

    /// The lowest per-second goodput (the failure dip).
    pub fn min_throughput(&self) -> f64 {
        self.throughput_mbps
            .iter()
            .copied()
            .fold(f64::MAX, f64::min)
    }
}

/// Picks the two switches at maximal distance in the switch graph — where the paper
/// attaches its iperf hosts.
pub fn farthest_switch_pair(sdn: &SdnNetwork) -> Option<(NodeId, NodeId)> {
    paths::farthest_pair(&sdn.topology().switch_graph).map(|(a, b, _)| (a, b))
}

/// The per-tick core of the iperf experiment: observes the in-band data-plane path,
/// steps the Reno model, and accumulates the per-second series. Shared between the
/// scenario [`IperfWorkload`] and the self-driving [`run_throughput_experiment`].
#[derive(Clone, Debug)]
struct IperfFlow {
    reno: RenoConnection,
    previous_path: Option<Vec<NodeId>>,
    run: IperfRun,
}

impl IperfFlow {
    fn new(sdn: &SdnNetwork, src: NodeId, dst: NodeId, reno: RenoConfig) -> Self {
        IperfFlow {
            reno: RenoConnection::new(reno),
            previous_path: current_path(sdn, src, dst),
            run: IperfRun {
                endpoints: (src, dst),
                ..IperfRun::default()
            },
        }
    }

    /// Observes one second of the flow against the current network state.
    fn observe_second(&mut self, sdn: &SdnNetwork) {
        let (src, dst) = self.run.endpoints;
        let path = current_path(sdn, src, dst);
        let event = match (&self.previous_path, &path) {
            (_, None) => PathEvent::Unavailable,
            (None, Some(_)) => PathEvent::Rerouted,
            (Some(old), Some(new)) if old != new => PathEvent::Rerouted,
            _ => PathEvent::Stable,
        };
        let hops = path
            .as_ref()
            .map(|p| p.len().saturating_sub(1))
            .unwrap_or(0);
        let outcome: StepOutcome = self.reno.step(1.0, hops.max(1), event);
        self.run.throughput_mbps.push(outcome.throughput_mbps);
        self.run
            .retransmission_pct
            .push(outcome.retransmission_pct());
        self.run.bad_tcp_pct.push(outcome.bad_tcp_pct());
        self.run.out_of_order_pct.push(outcome.out_of_order_pct());
        self.run.path_hops.push(hops);
        self.previous_path = path;
    }
}

/// Runs the throughput experiment on an already-bootstrapped network.
///
/// The data packets follow the same in-band forwarding semantics as the control plane:
/// highest-priority applicable rule, local fast-failover, bounce-back. The TCP model is
/// driven by whether the path exists and whether it changed since the previous second.
pub fn run_throughput_experiment(
    sdn: &mut SdnNetwork,
    src: NodeId,
    dst: NodeId,
    config: IperfConfig,
) -> IperfRun {
    let mut flow = IperfFlow::new(sdn, src, dst, config.reno);
    for second in 0..config.duration_secs {
        if second == config.failure_at_secs {
            flow.run.failed_link = mid_path_link(sdn, src, dst).map(|(a, b)| {
                sdn.remove_link(a, b);
                (a, b)
            });
        }
        if config.recovery_enabled {
            sdn.run_for(SimDuration::from_secs(1));
        }
        flow.observe_second(sdn);
    }
    flow.run
}

/// The data-plane path currently taken by packets from `src` to `dst`, or `None`.
fn current_path(sdn: &SdnNetwork, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    let operational = sdn.sim().operational_graph();
    legitimacy::route_in_band(sdn, operational, src, dst)
}

/// The iperf experiment as a scenario [`Workload`].
///
/// The workload only models the TCP flow; inject the paper's mid-path link failure via
/// the scenario's fault schedule, e.g.
/// `FaultEvent::RemoveLink(LinkSelector::MidPath(Endpoints::FarthestSwitches))` at
/// second 10, and select Figure 16's "without recovery" mode with
/// [`ControlPlane::Frozen`](renaissance::scenario::ControlPlane::Frozen).
///
/// # Example
///
/// ```
/// use renaissance::scenario::{Endpoints, FaultEvent, LinkSelector, Scenario};
/// use sdn_netsim::SimDuration;
/// use sdn_traffic::iperf::IperfWorkload;
///
/// let report = Scenario::builder("throughput-under-failure")
///     .network("B4")
///     .task_delay(SimDuration::from_millis(200))
///     .workload(|| Box::new(IperfWorkload::farthest(12)))
///     .fault_at(
///         SimDuration::from_secs(5),
///         FaultEvent::RemoveLink(LinkSelector::MidPath(Endpoints::FarthestSwitches)),
///     )
///     .run();
/// let run = &report.runs[0];
/// let iperf = run.workload("iperf").expect("workload report");
/// assert_eq!(iperf.series("throughput_mbps").unwrap().len(), 12);
/// ```
#[derive(Debug)]
pub struct IperfWorkload {
    endpoints: Endpoints,
    duration_secs: u32,
    reno: RenoConfig,
    flow: Option<IperfFlow>,
}

impl IperfWorkload {
    /// A flow between the two farthest-apart switches, running for `duration_secs`.
    pub fn farthest(duration_secs: u32) -> Self {
        IperfWorkload {
            endpoints: Endpoints::FarthestSwitches,
            duration_secs,
            reno: RenoConfig::default(),
            flow: None,
        }
    }

    /// A flow between two explicit switches, running for `duration_secs`.
    pub fn between(src: NodeId, dst: NodeId, duration_secs: u32) -> Self {
        IperfWorkload {
            endpoints: Endpoints::Nodes(src, dst),
            duration_secs,
            reno: RenoConfig::default(),
            flow: None,
        }
    }

    /// Overrides the TCP model parameters.
    pub fn with_reno(mut self, reno: RenoConfig) -> Self {
        self.reno = reno;
        self
    }

    /// Reconstructs a typed [`IperfRun`] from a workload report produced by this
    /// workload (the scenario report stores series generically).
    pub fn run_from_report(report: &WorkloadReport) -> Option<IperfRun> {
        let parse = |key: &str| -> Option<NodeId> {
            report.note(key)?.parse::<u32>().ok().map(NodeId::new)
        };
        Some(IperfRun {
            endpoints: (parse("src")?, parse("dst")?),
            failed_link: None,
            throughput_mbps: report.series("throughput_mbps")?.to_vec(),
            retransmission_pct: report.series("retransmission_pct")?.to_vec(),
            bad_tcp_pct: report.series("bad_tcp_pct")?.to_vec(),
            out_of_order_pct: report.series("out_of_order_pct")?.to_vec(),
            path_hops: report
                .series("path_hops")?
                .iter()
                .map(|&h| h as usize)
                .collect(),
        })
    }
}

impl Workload for IperfWorkload {
    fn label(&self) -> String {
        "iperf".to_string()
    }

    fn duration(&self) -> SimDuration {
        SimDuration::from_secs(self.duration_secs as u64)
    }

    fn start(&mut self, net: &mut SdnNetwork) {
        let (src, dst) = self
            .endpoints
            .resolve(net)
            // stancheck: allow(unwrap-expect) — scenario configuration error: failing loudly at workload start beats silently simulating a run with no traffic
            .expect("iperf workload endpoints must resolve");
        self.flow = Some(IperfFlow::new(net, src, dst, self.reno));
    }

    fn tick(&mut self, net: &mut SdnNetwork, _tick: WorkloadTick) {
        self.flow
            .as_mut()
            // stancheck: allow(unwrap-expect) — Workload trait contract: the ScenarioRunner always calls start() before the first tick()
            .expect("tick before start")
            .observe_second(net);
    }

    fn finish(&mut self, _net: &mut SdnNetwork) -> WorkloadReport {
        // stancheck: allow(unwrap-expect) — Workload trait contract: finish() only runs after start() on the same agenda
        let flow = self.flow.take().expect("finish before start");
        let run = flow.run;
        let mut report = WorkloadReport::new(self.label());
        report.push_note("src", run.endpoints.0.index().to_string());
        report.push_note("dst", run.endpoints.1.index().to_string());
        report.push_series("throughput_mbps", run.throughput_mbps);
        report.push_series("retransmission_pct", run.retransmission_pct);
        report.push_series("bad_tcp_pct", run.bad_tcp_pct);
        report.push_series("out_of_order_pct", run.out_of_order_pct);
        report.push_series(
            "path_hops",
            run.path_hops.iter().map(|&h| h as f64).collect(),
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renaissance::scenario::{ControlPlane, FaultEvent, LinkSelector, Scenario};
    use renaissance::{ControllerConfig, HarnessConfig};
    use sdn_topology::builders;

    fn bootstrapped_b4() -> SdnNetwork {
        let topology = builders::b4(3);
        let mut sdn = SdnNetwork::new(
            topology,
            ControllerConfig::for_network(3, 12),
            HarnessConfig::default()
                .with_task_delay(SimDuration::from_millis(200))
                .with_seed(5),
        );
        sdn.run_until_legitimate(SimDuration::from_millis(500), SimDuration::from_secs(300))
            .expect("bootstrap B4");
        sdn
    }

    #[test]
    fn throughput_experiment_shows_failure_dip_and_recovery() {
        let mut sdn = bootstrapped_b4();
        let (src, dst) = farthest_switch_pair(&sdn).expect("farthest pair");
        let config = IperfConfig {
            duration_secs: 20,
            failure_at_secs: 8,
            recovery_enabled: true,
            ..IperfConfig::default()
        };
        let run = run_throughput_experiment(&mut sdn, src, dst, config);
        assert_eq!(run.throughput_mbps.len(), 20);
        assert!(run.failed_link.is_some(), "a mid-path link must fail");
        // Steady state before the failure.
        let before = run.throughput_mbps[7];
        assert!(before > 200.0, "pre-failure throughput {before}");
        // The retransmission burst happens at / right after the failure second.
        let burst: f64 = run.retransmission_pct[8..=10.min(run.retransmission_pct.len() - 1)]
            .iter()
            .copied()
            .fold(0.0, f64::max);
        assert!(burst > 0.0, "failure must cause retransmissions");
        // The flow keeps running: the last seconds are back near the pre-failure rate.
        let after = *run.throughput_mbps.last().unwrap();
        assert!(after > before * 0.8, "after {after} vs before {before}");
        assert!(run.min_throughput() <= before);
        assert!(run.mean_throughput() > 0.0);
    }

    #[test]
    fn no_recovery_still_survives_thanks_to_backup_paths() {
        let mut sdn = bootstrapped_b4();
        let (src, dst) = farthest_switch_pair(&sdn).expect("farthest pair");
        let config = IperfConfig {
            duration_secs: 16,
            failure_at_secs: 6,
            recovery_enabled: false,
            ..IperfConfig::default()
        };
        let run = run_throughput_experiment(&mut sdn, src, dst, config);
        assert!(run.failed_link.is_some());
        let after = *run.throughput_mbps.last().unwrap();
        assert!(
            after > 100.0,
            "backup paths must keep the flow alive without controller help, got {after}"
        );
    }

    #[test]
    fn farthest_pair_spans_the_diameter() {
        let sdn = bootstrapped_b4();
        let (a, b) = farthest_switch_pair(&sdn).unwrap();
        let d = paths::distance(&sdn.topology().switch_graph, a, b).unwrap();
        assert_eq!(d, sdn.topology().expected_diameter);
    }

    fn throughput_scenario(mode: ControlPlane) -> Scenario {
        Scenario::builder("throughput")
            .network("B4")
            .task_delay(SimDuration::from_millis(200))
            .seeds_from(5)
            .workload(|| Box::new(IperfWorkload::farthest(16)))
            .fault_at(
                SimDuration::from_secs(6),
                FaultEvent::RemoveLink(LinkSelector::MidPath(Endpoints::FarthestSwitches)),
            )
            .control_plane(mode)
            .build()
    }

    #[test]
    fn workload_reproduces_the_figure15_shape_through_the_scenario_api() {
        let report = throughput_scenario(ControlPlane::Live).run();
        let run = &report.runs[0];
        assert!(run
            .injected
            .iter()
            .any(|f| f.description.contains("remove link")));
        let iperf = run.workload("iperf").expect("iperf report");
        let typed = IperfWorkload::run_from_report(iperf).expect("typed run");
        assert_eq!(typed.throughput_mbps.len(), 16);
        let before = typed.throughput_mbps[5];
        let after = *typed.throughput_mbps.last().unwrap();
        assert!(before > 200.0, "pre-failure throughput {before}");
        assert!(after > before * 0.8, "after {after} vs before {before}");
        let burst = typed.retransmission_pct[6..=8]
            .iter()
            .copied()
            .fold(0.0, f64::max);
        assert!(burst > 0.0, "failure must cause retransmissions");
    }

    #[test]
    fn frozen_control_plane_reproduces_the_figure16_mode() {
        let report = throughput_scenario(ControlPlane::Frozen).run();
        let run = &report.runs[0];
        let iperf = run.workload("iperf").expect("iperf report");
        let typed = IperfWorkload::run_from_report(iperf).expect("typed run");
        // The flow survives on pre-installed backup paths alone.
        let after = *typed.throughput_mbps.last().unwrap();
        assert!(
            after > 100.0,
            "backup paths must carry the flow, got {after}"
        );
        // And the control plane really did nothing: no recovery records.
        assert!(run.recoveries.is_empty());
    }
}
