//! A simplified TCP Reno connection model.
//!
//! The paper's throughput experiments (Section 6.4.3) run iperf over TCP Reno between
//! two hosts while a link on the primary path fails. What matters for reproducing
//! Figures 15–20 is Reno's *reaction* to the failover: a burst of retransmissions and
//! out-of-order packets around the failure second, a dip in goodput caused by the
//! congestion window halving (fast recovery) or collapsing (timeout), and a quick
//! return to the pre-failure rate. This module models exactly that: an AIMD congestion
//! window advanced in discrete time steps, driven by "path available / path changed"
//! signals from the routing layer instead of per-packet simulation.

/// Configuration of a model TCP Reno connection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RenoConfig {
    /// Maximum segment size in bytes.
    pub mss_bytes: f64,
    /// Base round-trip time in milliseconds for a one-hop path; each extra hop adds
    /// [`RenoConfig::rtt_per_hop_ms`].
    pub base_rtt_ms: f64,
    /// Additional round-trip time per path hop, in milliseconds.
    pub rtt_per_hop_ms: f64,
    /// Bottleneck link capacity in megabits per second.
    pub link_capacity_mbps: f64,
    /// Fraction of the link capacity a single TCP flow can reach in steady state
    /// (protocol overheads, scheduler interference — roughly 0.5 in the paper's
    /// Mininet measurements, which hover around 500 Mbit/s on 1 Gbit/s links).
    pub achievable_utilization: f64,
}

impl Default for RenoConfig {
    fn default() -> Self {
        RenoConfig {
            mss_bytes: 1460.0,
            base_rtt_ms: 10.0,
            rtt_per_hop_ms: 2.0,
            link_capacity_mbps: 1000.0,
            achievable_utilization: 0.52,
        }
    }
}

/// What happened to the flow's path during one step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathEvent {
    /// Same path as before, everything flowing.
    Stable,
    /// The path changed (local fast-failover or a new primary installed): packets in
    /// flight on the old path are lost or reordered.
    Rerouted,
    /// No path at all: every packet in flight is lost and the retransmission timer fires.
    Unavailable,
}

/// Per-step observation of the connection.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepOutcome {
    /// Goodput achieved during this step, in megabits per second.
    pub throughput_mbps: f64,
    /// Segments sent during this step.
    pub segments_sent: u64,
    /// Segments retransmitted during this step.
    pub retransmissions: u64,
    /// Segments that arrived out of order during this step.
    pub out_of_order: u64,
    /// Segments flagged "BAD TCP" by a Wireshark-like classifier (retransmissions plus
    /// spurious/duplicate ACKs) during this step.
    pub bad_tcp: u64,
}

impl StepOutcome {
    /// Retransmitted fraction of the segments sent in this step, as a percentage.
    pub fn retransmission_pct(&self) -> f64 {
        percentage(self.retransmissions, self.segments_sent)
    }

    /// Out-of-order fraction of the segments sent in this step, as a percentage.
    pub fn out_of_order_pct(&self) -> f64 {
        percentage(self.out_of_order, self.segments_sent)
    }

    /// BAD-TCP fraction of the segments sent in this step, as a percentage.
    pub fn bad_tcp_pct(&self) -> f64 {
        percentage(self.bad_tcp, self.segments_sent)
    }
}

fn percentage(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// A model TCP Reno connection.
#[derive(Clone, Debug, PartialEq)]
pub struct RenoConnection {
    config: RenoConfig,
    /// Congestion window in segments.
    cwnd: f64,
    /// Slow-start threshold in segments.
    ssthresh: f64,
    total_segments: u64,
    total_retransmissions: u64,
}

impl RenoConnection {
    /// Creates a fresh connection in slow start.
    pub fn new(config: RenoConfig) -> Self {
        RenoConnection {
            config,
            cwnd: 10.0,
            ssthresh: f64::MAX,
            total_segments: 0,
            total_retransmissions: 0,
        }
    }

    /// The configuration of this connection.
    pub fn config(&self) -> RenoConfig {
        self.config
    }

    /// Current congestion window, in segments.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Total segments sent so far.
    pub fn total_segments(&self) -> u64 {
        self.total_segments
    }

    /// Total retransmissions so far.
    pub fn total_retransmissions(&self) -> u64 {
        self.total_retransmissions
    }

    /// Advances the connection by `step_secs` of wall-clock time over a path of
    /// `path_hops` hops that experienced `event`.
    pub fn step(&mut self, step_secs: f64, path_hops: usize, event: PathEvent) -> StepOutcome {
        let rtt_ms = self.config.base_rtt_ms + self.config.rtt_per_hop_ms * path_hops as f64;
        let rtt_s = (rtt_ms / 1000.0).max(1e-4);
        let rtts_in_step = (step_secs / rtt_s).max(1.0);
        // The window that fully utilises the achievable share of the bottleneck.
        let capacity_window =
            (self.config.link_capacity_mbps * self.config.achievable_utilization * 1_000_000.0
                / 8.0
                * rtt_s)
                / self.config.mss_bytes;

        let mut outcome = StepOutcome::default();
        let in_flight = self.cwnd.min(capacity_window);

        match event {
            PathEvent::Unavailable => {
                // Retransmission timeout: everything in flight is lost, slow start again.
                outcome.segments_sent = in_flight.round() as u64;
                outcome.retransmissions = outcome.segments_sent;
                outcome.bad_tcp = outcome.segments_sent;
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = 1.0;
                outcome.throughput_mbps = 0.0;
                self.total_segments += outcome.segments_sent;
                self.total_retransmissions += outcome.retransmissions;
                return outcome;
            }
            PathEvent::Rerouted => {
                // Fast recovery: the in-flight window is partially lost / reordered and
                // the congestion window is halved once.
                let lost = in_flight * 0.5;
                outcome.retransmissions = lost.round() as u64;
                outcome.out_of_order = (in_flight * 0.1).round() as u64;
                outcome.bad_tcp = (lost * 1.2).round() as u64;
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = self.ssthresh;
            }
            PathEvent::Stable => {}
        }

        // Window growth over the RTTs contained in this step. The window is allowed to
        // grow past the bandwidth-delay product (buffers / receive window), which is why
        // — exactly as in the paper's measurements — a single fast-recovery halving
        // barely dents the achieved rate: the halved window still fills the pipe.
        let window_cap = capacity_window * 2.5;
        let mut sent = 0.0;
        for _ in 0..rtts_in_step.round() as u64 {
            sent += self.cwnd.min(capacity_window);
            if self.cwnd < self.ssthresh {
                self.cwnd = (self.cwnd * 2.0).min(window_cap);
            } else {
                self.cwnd += 1.0;
            }
            self.cwnd = self.cwnd.min(window_cap);
        }
        // Retransmitted segments do not contribute to goodput.
        let goodput_segments = (sent - outcome.retransmissions as f64).max(0.0);
        outcome.segments_sent += sent.round() as u64 + outcome.retransmissions;
        outcome.throughput_mbps =
            (goodput_segments * self.config.mss_bytes * 8.0) / step_secs / 1_000_000.0;
        self.total_segments += outcome.segments_sent;
        self.total_retransmissions += outcome.retransmissions;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steady_state(conn: &mut RenoConnection, hops: usize) -> f64 {
        let mut last = 0.0;
        for _ in 0..20 {
            last = conn.step(1.0, hops, PathEvent::Stable).throughput_mbps;
        }
        last
    }

    #[test]
    fn steady_state_reaches_achievable_share_of_capacity() {
        let cfg = RenoConfig::default();
        let mut conn = RenoConnection::new(cfg);
        let rate = steady_state(&mut conn, 8);
        let target = cfg.link_capacity_mbps * cfg.achievable_utilization;
        assert!(rate > target * 0.85, "rate {rate} too low");
        assert!(
            rate < cfg.link_capacity_mbps,
            "rate {rate} exceeds the link"
        );
    }

    #[test]
    fn reroute_causes_a_dip_and_retransmissions() {
        let mut conn = RenoConnection::new(RenoConfig::default());
        let before = steady_state(&mut conn, 8);
        let dip = conn.step(1.0, 8, PathEvent::Rerouted);
        assert!(dip.retransmissions > 0);
        assert!(dip.out_of_order > 0);
        assert!(dip.bad_tcp >= dip.retransmissions);
        assert!(dip.throughput_mbps < before);
        assert!(dip.retransmission_pct() > 0.0);
        assert!(dip.bad_tcp_pct() >= dip.retransmission_pct());
        // Recovery within a few seconds.
        let mut after = 0.0;
        for _ in 0..5 {
            after = conn.step(1.0, 8, PathEvent::Stable).throughput_mbps;
        }
        assert!(after > before * 0.9, "after {after} vs before {before}");
    }

    #[test]
    fn unavailable_path_collapses_the_window() {
        let mut conn = RenoConnection::new(RenoConfig::default());
        let _ = steady_state(&mut conn, 4);
        let outage = conn.step(1.0, 4, PathEvent::Unavailable);
        assert_eq!(outage.throughput_mbps, 0.0);
        assert!(outage.retransmission_pct() >= 99.0);
        assert!(conn.cwnd() <= 1.0);
        // Slow start brings the rate back up quickly.
        let mut rate = 0.0;
        for _ in 0..10 {
            rate = conn.step(1.0, 4, PathEvent::Stable).throughput_mbps;
        }
        assert!(rate > 100.0);
    }

    #[test]
    fn longer_paths_have_lower_or_equal_throughput_growth() {
        let cfg = RenoConfig::default();
        let mut short = RenoConnection::new(cfg);
        let mut long = RenoConnection::new(cfg);
        let s = short.step(1.0, 2, PathEvent::Stable).throughput_mbps;
        let l = long.step(1.0, 20, PathEvent::Stable).throughput_mbps;
        assert!(s >= l, "short {s} vs long {l}");
    }

    #[test]
    fn counters_accumulate_and_percentages_handle_zero() {
        let mut conn = RenoConnection::new(RenoConfig::default());
        let o = conn.step(1.0, 3, PathEvent::Stable);
        assert!(conn.total_segments() >= o.segments_sent);
        assert_eq!(conn.total_retransmissions(), 0);
        let empty = StepOutcome::default();
        assert_eq!(empty.retransmission_pct(), 0.0);
        assert_eq!(empty.out_of_order_pct(), 0.0);
        assert_eq!(empty.bad_tcp_pct(), 0.0);
        assert_eq!(conn.config().mss_bytes, 1460.0);
    }
}
