//! Aggregation helpers over throughput runs: the quantities behind the paper's
//! Table 17 (correlation between the with-recovery and without-recovery runs) and the
//! per-second percentage plots of Figures 18–20.

use crate::iperf::IperfRun;
use sdn_netsim::metrics::pearson_correlation;

/// A named per-second series, ready to be printed as one curve of a figure.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Curve label (usually the network name).
    pub label: String,
    /// One value per second.
    pub values: Vec<f64>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        Series {
            label: label.into(),
            values,
        }
    }

    /// Mean of the values (0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Maximum value (0 for an empty series).
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }
}

/// Pearson correlation between the throughput curves of two runs, the statistic the
/// paper reports in Table 17 (values of 0.92–0.96 across networks).
pub fn throughput_correlation(
    with_recovery: &IperfRun,
    without_recovery: &IperfRun,
) -> Option<f64> {
    pearson_correlation(
        &with_recovery.throughput_mbps,
        &without_recovery.throughput_mbps,
    )
}

/// Extracts the Figure 15/16 curve (throughput) from a run.
pub fn throughput_series(label: &str, run: &IperfRun) -> Series {
    Series::new(label, run.throughput_mbps.clone())
}

/// Extracts the Figure 18 curve (retransmission percentage) from a run.
pub fn retransmission_series(label: &str, run: &IperfRun) -> Series {
    Series::new(label, run.retransmission_pct.clone())
}

/// Extracts the Figure 19 curve (BAD-TCP percentage) from a run.
pub fn bad_tcp_series(label: &str, run: &IperfRun) -> Series {
    Series::new(label, run.bad_tcp_pct.clone())
}

/// Extracts the Figure 20 curve (out-of-order percentage) from a run.
pub fn out_of_order_series(label: &str, run: &IperfRun) -> Series {
    Series::new(label, run.out_of_order_pct.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_with(values: Vec<f64>) -> IperfRun {
        IperfRun {
            throughput_mbps: values.clone(),
            retransmission_pct: values.iter().map(|v| v / 100.0).collect(),
            bad_tcp_pct: values.iter().map(|v| v / 80.0).collect(),
            out_of_order_pct: values.iter().map(|v| v / 500.0).collect(),
            ..IperfRun::default()
        }
    }

    #[test]
    fn series_statistics() {
        let s = Series::new("B4", vec![1.0, 2.0, 3.0]);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.label, "B4");
        let empty = Series::new("x", vec![]);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.max(), 0.0);
    }

    #[test]
    fn correlation_of_similar_runs_is_high() {
        let a = run_with(vec![500.0, 505.0, 480.0, 500.0, 502.0]);
        let b = run_with(vec![501.0, 506.0, 482.0, 499.0, 503.0]);
        let r = throughput_correlation(&a, &b).unwrap();
        assert!(r > 0.9, "correlation {r}");
    }

    #[test]
    fn series_extractors_use_the_right_field() {
        let run = run_with(vec![100.0, 200.0]);
        assert_eq!(throughput_series("t", &run).values, vec![100.0, 200.0]);
        assert_eq!(retransmission_series("r", &run).values, vec![1.0, 2.0]);
        assert_eq!(bad_tcp_series("b", &run).values, vec![1.25, 2.5]);
        assert_eq!(out_of_order_series("o", &run).values, vec![0.2, 0.4]);
    }
}
