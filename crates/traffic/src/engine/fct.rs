//! Flow-completion-time telemetry.
//!
//! An [`FctCollector`] accumulates the completion time of every finished flow into a
//! deterministic streaming [`Digest`] (exact below the sketch threshold, merge-stable
//! above it), alongside the completed-flow count and the delivered-byte total. At the
//! end of a run it collapses into an [`FctSummary`] — the count / mean / p50 / p90 /
//! p99 / min / max tuple the campaign cells and figure binaries report.

use sdn_metrics::Digest;

/// Streaming accumulator of flow completion times and delivered bytes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FctCollector {
    digest: Digest,
    delivered_bytes: f64,
}

impl FctCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed flow's completion time in seconds. Delivered bytes are
    /// credited separately via [`FctCollector::credit_bytes`] so per-tick progress is
    /// never double-counted.
    pub fn record_completion(&mut self, fct_s: f64) {
        self.digest.record(fct_s);
    }

    /// Adds bytes delivered this tick (by completed and still-running flows alike);
    /// counts toward achieved throughput.
    pub fn credit_bytes(&mut self, bytes: f64) {
        self.delivered_bytes += bytes;
    }

    /// Number of completed flows recorded so far.
    pub fn completed(&self) -> u64 {
        self.digest.count()
    }

    /// Total bytes delivered so far (completed and partial).
    pub fn delivered_bytes(&self) -> f64 {
        self.delivered_bytes
    }

    /// The underlying completion-time digest.
    pub fn digest(&self) -> &Digest {
        &self.digest
    }

    /// Consumes the collector, yielding the completion-time digest.
    pub fn into_digest(self) -> Digest {
        self.digest
    }

    /// Achieved goodput in Mbit/s over a window of `secs` seconds.
    pub fn achieved_mbps(&self, secs: f64) -> f64 {
        if secs <= 0.0 {
            return 0.0;
        }
        self.delivered_bytes * 8.0 / secs / 1e6
    }

    /// Collapses the collected population into its summary statistics.
    pub fn summary(&self) -> FctSummary {
        FctSummary::from_digest(&self.digest)
    }
}

/// Summary statistics of a flow-completion-time population, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FctSummary {
    /// Number of completed flows.
    pub count: u64,
    /// Mean completion time.
    pub mean_s: f64,
    /// Median completion time.
    pub p50_s: f64,
    /// 90th-percentile completion time.
    pub p90_s: f64,
    /// 99th-percentile completion time (the tail the paper's recovery argument is
    /// about: stalled flows during repair land here).
    pub p99_s: f64,
    /// Fastest completion.
    pub min_s: f64,
    /// Slowest completion.
    pub max_s: f64,
}

impl FctSummary {
    /// Summarises a completion-time digest. An empty digest yields the all-zero
    /// summary.
    pub fn from_digest(digest: &Digest) -> Self {
        if digest.is_empty() {
            return FctSummary::default();
        }
        FctSummary {
            count: digest.count(),
            mean_s: digest.mean(),
            p50_s: digest.p50(),
            p90_s: digest.p90(),
            p99_s: digest.p99(),
            min_s: digest.min(),
            max_s: digest.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_tracks_completions_and_bytes() {
        let mut fct = FctCollector::new();
        fct.record_completion(1.0);
        fct.record_completion(3.0);
        fct.credit_bytes(3e6);
        fct.credit_bytes(5e5);
        assert_eq!(fct.completed(), 2);
        assert_eq!(fct.delivered_bytes(), 3.5e6);
        // 3.5e6 bytes over 4 s = 7 Mbit/s.
        assert!((fct.achieved_mbps(4.0) - 7.0).abs() < 1e-9);
        assert_eq!(fct.achieved_mbps(0.0), 0.0);
        let summary = fct.summary();
        assert_eq!(summary.count, 2);
        assert!((summary.mean_s - 2.0).abs() < 1e-9);
        assert_eq!(summary.min_s, 1.0);
        assert_eq!(summary.max_s, 3.0);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let summary = FctCollector::new().summary();
        assert_eq!(summary, FctSummary::default());
    }

    #[test]
    fn quantiles_follow_the_population() {
        let mut fct = FctCollector::new();
        for i in 1..=100 {
            fct.record_completion(i as f64);
        }
        let summary = fct.summary();
        assert_eq!(summary.count, 100);
        assert!(summary.p50_s >= 49.0 && summary.p50_s <= 52.0);
        assert!(summary.p99_s >= 98.0 && summary.p99_s <= 100.0);
        assert!(summary.p50_s <= summary.p90_s && summary.p90_s <= summary.p99_s);
    }
}
