//! Seeded traffic matrices: who talks to whom.
//!
//! A [`TrafficMatrix`] describes the spatial structure of a heavy-traffic workload
//! over an ordered endpoint list (the switches hosts attach to). Three shapes cover
//! the classic datacenter evaluations:
//!
//! * [`TrafficMatrix::Uniform`] — all-to-all: source and destination drawn uniformly,
//! * [`TrafficMatrix::HotspotPod`] — a configurable fraction of flows target one
//!   "hot" endpoint group (the endpoint list split into `groups` contiguous chunks;
//!   on a fat-tree the chunks line up with pods, on jellyfish they are just rack
//!   groups),
//! * [`TrafficMatrix::Permutation`] — a seeded fixed permutation: endpoint `e` sends
//!   only to `pi(e)`, the worst case for core-link load balance.
//!
//! Sampling is fully deterministic: a [`MatrixSampler`] is built from the endpoint
//! count and the run seed, and equal seeds produce equal pair streams.

use sdn_rng::Rng;

/// The spatial structure of a traffic workload. See the module docs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TrafficMatrix {
    /// Uniform all-to-all traffic.
    Uniform,
    /// `hot_fraction` of flows target the first of `groups` contiguous endpoint
    /// chunks; the rest are uniform.
    HotspotPod {
        /// Number of contiguous endpoint groups the list is split into (>= 1).
        groups: usize,
        /// Probability in `[0, 1]` that a flow targets the hot group.
        hot_fraction: f64,
    },
    /// A seeded fixed permutation: endpoint `e` only sends to `pi(e)`.
    Permutation,
}

impl TrafficMatrix {
    /// Short label for reports (`"uniform"`, `"hotspot"`, `"permutation"`).
    pub fn label(&self) -> &'static str {
        match self {
            TrafficMatrix::Uniform => "uniform",
            TrafficMatrix::HotspotPod { .. } => "hotspot",
            TrafficMatrix::Permutation => "permutation",
        }
    }

    /// Builds the stateful sampler for an endpoint list of `endpoints` entries.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two endpoints are available (no pair can be formed),
    /// when a hotspot's `groups` is zero or `hot_fraction` is outside `[0, 1]`.
    pub fn sampler(&self, endpoints: usize, seed: u64) -> MatrixSampler {
        assert!(
            endpoints >= 2,
            "a traffic matrix needs at least two endpoints, got {endpoints}"
        );
        let mut rng = Rng::seed_from_u64(seed);
        let permutation = match self {
            TrafficMatrix::Uniform => Vec::new(),
            TrafficMatrix::HotspotPod {
                groups,
                hot_fraction,
            } => {
                assert!(*groups >= 1, "hotspot needs at least one group");
                assert!(
                    (0.0..=1.0).contains(hot_fraction),
                    "hot_fraction must be in [0, 1], got {hot_fraction}"
                );
                Vec::new()
            }
            TrafficMatrix::Permutation => {
                // A seeded derangement-ish permutation: shuffle, then fix any
                // self-mapping by swapping with its cyclic successor so no endpoint
                // talks to itself.
                let mut perm: Vec<u32> = (0..endpoints as u32).collect();
                rng.shuffle(&mut perm);
                for i in 0..perm.len() {
                    if perm[i] == i as u32 {
                        let j = (i + 1) % perm.len();
                        perm.swap(i, j);
                    }
                }
                perm
            }
        };
        MatrixSampler {
            matrix: *self,
            endpoints,
            rng,
            permutation,
            cursor: 0,
        }
    }
}

/// The stateful, seeded pair sampler of one [`TrafficMatrix`].
#[derive(Clone, Debug)]
pub struct MatrixSampler {
    matrix: TrafficMatrix,
    endpoints: usize,
    rng: Rng,
    /// Fixed permutation (empty unless [`TrafficMatrix::Permutation`]).
    permutation: Vec<u32>,
    /// Round-robin source cursor of the permutation matrix.
    cursor: usize,
}

impl MatrixSampler {
    /// Draws the next `(src, dst)` pair as positions into the endpoint list.
    /// Guaranteed `src != dst`.
    pub fn next_pair(&mut self) -> (u32, u32) {
        let n = self.endpoints as u64;
        match self.matrix {
            TrafficMatrix::Uniform => {
                let src = self.rng.gen_range(0..n) as u32;
                let dst = self.distinct_from(src);
                (src, dst)
            }
            TrafficMatrix::HotspotPod {
                groups,
                hot_fraction,
            } => {
                let src = self.rng.gen_range(0..n) as u32;
                let hot_len = (self.endpoints.div_ceil(groups)).max(1) as u64;
                let dst = if self.rng.gen_bool(hot_fraction) {
                    // Target the hot group (the first chunk), avoiding src.
                    let d = self.rng.gen_range(0..hot_len) as u32;
                    if d == src {
                        ((d as u64 + 1) % hot_len.max(2)) as u32
                    } else {
                        d
                    }
                } else {
                    self.distinct_from(src)
                };
                if dst == src {
                    (src, self.distinct_from(src))
                } else {
                    (src, dst)
                }
            }
            TrafficMatrix::Permutation => {
                let src = (self.cursor % self.endpoints) as u32;
                self.cursor += 1;
                (src, self.permutation[src as usize])
            }
        }
    }

    /// A uniform endpoint position different from `src`.
    fn distinct_from(&mut self, src: u32) -> u32 {
        // Sample from n-1 positions and skip over src: uniform without rejection
        // loops, so the draw count per pair is fixed and the stream stays aligned.
        let d = self.rng.gen_range(0..self.endpoints as u64 - 1) as u32;
        if d >= src {
            d + 1
        } else {
            d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_pairs_are_distinct_and_seed_stable() {
        let mut a = TrafficMatrix::Uniform.sampler(16, 7);
        let mut b = TrafficMatrix::Uniform.sampler(16, 7);
        for _ in 0..1000 {
            let (s, d) = a.next_pair();
            assert_ne!(s, d);
            assert!(s < 16 && d < 16);
            assert_eq!((s, d), b.next_pair());
        }
        let mut c = TrafficMatrix::Uniform.sampler(16, 8);
        let first: Vec<_> = (0..16).map(|_| c.next_pair()).collect();
        let mut a2 = TrafficMatrix::Uniform.sampler(16, 7);
        let again: Vec<_> = (0..16).map(|_| a2.next_pair()).collect();
        assert_ne!(first, again, "different seeds should differ somewhere");
    }

    #[test]
    fn hotspot_concentrates_destinations_on_the_first_group() {
        let matrix = TrafficMatrix::HotspotPod {
            groups: 4,
            hot_fraction: 0.8,
        };
        let mut sampler = matrix.sampler(64, 3);
        let hot_len = 16u32;
        let hits = (0..10_000)
            .filter(|_| {
                let (s, d) = sampler.next_pair();
                assert_ne!(s, d);
                d < hot_len
            })
            .count();
        // ~0.8 hot + ~0.2 * (16/64) uniform spillover ≈ 85%.
        assert!(
            (7_500..9_500).contains(&hits),
            "hot-group hits {hits} of 10000"
        );
    }

    #[test]
    fn permutation_is_fixed_and_self_free() {
        let mut sampler = TrafficMatrix::Permutation.sampler(10, 5);
        let first: Vec<(u32, u32)> = (0..10).map(|_| sampler.next_pair()).collect();
        // Sources cycle round-robin; destinations form a permutation without
        // self-mappings.
        let mut dsts: Vec<u32> = first.iter().map(|&(_, d)| d).collect();
        for (i, &(s, d)) in first.iter().enumerate() {
            assert_eq!(s, i as u32);
            assert_ne!(s, d);
        }
        dsts.sort_unstable();
        assert_eq!(dsts, (0..10).collect::<Vec<_>>());
        // The second cycle repeats the same mapping.
        let second: Vec<(u32, u32)> = (0..10).map(|_| sampler.next_pair()).collect();
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "at least two endpoints")]
    fn one_endpoint_panics() {
        let _ = TrafficMatrix::Uniform.sampler(1, 0);
    }
}
