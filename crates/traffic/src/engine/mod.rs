//! Heavy-traffic flow engine: aggregated flow batches charged against link capacity.
//!
//! The iperf model in [`crate::iperf`] follows *one* TCP flow in mechanistic detail.
//! This module is the opposite trade: millions of concurrent flows, no per-packet or
//! per-window state, progress charged in bulk once per coarse service tick. It is how
//! the reproduction asks the paper's question at datacenter scale — *what does traffic
//! experience while the control plane bootstraps or recovers?* — where simulating
//! individual segments would be hopeless.
//!
//! The pieces:
//!
//! * [`flows`] — [`FlowBatch`], the struct-of-arrays population over dense [`FlowId`]s,
//! * [`matrix`] — seeded [`TrafficMatrix`] spatial shapes (uniform / hotspot /
//!   permutation),
//! * [`generators`] — size mixes, arrival processes, and request/response fan-out
//!   expanding a [`FlowSetConfig`] into a batch,
//! * [`fct`] — flow-completion-time telemetry ([`FctCollector`] / [`FctSummary`]),
//! * this module — the [`FlowEngine`] itself plus [`FlowEngineWorkload`], the
//!   scenario-API adapter.
//!
//! # The progress model
//!
//! Per service tick the engine makes two passes over the active flows. Pass one walks
//! each flow's next-hop chain (a per-destination BFS tree over the operational
//! topology's CSR snapshot) and increments a per-directed-arc load counter. Pass two
//! walks the chain again, takes the *maximum* load along the path — the bottleneck —
//! and delivers `capacity / bottleneck` worth of bytes for the tick, a classic
//! max-min-flavoured fair-share approximation. Flows whose destination is unreachable
//! stall: they deliver nothing but stay active, which is exactly the recovery signal
//! the under-load campaign cells measure.
//!
//! Route tables are rebuilt only when the simulator's topology generation changes
//! ([`FlowEngine::retarget`]); between changes a tick is pure array arithmetic.
//!
//! Everything is deterministic: generation is a single seeded RNG stream, stepping is
//! sequential over index-ordered arrays, and the FCT digest merges deterministically —
//! so campaign metrics are bit-identical across `--threads 1` and `--threads 4`.
//!
//! # Example
//!
//! ```
//! use sdn_topology::{builders, NodeId};
//! use sdn_traffic::engine::{generate, EngineConfig, FlowEngine, FlowSetConfig};
//!
//! let net = builders::fat_tree(4, 2);
//! let batch = generate(&net.switches, &FlowSetConfig::stress(1_000), 42);
//! let mut engine = FlowEngine::new(batch, EngineConfig::default());
//! engine.retarget(&net.switch_graph, |_| true);
//! while !engine.is_done() {
//!     engine.step();
//! }
//! assert_eq!(engine.fct().completed(), 1_000);
//! ```

pub mod fct;
pub mod flows;
pub mod generators;
pub mod matrix;

pub use fct::{FctCollector, FctSummary};
pub use flows::{FlowBatch, FlowId, FlowSpec};
pub use generators::{generate, Arrival, FanOut, FlowMix, FlowSetConfig};
pub use matrix::{MatrixSampler, TrafficMatrix};

use renaissance::scenario::{Workload, WorkloadReport, WorkloadTick};
use renaissance::SdnNetwork;
use sdn_netsim::SimDuration;
use sdn_topology::flat::NO_INDEX;
use sdn_topology::{BfsScratch, FlatGraph, Graph, NodeId};

/// Sentinel in the route tables: no usable next hop toward the destination.
const NO_ARC: u32 = u32::MAX;

/// Default seed salt mixed into the harness seed by [`FlowEngineWorkload`], so the
/// flow population is decorrelated from the harness's own random streams.
const WORKLOAD_SEED_SALT: u64 = 0x666c_6f77; // "flow"

/// Capacity and cadence parameters of a [`FlowEngine`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineConfig {
    /// Capacity of every link in megabits per second (matches the iperf model's
    /// default bottleneck).
    pub link_capacity_mbps: f64,
    /// Length of one service tick in seconds.
    pub tick_secs: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            link_capacity_mbps: 1000.0,
            tick_secs: 1.0,
        }
    }
}

/// What one [`FlowEngine::step`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TickStats {
    /// The 0-based tick that was just serviced.
    pub tick: u32,
    /// Flows that activated on this tick.
    pub activated: usize,
    /// Flows active during this tick (after activation, before completions retire).
    pub concurrent: usize,
    /// Flows that completed on this tick.
    pub completed: usize,
    /// Active flows with no usable path this tick (delivered nothing).
    pub stalled: usize,
    /// Bytes delivered across all flows this tick.
    pub delivered_bytes: f64,
}

/// The batched heavy-traffic engine. See the module docs for the progress model.
#[derive(Clone, Debug)]
pub struct FlowEngine {
    config: EngineConfig,
    batch: FlowBatch,
    /// Indices of active (started, not finished) flows, in activation order.
    active: Vec<u32>,
    fct: FctCollector,
    /// CSR snapshot of the topology the routes were built against.
    flat: FlatGraph,
    /// Per dense node index: may this node relay traffic (switches yes,
    /// controllers no — in-band semantics).
    relay_ok: Vec<bool>,
    /// Route tables: `next_arc[slot * node_count + u]` is the directed-arc index of
    /// `u`'s next hop toward destination slot `slot`, or [`NO_ARC`].
    next_arc: Vec<u32>,
    node_count: usize,
    /// Per-flow dense index of the source in the current snapshot ([`NO_INDEX`] when
    /// the node is gone).
    src_idx: Vec<u32>,
    /// Per-flow dense index of the destination in the current snapshot.
    dst_idx: Vec<u32>,
    /// Per-directed-arc flow count of the current tick.
    arc_load: Vec<u32>,
    scratch: BfsScratch,
    tick: u32,
    activated_total: usize,
    peak_concurrent: usize,
}

impl FlowEngine {
    /// Creates an engine over a generated batch. Call [`FlowEngine::retarget`] before
    /// the first [`FlowEngine::step`]; until then every flow is unroutable.
    pub fn new(batch: FlowBatch, config: EngineConfig) -> Self {
        let flows = batch.len();
        FlowEngine {
            config,
            batch,
            active: Vec::new(),
            fct: FctCollector::new(),
            flat: FlatGraph::default(),
            relay_ok: Vec::new(),
            next_arc: Vec::new(),
            node_count: 0,
            src_idx: vec![NO_INDEX; flows],
            dst_idx: vec![NO_INDEX; flows],
            arc_load: Vec::new(),
            scratch: BfsScratch::new(),
            tick: 0,
            activated_total: 0,
            peak_concurrent: 0,
        }
    }

    /// Rebuilds the route tables against `graph` (typically the simulator's
    /// operational topology). `relay` says which nodes may forward traffic — pass
    /// `|n| n.is_switch(n_controllers)` for in-band semantics, or `|_| true` on a
    /// switches-only graph.
    ///
    /// One filtered BFS runs per distinct destination; per-flow endpoint indices and
    /// the per-arc load array are resized to the new snapshot. Flows whose endpoints
    /// left the graph simply stall until a later retarget brings them back.
    pub fn retarget(&mut self, graph: &Graph, relay: impl Fn(NodeId) -> bool) {
        self.flat = graph.snapshot();
        let n = self.flat.node_count();
        self.node_count = n;
        self.relay_ok.clear();
        self.relay_ok
            .extend((0..n as u32).map(|idx| relay(self.flat.node_at(idx))));
        let slots = self.batch.destinations().len();
        self.next_arc.clear();
        self.next_arc.resize(slots * n, NO_ARC);
        for (slot, &dst) in self.batch.destinations().iter().enumerate() {
            let Some(d) = self.flat.index_of(dst) else {
                continue;
            };
            let relay_ok = &self.relay_ok;
            self.flat
                .bfs_filtered(d, &mut self.scratch, |u| relay_ok[u as usize]);
            let base = slot * n;
            for u in 0..n as u32 {
                if u == d {
                    continue;
                }
                let Some(parent) = self.scratch.parent_of(u) else {
                    continue;
                };
                // The parent in a BFS tree rooted at the destination *is* the next
                // hop; its arc index is the parent's position in u's ascending
                // neighbor row.
                if let Ok(pos) = self.flat.neighbor_indices(u).binary_search(&parent) {
                    self.next_arc[base + u as usize] = self.flat.offsets()[u as usize] + pos as u32;
                }
            }
        }
        for i in 0..self.batch.len() {
            self.src_idx[i] = self.flat.index_of(self.batch.src(i)).unwrap_or(NO_INDEX);
            self.dst_idx[i] = self.flat.index_of(self.batch.dst(i)).unwrap_or(NO_INDEX);
        }
        self.arc_load.clear();
        self.arc_load.resize(self.flat.arc_targets().len(), 0);
    }

    /// Services one tick: activates this tick's flows, charges per-arc load (pass
    /// one), delivers each flow's bottleneck share (pass two), records completions,
    /// and retires finished flows.
    pub fn step(&mut self) -> TickStats {
        let tick = self.tick;
        let activating = self.batch.activating(tick);
        let activated = activating.len();
        self.activated_total += activated;
        self.active.extend(activating.map(|i| i as u32));
        let concurrent = self.active.len();
        self.peak_concurrent = self.peak_concurrent.max(concurrent);

        // Pass one: walk every active flow's next-hop chain, counting flows per arc.
        self.arc_load.iter_mut().for_each(|l| *l = 0);
        let targets = self.flat.arc_targets();
        for &i in &self.active {
            let i = i as usize;
            let slot_base = self.batch.dst_slot(i) as usize * self.node_count;
            let dst = self.dst_idx[i];
            let mut u = self.src_idx[i];
            if u == NO_INDEX || dst == NO_INDEX {
                continue;
            }
            let mut hops = 0usize;
            while u != dst {
                let arc = self.next_arc[slot_base + u as usize];
                if arc == NO_ARC {
                    break;
                }
                self.arc_load[arc as usize] += 1;
                u = targets[arc as usize];
                hops += 1;
                if hops > self.node_count {
                    break; // defensive: a BFS tree cannot loop, but never spin
                }
            }
        }

        // Pass two: each flow's rate is the capacity divided by the worst (largest)
        // load along its path; deliver one tick's worth and record completions.
        let capacity_bytes_per_tick =
            self.config.link_capacity_mbps * 1e6 / 8.0 * self.config.tick_secs;
        let mut delivered_total = 0.0;
        let mut completed = 0usize;
        let mut stalled = 0usize;
        for slot in 0..self.active.len() {
            let i = self.active[slot] as usize;
            let slot_base = self.batch.dst_slot(i) as usize * self.node_count;
            let dst = self.dst_idx[i];
            let mut u = self.src_idx[i];
            let mut bottleneck = 0u32;
            let mut routable = u != NO_INDEX && dst != NO_INDEX;
            let mut hops = 0usize;
            while routable && u != dst {
                let arc = self.next_arc[slot_base + u as usize];
                if arc == NO_ARC {
                    routable = false;
                    break;
                }
                bottleneck = bottleneck.max(self.arc_load[arc as usize]);
                u = self.flat.arc_targets()[arc as usize];
                hops += 1;
                if hops > self.node_count {
                    routable = false;
                    break;
                }
            }
            if !routable {
                stalled += 1;
                continue;
            }
            // A zero-hop flow (src == dst cannot happen, but src adjacent to a gone
            // path can leave bottleneck at 0) delivers at full capacity.
            let share = capacity_bytes_per_tick / f64::from(bottleneck.max(1));
            let counted = self.batch.deliver(i, share);
            delivered_total += counted;
            if self.batch.remaining(i) == 0.0 {
                let fct_s = f64::from(tick + 1 - self.batch.start_tick(i)) * self.config.tick_secs;
                self.fct.record_completion(fct_s);
                completed += 1;
            }
        }
        self.fct.credit_bytes(delivered_total);
        let batch = &self.batch;
        self.active.retain(|&i| batch.remaining(i as usize) > 0.0);
        self.tick = tick + 1;
        TickStats {
            tick,
            activated,
            concurrent,
            completed,
            stalled,
            delivered_bytes: delivered_total,
        }
    }

    /// `true` once every flow has activated and completed.
    pub fn is_done(&self) -> bool {
        self.activated_total == self.batch.len() && self.active.is_empty()
    }

    /// The completion-time / delivered-bytes telemetry collected so far.
    pub fn fct(&self) -> &FctCollector {
        &self.fct
    }

    /// The flow population this engine runs.
    pub fn batch(&self) -> &FlowBatch {
        &self.batch
    }

    /// Number of currently active flows.
    pub fn concurrent(&self) -> usize {
        self.active.len()
    }

    /// The highest concurrent-flow count observed on any tick.
    pub fn peak_concurrent(&self) -> usize {
        self.peak_concurrent
    }

    /// The next tick [`FlowEngine::step`] will service.
    pub fn tick(&self) -> u32 {
        self.tick
    }
}

/// The flow engine as a scenario [`Workload`].
///
/// On start it generates the flow population over the network's switches (seeded from
/// the harness seed so scenario repeats are bit-identical), builds routes against the
/// operational topology, and then steps the engine once per workload tick — rebuilding
/// routes only when the simulator's topology generation changes. The report carries
/// per-tick `concurrent_flows` / `completed_flows` / `stalled_flows` /
/// `achieved_mbps` series and the `fct_s` completion-time digest.
///
/// The workload observes the simulator but never perturbs it, so adding it to a
/// scenario leaves every other workload's numbers untouched.
#[derive(Debug)]
pub struct FlowEngineWorkload {
    config: FlowSetConfig,
    engine_config: EngineConfig,
    duration_secs: u32,
    seed_salt: u64,
    engine: Option<FlowEngine>,
    generation: u64,
    n_controllers: usize,
    concurrent: Vec<f64>,
    completed: Vec<f64>,
    stalled: Vec<f64>,
    achieved: Vec<f64>,
}

impl FlowEngineWorkload {
    /// A flow-engine workload running `config` for `duration_secs` service ticks.
    pub fn new(config: FlowSetConfig, duration_secs: u32) -> Self {
        FlowEngineWorkload {
            config,
            engine_config: EngineConfig::default(),
            duration_secs,
            seed_salt: WORKLOAD_SEED_SALT,
            engine: None,
            generation: 0,
            n_controllers: 0,
            concurrent: Vec::new(),
            completed: Vec::new(),
            stalled: Vec::new(),
            achieved: Vec::new(),
        }
    }

    /// Overrides the engine's capacity/cadence parameters.
    pub fn with_engine_config(mut self, engine_config: EngineConfig) -> Self {
        self.engine_config = engine_config;
        self
    }

    /// Overrides the salt mixed into the harness seed (to run decorrelated flow
    /// populations in one scenario).
    pub fn with_seed_salt(mut self, salt: u64) -> Self {
        self.seed_salt = salt;
        self
    }

    fn retarget_engine(&mut self, net: &SdnNetwork) {
        let n_controllers = self.n_controllers;
        if let Some(engine) = self.engine.as_mut() {
            engine.retarget(net.sim().operational_graph(), |node| {
                node.is_switch(n_controllers)
            });
        }
        self.generation = net.sim().topology_generation();
    }
}

impl Workload for FlowEngineWorkload {
    fn label(&self) -> String {
        "flow_engine".to_string()
    }

    fn duration(&self) -> SimDuration {
        SimDuration::from_secs(u64::from(self.duration_secs))
    }

    fn start(&mut self, net: &mut SdnNetwork) {
        let endpoints = net.topology().switches.clone();
        let seed = net.harness_config().seed ^ self.seed_salt;
        let batch = generate(&endpoints, &self.config, seed);
        self.n_controllers = net.controller_config().n_controllers;
        self.engine = Some(FlowEngine::new(batch, self.engine_config));
        self.retarget_engine(net);
    }

    fn tick(&mut self, net: &mut SdnNetwork, _tick: WorkloadTick) {
        if net.sim().topology_generation() != self.generation {
            self.retarget_engine(net);
        }
        let engine = self
            .engine
            .as_mut()
            // stancheck: allow(unwrap-expect) — Workload trait contract: the ScenarioRunner always calls start() before the first tick()
            .expect("tick before start");
        let stats = engine.step();
        self.concurrent.push(stats.concurrent as f64);
        self.completed.push(stats.completed as f64);
        self.stalled.push(stats.stalled as f64);
        self.achieved
            .push(stats.delivered_bytes * 8.0 / 1e6 / engine.config.tick_secs);
    }

    fn finish(&mut self, _net: &mut SdnNetwork) -> WorkloadReport {
        // stancheck: allow(unwrap-expect) — Workload trait contract: finish() only runs after start() on the same agenda
        let engine = self.engine.take().expect("finish before start");
        let mut report = WorkloadReport::new(self.label());
        report.push_note("matrix", self.config.matrix.label());
        report.push_note("flows", engine.batch().len().to_string());
        report.push_note("peak_concurrent", engine.peak_concurrent().to_string());
        report.push_note("completed", engine.fct().completed().to_string());
        report.push_series("concurrent_flows", std::mem::take(&mut self.concurrent));
        report.push_series("completed_flows", std::mem::take(&mut self.completed));
        report.push_series("stalled_flows", std::mem::take(&mut self.stalled));
        report.push_series("achieved_mbps", std::mem::take(&mut self.achieved));
        report.push_digest("fct_s", engine.fct().digest().clone());
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renaissance::scenario::{Endpoints, FaultEvent, LinkSelector, Scenario};
    use sdn_topology::builders;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn line3() -> Graph {
        Graph::from_links([(n(0), n(1)), (n(1), n(2))])
    }

    /// 8 Mbit/s capacity = exactly 1 MB per one-second tick, so shares are round.
    fn mb_config() -> EngineConfig {
        EngineConfig {
            link_capacity_mbps: 8.0,
            tick_secs: 1.0,
        }
    }

    #[test]
    fn two_flows_share_their_common_bottleneck_link() {
        let batch = FlowBatch::from_specs(vec![
            FlowSpec {
                src: n(0),
                dst: n(2),
                bytes: 1e6,
                start_tick: 0,
            },
            FlowSpec {
                src: n(0),
                dst: n(1),
                bytes: 1e6,
                start_tick: 0,
            },
        ]);
        let mut engine = FlowEngine::new(batch, mb_config());
        engine.retarget(&line3(), |_| true);
        // Both flows cross arc 0->1 (load 2), so each gets 0.5 MB per tick and
        // finishes its 1 MB on tick 2.
        let t0 = engine.step();
        assert_eq!(t0.concurrent, 2);
        assert_eq!(t0.completed, 0);
        assert_eq!(t0.delivered_bytes, 1e6);
        let t1 = engine.step();
        assert_eq!(t1.completed, 2);
        assert!(engine.is_done());
        let summary = engine.fct().summary();
        assert_eq!(summary.count, 2);
        assert_eq!(summary.p50_s, 2.0);
        assert_eq!(summary.max_s, 2.0);
        assert_eq!(engine.fct().delivered_bytes(), 2e6);
    }

    #[test]
    fn lone_flow_runs_at_full_capacity() {
        let batch = FlowBatch::from_specs(vec![FlowSpec {
            src: n(0),
            dst: n(2),
            bytes: 2e6,
            start_tick: 0,
        }]);
        let mut engine = FlowEngine::new(batch, mb_config());
        engine.retarget(&line3(), |_| true);
        let t0 = engine.step();
        assert_eq!(t0.delivered_bytes, 1e6);
        let t1 = engine.step();
        assert_eq!(t1.completed, 1);
        assert_eq!(engine.fct().summary().p50_s, 2.0);
    }

    #[test]
    fn unroutable_flows_stall_and_resume_after_retarget() {
        let square = Graph::from_links([(n(0), n(1)), (n(1), n(2)), (n(2), n(3)), (n(0), n(3))]);
        let batch = FlowBatch::from_specs(vec![FlowSpec {
            src: n(0),
            dst: n(2),
            bytes: 2e6,
            start_tick: 0,
        }]);
        let mut engine = FlowEngine::new(batch, mb_config());
        // Routes built against a graph where the destination is unreachable.
        let broken = Graph::from_links([(n(0), n(1)), (n(2), n(3))]);
        engine.retarget(&broken, |_| true);
        let t0 = engine.step();
        assert_eq!(t0.stalled, 1);
        assert_eq!(t0.delivered_bytes, 0.0);
        assert_eq!(engine.concurrent(), 1, "stalled flows stay active");
        // The repaired topology routes 0 -> 1 -> 2 (ascending tie-break).
        engine.retarget(&square, |_| true);
        let t1 = engine.step();
        assert_eq!(t1.stalled, 0);
        assert_eq!(t1.delivered_bytes, 1e6);
        let t2 = engine.step();
        assert_eq!(t2.completed, 1);
        // FCT counts from activation, stall included: 3 ticks.
        assert_eq!(engine.fct().summary().p50_s, 3.0);
    }

    #[test]
    fn controllers_are_never_relayed_through() {
        // 0 and 2 are switches bridged by controller 1 and by switch path 3-4.
        let g = Graph::from_links([
            (n(0), n(1)),
            (n(1), n(2)),
            (n(0), n(3)),
            (n(3), n(4)),
            (n(4), n(2)),
        ]);
        let batch = FlowBatch::from_specs(vec![FlowSpec {
            src: n(0),
            dst: n(2),
            bytes: 1e6,
            start_tick: 0,
        }]);
        let mut engine = FlowEngine::new(batch, mb_config());
        engine.retarget(&g, |node| node != n(1));
        let t0 = engine.step();
        assert_eq!(t0.stalled, 0);
        // The 3-hop switch detour carries the flow even though the controller
        // shortcut is 2 hops.
        assert_eq!(t0.delivered_bytes, 1e6);
        assert_eq!(t0.completed, 1);
    }

    #[test]
    fn staggered_arrivals_follow_their_buckets() {
        let batch = FlowBatch::from_specs(vec![
            FlowSpec {
                src: n(0),
                dst: n(2),
                bytes: 1e6,
                start_tick: 0,
            },
            FlowSpec {
                src: n(2),
                dst: n(0),
                bytes: 1e6,
                start_tick: 2,
            },
        ]);
        let mut engine = FlowEngine::new(batch, mb_config());
        engine.retarget(&line3(), |_| true);
        assert_eq!(engine.step().concurrent, 1);
        assert!(!engine.is_done(), "a flow is still waiting to activate");
        assert_eq!(engine.step().concurrent, 0);
        let t2 = engine.step();
        assert_eq!(t2.activated, 1);
        assert_eq!(t2.concurrent, 1);
        assert_eq!(t2.completed, 1);
        assert!(engine.is_done());
        assert_eq!(engine.peak_concurrent(), 1);
    }

    #[test]
    fn engine_runs_are_bit_identical() {
        let net = builders::fat_tree(4, 2);
        let config = FlowSetConfig {
            matrix: TrafficMatrix::HotspotPod {
                groups: 4,
                hot_fraction: 0.5,
            },
            mix: FlowMix::datacenter(),
            arrival: Arrival::Uniform { over_ticks: 5 },
            pairs: 5_000,
            fan_out: None,
        };
        let run = || {
            let batch = generate(&net.switches, &config, 42);
            let mut engine = FlowEngine::new(batch, EngineConfig::default());
            engine.retarget(&net.switch_graph, |_| true);
            let mut stats = Vec::new();
            for _ in 0..50 {
                stats.push(engine.step());
                if engine.is_done() {
                    break;
                }
            }
            (stats, engine.fct().clone())
        };
        let (stats_a, fct_a) = run();
        let (stats_b, fct_b) = run();
        assert_eq!(stats_a, stats_b);
        assert_eq!(fct_a, fct_b);
        assert!(fct_a.completed() > 0);
    }

    #[test]
    fn under_load_scenario_is_bit_identical_across_thread_counts() {
        // The campaign's `*_under_load` cells ride this property: fanning seeds over
        // worker threads — or re-running the whole scenario — must not change a
        // single bit of the reports, FCT digests included.
        let scenario = |threads: usize| {
            Scenario::builder("under-load-determinism")
                .network("fat_tree(4)")
                .task_delay(SimDuration::from_millis(200))
                .runs(4)
                .seeds_from(7)
                .threads(threads)
                .workload(|| Box::new(FlowEngineWorkload::new(FlowSetConfig::stress(5_000), 12)))
                .fault_at(
                    SimDuration::from_secs(5),
                    FaultEvent::RemoveLink(LinkSelector::MidPath(Endpoints::FarthestSwitches)),
                )
                .run()
        };
        let sequential = scenario(1);
        let parallel = scenario(4);
        assert_eq!(sequential, parallel);
        assert_eq!(
            parallel,
            scenario(4),
            "repeat runs must also be bit-identical"
        );
        let wl = parallel.runs[0]
            .workload("flow_engine")
            .expect("flow-engine report");
        let fct = wl.digest("fct_s").expect("fct digest");
        assert!(fct.count() > 0, "flows must complete under load");
        assert!(wl.series("concurrent_flows").is_some());
    }

    #[test]
    fn million_concurrent_flows_on_fat_tree_16() {
        // The acceptance-scale population: one million flows, all active at once,
        // on the fat_tree(16) switch fabric. Three ticks are enough to prove the
        // engine sustains the concurrency and makes progress; the campaign's large
        // tier runs the full completion curve.
        let net = builders::fat_tree(16, 3);
        let config = FlowSetConfig {
            matrix: TrafficMatrix::Uniform,
            mix: FlowMix::uniform(1e9),
            arrival: Arrival::UpFront,
            pairs: 1_000_000,
            fan_out: None,
        };
        let batch = generate(&net.switches, &config, 7);
        assert_eq!(batch.len(), 1_000_000);
        let mut engine = FlowEngine::new(batch, EngineConfig::default());
        engine.retarget(&net.switch_graph, |_| true);
        let mut delivered = 0.0;
        for _ in 0..3 {
            let stats = engine.step();
            assert_eq!(stats.concurrent, 1_000_000);
            assert_eq!(stats.stalled, 0);
            delivered += stats.delivered_bytes;
        }
        assert_eq!(engine.peak_concurrent(), 1_000_000);
        assert!(delivered > 0.0, "a loaded fabric still makes progress");
    }
}
