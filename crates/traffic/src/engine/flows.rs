//! Struct-of-arrays flow batches over dense flow identifiers.
//!
//! A [`FlowBatch`] holds every flow of a heavy-traffic run in parallel arrays —
//! source, destination, size, bytes remaining, start tick — indexed by a dense
//! [`FlowId`]. There is no per-flow object and no per-flow allocation: one batch of a
//! million flows is six flat arrays, and the engine's per-tick work walks only the
//! *live* slice of them.
//!
//! Flows are stored sorted by start tick, and an epoch bucket table maps each service
//! tick to the contiguous range of flows that activate on it ([`FlowBatch::activating`]),
//! so activation is a range append instead of a scan over the whole population.

use sdn_topology::NodeId;

/// Dense identifier of one flow within a [`FlowBatch`] — the index into the batch's
/// parallel arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

impl FlowId {
    /// The array index this identifier addresses.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One flow as produced by a generator, before batching.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowSpec {
    /// Source endpoint (a switch the sending host attaches to).
    pub src: NodeId,
    /// Destination endpoint (a switch the receiving host attaches to).
    pub dst: NodeId,
    /// Transfer size in bytes.
    pub bytes: f64,
    /// Service tick at which the flow becomes active (0 = start of the workload).
    pub start_tick: u32,
}

/// The struct-of-arrays batch of every flow in a heavy-traffic run.
///
/// # Example
///
/// ```
/// use sdn_topology::NodeId;
/// use sdn_traffic::engine::{FlowBatch, FlowSpec};
///
/// let batch = FlowBatch::from_specs(vec![
///     FlowSpec { src: NodeId::new(3), dst: NodeId::new(4), bytes: 1e6, start_tick: 1 },
///     FlowSpec { src: NodeId::new(4), dst: NodeId::new(5), bytes: 2e6, start_tick: 0 },
/// ]);
/// assert_eq!(batch.len(), 2);
/// // Flows are re-ordered by start tick; epoch buckets address them by tick.
/// assert_eq!(batch.activating(0), 0..1);
/// assert_eq!(batch.activating(1), 1..2);
/// assert_eq!(batch.activating(7), 2..2);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlowBatch {
    /// Source endpoint per flow.
    src: Vec<NodeId>,
    /// Destination endpoint per flow.
    dst: Vec<NodeId>,
    /// Slot of the flow's destination in [`FlowBatch::destinations`] — the engine
    /// keys its per-destination route tables on this.
    dst_slot: Vec<u32>,
    /// Transfer size in bytes per flow.
    bytes: Vec<f64>,
    /// Bytes still to deliver per flow (equals `bytes` until the flow activates).
    remaining: Vec<f64>,
    /// Activation tick per flow (ascending across the batch).
    start_tick: Vec<u32>,
    /// Distinct destination endpoints, ascending; `dst_slot` indexes this.
    destinations: Vec<NodeId>,
    /// Epoch buckets: `buckets[t]..buckets[t + 1]` is the flow range activating at
    /// tick `t`. Length `last_tick + 2`.
    buckets: Vec<u32>,
}

impl FlowBatch {
    /// Batches a set of generated flows: sorts them by start tick (stable, so
    /// generation order breaks ties deterministically), extracts the distinct
    /// destination set, and builds the epoch bucket table.
    pub fn from_specs(mut specs: Vec<FlowSpec>) -> Self {
        specs.sort_by_key(|f| f.start_tick);
        let mut destinations: Vec<NodeId> = specs.iter().map(|f| f.dst).collect();
        destinations.sort_unstable();
        destinations.dedup();
        let slot_of = |dst: NodeId| -> u32 {
            // stancheck: allow(unwrap-expect) — `destinations` was just built from every spec's dst, so the lookup cannot miss
            destinations.binary_search(&dst).unwrap() as u32
        };
        let last_tick = specs.last().map(|f| f.start_tick).unwrap_or(0);
        let mut buckets = vec![0u32; last_tick as usize + 2];
        let mut batch = FlowBatch {
            src: Vec::with_capacity(specs.len()),
            dst: Vec::with_capacity(specs.len()),
            dst_slot: Vec::with_capacity(specs.len()),
            bytes: Vec::with_capacity(specs.len()),
            remaining: Vec::with_capacity(specs.len()),
            start_tick: Vec::with_capacity(specs.len()),
            destinations: Vec::new(),
            buckets: Vec::new(),
        };
        for spec in &specs {
            batch.src.push(spec.src);
            batch.dst.push(spec.dst);
            batch.dst_slot.push(slot_of(spec.dst));
            batch.bytes.push(spec.bytes);
            batch.remaining.push(spec.bytes);
            batch.start_tick.push(spec.start_tick);
            buckets[spec.start_tick as usize + 1] += 1;
        }
        for t in 1..buckets.len() {
            buckets[t] += buckets[t - 1];
        }
        batch.destinations = destinations;
        batch.buckets = buckets;
        batch
    }

    /// Number of flows in the batch.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Returns `true` when the batch holds no flows.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// The distinct destination endpoints, ascending. The engine builds one route
    /// table per entry.
    pub fn destinations(&self) -> &[NodeId] {
        &self.destinations
    }

    /// The contiguous range of flow indices that activate at `tick` (empty past the
    /// last bucket).
    pub fn activating(&self, tick: u32) -> std::ops::Range<usize> {
        let t = tick as usize;
        if t + 1 >= self.buckets.len() {
            return self.len()..self.len();
        }
        self.buckets[t] as usize..self.buckets[t + 1] as usize
    }

    /// Source endpoint of flow `i`.
    pub fn src(&self, i: usize) -> NodeId {
        self.src[i]
    }

    /// Destination endpoint of flow `i`.
    pub fn dst(&self, i: usize) -> NodeId {
        self.dst[i]
    }

    /// Destination slot of flow `i` (index into [`FlowBatch::destinations`]).
    pub fn dst_slot(&self, i: usize) -> u32 {
        self.dst_slot[i]
    }

    /// Transfer size of flow `i` in bytes.
    pub fn bytes(&self, i: usize) -> f64 {
        self.bytes[i]
    }

    /// Bytes flow `i` still has to deliver.
    pub fn remaining(&self, i: usize) -> f64 {
        self.remaining[i]
    }

    /// Decrements flow `i`'s remaining bytes by `delivered`, returning the bytes that
    /// actually counted (never below zero).
    pub fn deliver(&mut self, i: usize, delivered: f64) -> f64 {
        let counted = delivered.min(self.remaining[i]);
        self.remaining[i] -= counted;
        counted
    }

    /// Activation tick of flow `i`.
    pub fn start_tick(&self, i: usize) -> u32 {
        self.start_tick[i]
    }

    /// Total bytes across all flows of the batch.
    pub fn total_bytes(&self) -> f64 {
        self.bytes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(src: u32, dst: u32, bytes: f64, tick: u32) -> FlowSpec {
        FlowSpec {
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            bytes,
            start_tick: tick,
        }
    }

    #[test]
    fn batching_sorts_by_tick_and_buckets_are_contiguous() {
        let batch = FlowBatch::from_specs(vec![
            spec(1, 2, 10.0, 3),
            spec(2, 3, 20.0, 0),
            spec(3, 4, 30.0, 3),
            spec(4, 2, 40.0, 1),
        ]);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.activating(0), 0..1);
        assert_eq!(batch.activating(1), 1..2);
        assert_eq!(batch.activating(2), 2..2);
        assert_eq!(batch.activating(3), 2..4);
        assert_eq!(batch.activating(4), 4..4);
        // Ticks ascend across the reordered arrays.
        for i in 1..batch.len() {
            assert!(batch.start_tick(i - 1) <= batch.start_tick(i));
        }
        // Ties at tick 3 keep generation order (stable sort).
        assert_eq!(batch.src(2), NodeId::new(1));
        assert_eq!(batch.src(3), NodeId::new(3));
    }

    #[test]
    fn destination_slots_index_the_distinct_sorted_destinations() {
        let batch = FlowBatch::from_specs(vec![
            spec(1, 9, 1.0, 0),
            spec(2, 4, 1.0, 0),
            spec(3, 9, 1.0, 0),
        ]);
        assert_eq!(batch.destinations(), &[NodeId::new(4), NodeId::new(9)]);
        for i in 0..batch.len() {
            assert_eq!(
                batch.destinations()[batch.dst_slot(i) as usize],
                batch.dst(i)
            );
        }
    }

    #[test]
    fn delivery_clamps_at_zero_and_reports_counted_bytes() {
        let mut batch = FlowBatch::from_specs(vec![spec(1, 2, 100.0, 0)]);
        assert_eq!(batch.deliver(0, 60.0), 60.0);
        assert_eq!(batch.remaining(0), 40.0);
        assert_eq!(batch.deliver(0, 60.0), 40.0);
        assert_eq!(batch.remaining(0), 0.0);
        assert_eq!(batch.total_bytes(), 100.0);
    }

    #[test]
    fn empty_batch_is_well_formed() {
        let batch = FlowBatch::from_specs(Vec::new());
        assert!(batch.is_empty());
        assert!(batch.destinations().is_empty());
        assert_eq!(batch.activating(0), 0..0);
        assert_eq!(batch.total_bytes(), 0.0);
    }
}
