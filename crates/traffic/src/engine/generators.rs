//! Seeded flow-set generators: sizes, arrival times, and fan-out.
//!
//! A [`FlowSetConfig`] combines a spatial [`TrafficMatrix`], a size [`FlowMix`]
//! (elephants and mice), an [`Arrival`] process, and an optional request/response
//! [`FanOut`] stage into one deterministic recipe; [`generate`] expands the recipe
//! over an ordered endpoint list into a [`FlowBatch`]. Equal seeds produce equal
//! batches, independent of thread count or host.

use super::flows::{FlowBatch, FlowSpec};
use super::matrix::TrafficMatrix;
use sdn_rng::Rng;
use sdn_topology::NodeId;

/// Flow-size mix: a heavy-tailed two-point distribution of mice and elephants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowMix {
    /// Size of a mouse flow in bytes (e.g. a 10 kB RPC).
    pub mice_bytes: f64,
    /// Size of an elephant flow in bytes (e.g. a 10 MB bulk transfer).
    pub elephant_bytes: f64,
    /// Probability in `[0, 1]` that a flow is an elephant.
    pub elephant_fraction: f64,
}

impl FlowMix {
    /// The classic datacenter mix: 10 kB mice, 10 MB elephants, 10% elephants.
    pub fn datacenter() -> Self {
        FlowMix {
            mice_bytes: 10e3,
            elephant_bytes: 10e6,
            elephant_fraction: 0.1,
        }
    }

    /// All flows the same size — removes size variance from an experiment.
    pub fn uniform(bytes: f64) -> Self {
        FlowMix {
            mice_bytes: bytes,
            elephant_bytes: bytes,
            elephant_fraction: 0.0,
        }
    }

    fn sample(&self, rng: &mut Rng) -> f64 {
        if rng.gen_bool(self.elephant_fraction) {
            self.elephant_bytes
        } else {
            self.mice_bytes
        }
    }
}

/// When flows activate relative to the start of the workload window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Arrival {
    /// Every flow active from tick 0 — the peak-concurrency stress shape.
    UpFront,
    /// Start ticks drawn uniformly over `[0, over_ticks)` — a steady arrival
    /// process that keeps concurrency roughly level while flows complete.
    Uniform {
        /// Width of the arrival window in service ticks (>= 1).
        over_ticks: u32,
    },
    /// An open-loop Poisson process at `rate_per_tick` flows per service tick:
    /// inter-arrival gaps are seeded exponential draws ([`sdn_rng::Rng::gen_exp`])
    /// accumulated onto a running clock, so flow `i+1` always starts at or after
    /// flow `i` and the offered load stays at the configured rate no matter how
    /// the network is doing — the sustained-rate shape ROADMAP item 3 calls for.
    Poisson {
        /// Mean number of flow arrivals per service tick (> 0).
        rate_per_tick: f64,
    },
}

impl Arrival {
    /// A sampler holding whatever running state the arrival law needs. One sampler
    /// is used per generated flow set, so Poisson arrivals accumulate on one clock.
    fn sampler(&self) -> ArrivalSampler {
        ArrivalSampler {
            arrival: *self,
            clock: 0.0,
        }
    }
}

/// Stateful start-tick sampler for one flow-set generation pass.
struct ArrivalSampler {
    arrival: Arrival,
    /// Poisson only: the running arrival clock in (fractional) ticks.
    clock: f64,
}

impl ArrivalSampler {
    fn sample(&mut self, rng: &mut Rng) -> u32 {
        match self.arrival {
            Arrival::UpFront => 0,
            Arrival::Uniform { over_ticks } => {
                rng.gen_range(0..u64::from(over_ticks.max(1))) as u32
            }
            Arrival::Poisson { rate_per_tick } => {
                let mean_gap = if rate_per_tick > 0.0 {
                    1.0 / rate_per_tick
                } else {
                    0.0
                };
                self.clock += rng.gen_exp(mean_gap);
                // Saturate rather than wrap on absurd rates: the tail of the
                // batch just lands on the final representable tick.
                if self.clock >= f64::from(u32::MAX) {
                    u32::MAX
                } else {
                    self.clock as u32
                }
            }
        }
    }
}

/// Optional request/response fan-out: each sampled pair becomes a client that sends
/// a small request to `width` servers, each of which answers with a response flow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FanOut {
    /// Number of servers each client contacts (>= 1).
    pub width: u32,
    /// Request size in bytes (client to server).
    pub request_bytes: f64,
}

/// The full recipe of one generated flow set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowSetConfig {
    /// Spatial structure — who talks to whom.
    pub matrix: TrafficMatrix,
    /// Size mix — how much each flow carries.
    pub mix: FlowMix,
    /// Arrival process — when each flow activates.
    pub arrival: Arrival,
    /// Number of sampled pairs. Without fan-out this is the flow count; with
    /// fan-out of width `w` each pair expands into `2 * w` flows.
    pub pairs: u32,
    /// Optional request/response expansion.
    pub fan_out: Option<FanOut>,
}

impl FlowSetConfig {
    /// A uniform-matrix datacenter mix with all flows arriving up front.
    pub fn stress(pairs: u32) -> Self {
        FlowSetConfig {
            matrix: TrafficMatrix::Uniform,
            mix: FlowMix::datacenter(),
            arrival: Arrival::UpFront,
            pairs,
            fan_out: None,
        }
    }

    /// Total flows this recipe expands to.
    pub fn flow_count(&self) -> u64 {
        match self.fan_out {
            None => u64::from(self.pairs),
            Some(f) => u64::from(self.pairs) * 2 * u64::from(f.width.max(1)),
        }
    }
}

/// Expands `config` over the ordered `endpoints` list into a seeded [`FlowBatch`].
///
/// The generation loop is strictly sequential over one RNG stream, so a given
/// `(endpoints, config, seed)` triple yields a bit-identical batch everywhere.
///
/// # Panics
///
/// Panics when fewer than two endpoints are supplied (delegated to
/// [`TrafficMatrix::sampler`]).
pub fn generate(endpoints: &[NodeId], config: &FlowSetConfig, seed: u64) -> FlowBatch {
    let mut sampler = config.matrix.sampler(endpoints.len(), seed);
    // Independent stream for sizes/arrivals so changing the matrix kind does not
    // reshuffle every flow's size.
    let mut shape_rng = Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut arrivals = config.arrival.sampler();
    let mut specs: Vec<FlowSpec> = Vec::with_capacity(config.flow_count() as usize);
    for _ in 0..config.pairs {
        let (s, d) = sampler.next_pair();
        let (src, dst) = (endpoints[s as usize], endpoints[d as usize]);
        let start_tick = arrivals.sample(&mut shape_rng);
        match config.fan_out {
            None => {
                specs.push(FlowSpec {
                    src,
                    dst,
                    bytes: config.mix.sample(&mut shape_rng),
                    start_tick,
                });
            }
            Some(fan) => {
                // `dst` seeds a contiguous run of `width` servers; each server gets a
                // request from the client and answers with a response flow.
                for k in 0..fan.width.max(1) {
                    let server = endpoints[(d as usize + k as usize) % endpoints.len()];
                    let server = if server == src {
                        endpoints[(d as usize + k as usize + 1) % endpoints.len()]
                    } else {
                        server
                    };
                    specs.push(FlowSpec {
                        src,
                        dst: server,
                        bytes: fan.request_bytes,
                        start_tick,
                    });
                    specs.push(FlowSpec {
                        src: server,
                        dst: src,
                        bytes: config.mix.sample(&mut shape_rng),
                        start_tick,
                    });
                }
            }
        }
    }
    FlowBatch::from_specs(specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn endpoints(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let eps = endpoints(32);
        let config = FlowSetConfig {
            matrix: TrafficMatrix::Uniform,
            mix: FlowMix::datacenter(),
            arrival: Arrival::Uniform { over_ticks: 10 },
            pairs: 500,
            fan_out: None,
        };
        let a = generate(&eps, &config, 42);
        let b = generate(&eps, &config, 42);
        assert_eq!(a, b);
        let c = generate(&eps, &config, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn mix_produces_both_sizes_at_expected_rates() {
        let eps = endpoints(16);
        let config = FlowSetConfig {
            matrix: TrafficMatrix::Uniform,
            mix: FlowMix::datacenter(),
            arrival: Arrival::UpFront,
            pairs: 10_000,
            fan_out: None,
        };
        let batch = generate(&eps, &config, 7);
        assert_eq!(batch.len(), 10_000);
        let elephants = (0..batch.len()).filter(|&i| batch.bytes(i) == 10e6).count();
        // 10% elephants with binomial noise.
        assert!(
            (700..1_350).contains(&elephants),
            "elephants {elephants} of 10000"
        );
    }

    #[test]
    fn fan_out_expands_pairs_into_requests_and_responses() {
        let eps = endpoints(8);
        let config = FlowSetConfig {
            matrix: TrafficMatrix::Uniform,
            mix: FlowMix::uniform(1e6),
            arrival: Arrival::UpFront,
            pairs: 100,
            fan_out: Some(FanOut {
                width: 3,
                request_bytes: 1e3,
            }),
        };
        let batch = generate(&eps, &config, 9);
        assert_eq!(batch.len() as u64, config.flow_count());
        assert_eq!(batch.len(), 600);
        let requests = (0..batch.len()).filter(|&i| batch.bytes(i) == 1e3).count();
        let responses = (0..batch.len()).filter(|&i| batch.bytes(i) == 1e6).count();
        assert_eq!(requests, 300);
        assert_eq!(responses, 300);
        // No self-flows even after server remapping.
        for i in 0..batch.len() {
            assert_ne!(batch.src(i), batch.dst(i));
        }
    }

    #[test]
    fn uniform_arrival_spreads_start_ticks() {
        let eps = endpoints(16);
        let config = FlowSetConfig {
            matrix: TrafficMatrix::Uniform,
            mix: FlowMix::uniform(1e3),
            arrival: Arrival::Uniform { over_ticks: 20 },
            pairs: 2_000,
            fan_out: None,
        };
        let batch = generate(&eps, &config, 11);
        let first = batch.activating(0).len();
        assert!(first > 0 && first < batch.len());
        let total: usize = (0..20).map(|t| batch.activating(t).len()).sum();
        assert_eq!(total, batch.len());
    }

    #[test]
    fn poisson_arrival_is_open_loop_at_the_configured_rate() {
        let eps = endpoints(16);
        let pairs = 5_000;
        let rate = 50.0;
        let config = FlowSetConfig {
            matrix: TrafficMatrix::Uniform,
            mix: FlowMix::uniform(1e3),
            arrival: Arrival::Poisson {
                rate_per_tick: rate,
            },
            pairs,
            fan_out: None,
        };
        let batch = generate(&eps, &config, 13);
        // Start ticks are non-decreasing in generation order: one cumulative clock.
        for i in 1..batch.len() {
            assert!(batch.start_tick(i) >= batch.start_tick(i - 1));
        }
        // The arrival window is about pairs/rate ticks long, and any mid-window
        // tick activates about `rate` flows.
        let last = batch.start_tick(batch.len() - 1);
        let expected_span = f64::from(pairs) / rate;
        assert!(
            (f64::from(last) - expected_span).abs() < expected_span * 0.2,
            "window {last} ticks, expected ~{expected_span}"
        );
        let mid: usize = (40..60).map(|t| batch.activating(t).len()).sum();
        assert!((700..1_300).contains(&mid), "20 mid ticks carried {mid}");
        // Seed determinism holds for the stateful sampler too.
        assert_eq!(batch, generate(&eps, &config, 13));
        assert_ne!(batch, generate(&eps, &config, 14));
    }

    #[test]
    fn poisson_with_degenerate_rate_starts_everything_up_front() {
        let eps = endpoints(4);
        let config = FlowSetConfig {
            matrix: TrafficMatrix::Uniform,
            mix: FlowMix::uniform(1e3),
            arrival: Arrival::Poisson { rate_per_tick: 0.0 },
            pairs: 50,
            fan_out: None,
        };
        let batch = generate(&eps, &config, 3);
        assert_eq!(batch.activating(0).len(), 50);
    }
}
