//! Minimal deterministic pseudo-random number generation for the Renaissance
//! reproduction.
//!
//! The workspace is built to compile completely offline, so instead of depending on the
//! `rand` crate this tiny crate provides the only primitives the simulator and the
//! experiment harness actually need: a seedable 64-bit generator with uniform ranges,
//! Bernoulli draws, and Fisher–Yates shuffling. Determinism is part of the contract —
//! every experiment seed in the repository maps to exactly one execution, which is what
//! makes the paper reproduction and the scenario regression tests possible.
//!
//! The generator is SplitMix64 (Steele, Lea, Flood — "Fast splittable pseudorandom
//! number generators", OOPSLA 2014): tiny state, full 2^64 period, passes BigCrush, and
//! is more than strong enough for picking fault victims and sampling link losses.
//!
//! # Example
//!
//! ```
//! use sdn_rng::Rng;
//!
//! let mut a = Rng::seed_from_u64(7);
//! let mut b = Rng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_range(0..10u32);
//! assert!(x < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A seedable deterministic pseudo-random number generator (SplitMix64).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Equal seeds produce equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next uniformly distributed 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly distributed `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            // Consume a draw anyway so the stream advances identically.
            let _ = self.next_u64();
            return true;
        }
        if p <= 0.0 {
            let _ = self.next_u64();
            return false;
        }
        self.gen_f64() < p
    }

    /// A uniform value from `range`, which may be a half-open (`lo..hi`) or inclusive
    /// (`lo..=hi`) range over the supported integer types.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// An exponentially distributed `f64` with the given mean (inverse-transform
    /// sampling over one uniform draw) — the inter-arrival law of a Poisson
    /// process. Non-positive means consume a draw and return `0.0` so the stream
    /// advances identically regardless of parameters.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        let u = self.gen_f64();
        if mean <= 0.0 {
            return 0.0;
        }
        // `1 - u` is in (0, 1], so the log is finite.
        -(1.0 - u).ln() * mean
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            slice.swap(i, j);
        }
    }
}

/// Ranges that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end - start) as u128 + 1;
                start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=5u64);
            assert!(y <= 5);
            let z = rng.gen_range(0..9usize);
            assert!(z < 9);
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut rng = Rng::seed_from_u64(2);
        let _ = rng.gen_range(0..=u64::MAX);
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = Rng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_exp_has_the_requested_mean_and_is_reproducible() {
        let mut rng = Rng::seed_from_u64(5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_exp(2.5)).sum();
        let mean = sum / f64::from(n);
        assert!((2.3..2.7).contains(&mean), "mean {mean}");
        assert_eq!(
            Rng::seed_from_u64(6).gen_exp(1.0),
            Rng::seed_from_u64(6).gen_exp(1.0)
        );
        // Degenerate means still advance the stream.
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        assert_eq!(a.gen_exp(0.0), 0.0);
        let _ = b.gen_f64();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation_and_reproducible() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b: Vec<u32> = (0..20).collect();
        Rng::seed_from_u64(9).shuffle(&mut a);
        Rng::seed_from_u64(9).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(a, sorted, "a 20-element shuffle should move something");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = Rng::seed_from_u64(0).gen_range(5..5u32);
    }
}
