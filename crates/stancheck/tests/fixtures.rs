//! Integration tests over the fixture corpus and the real workspace.
//!
//! The corpus has one known-bad file per rule; each must produce its rule's
//! finding(s) and nothing unrelated. The clean fixture must produce nothing, the
//! waived fixture must produce only suppressed findings, and — the teeth — the
//! actual workspace scan must come back clean, so `cargo test` enforces the
//! determinism guard even before CI does.

use sdn_stancheck::{analyze_files, walk, Report};
use std::path::{Path, PathBuf};

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn analyze_fixture(name: &str) -> Report {
    let root = manifest_dir();
    let path = root.join("fixtures").join(name);
    assert!(path.exists(), "missing fixture {}", path.display());
    analyze_files(&root, &[path])
}

fn unwaived_rules(report: &Report) -> Vec<String> {
    report.unwaived().map(|f| f.rule.clone()).collect()
}

#[test]
fn each_bad_fixture_triggers_exactly_its_rule() {
    let cases = [
        ("bad/hash_collections.rs", "hash-collections", 6),
        ("bad/wall_clock.rs", "wall-clock", 3),
        ("bad/thread_identity.rs", "thread-identity", 2),
        ("bad/unordered_merge.rs", "unordered-merge", 1),
        ("bad/unsafe_block.rs", "unsafe-block", 1),
        ("bad/unwrap_expect.rs", "unwrap-expect", 2),
        ("bad/serve_session_wall_clock.rs", "wall-clock", 3),
    ];
    for (fixture, rule, count) in cases {
        let report = analyze_fixture(fixture);
        let rules = unwaived_rules(&report);
        assert_eq!(
            rules.len(),
            count,
            "{fixture}: expected {count} findings, got {rules:?}"
        );
        assert!(
            rules.iter().all(|r| r == rule),
            "{fixture}: expected only `{rule}`, got {rules:?}"
        );
        for finding in report.unwaived() {
            assert!(finding.line > 0, "{fixture}: finding without a line");
            assert!(
                finding.file.ends_with(fixture),
                "{fixture}: wrong file {}",
                finding.file
            );
        }
    }
}

#[test]
fn abused_waivers_are_each_reported() {
    let report = analyze_fixture("bad/bad_waivers.rs");
    let rules = unwaived_rules(&report);
    for expected in [
        "hash-collections",             // the unjustified waiver must not suppress
        "waiver-missing-justification", // ... and is itself a finding
        "waiver-unknown-rule",
        "waiver-unused",
        "waiver-syntax",
    ] {
        assert!(
            rules.iter().any(|r| r == expected),
            "expected `{expected}` in {rules:?}"
        );
    }
}

#[test]
fn clean_fixture_has_zero_findings() {
    let report = analyze_fixture("clean.rs");
    assert_eq!(
        report.unwaived_count(),
        0,
        "clean fixture flagged: {:?}",
        unwaived_rules(&report)
    );
    assert_eq!(report.waived_count(), 0);
    assert!(report.waivers.is_empty());
}

#[test]
fn waived_fixture_round_trips_justifications() {
    let report = analyze_fixture("waived.rs");
    assert_eq!(
        report.unwaived_count(),
        0,
        "waived fixture has unwaived findings: {:?}",
        unwaived_rules(&report)
    );
    assert!(report.waived_count() >= 3);
    assert_eq!(report.waivers.len(), 3);
    assert!(report.waivers.iter().all(|w| w.used));
    // Round-trip: the reasons written in the fixture come back verbatim, both in
    // the waiver records and attached to the findings they suppressed.
    let reasons: Vec<&str> = report.waivers.iter().map(|w| w.reason.as_str()).collect();
    assert!(reasons
        .iter()
        .any(|r| r.starts_with("scratch map, drained into a sorted Vec")));
    assert!(reasons
        .iter()
        .any(|r| r.starts_with("callers are required to pass non-empty slices")));
    for finding in &report.findings {
        assert!(finding.waived);
        let reason = finding.waiver_reason.as_deref().unwrap_or("");
        assert!(!reason.is_empty(), "waived finding lost its justification");
    }
    // And the JSON report carries them too.
    let json = report.to_json();
    assert!(json.contains("\"waived\": true"));
    assert!(json.contains("scratch map, drained into a sorted Vec"));
}

#[test]
fn serve_transport_fixture_is_clean_under_the_scope_rule() {
    // The allowed half of the serve scope-rule pair: the exact APIs that flag the
    // session module (`Instant::now`, `thread::current`) are sanctioned in the
    // transport module, where they cannot reach simulated state.
    let report = analyze_fixture("serve_transport.rs");
    assert_eq!(
        report.unwaived_count(),
        0,
        "transport fixture flagged: {:?}",
        unwaived_rules(&report)
    );
    assert_eq!(
        report.waived_count(),
        0,
        "transport fixture needs no waivers"
    );
}

#[test]
fn whole_bad_corpus_fails_loudly() {
    let root = manifest_dir();
    let dir = root.join("fixtures").join("bad");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures/bad exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    assert!(files.len() >= 8, "fixture corpus shrank: {files:?}");
    let report = analyze_files(&root, &files);
    assert!(
        report.unwaived_count() >= files.len(),
        "corpus produced too few findings"
    );
}

#[test]
fn json_report_is_machine_readable() {
    let report = analyze_fixture("bad/wall_clock.rs");
    let json = report.to_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"tool\": \"sdn-stancheck\""));
    assert!(json.contains("\"rule\": \"wall-clock\""));
    assert!(json.contains("\"severity\": \"error\""));
    assert!(json.contains("\"files_scanned\": 1"));
}

#[test]
fn the_workspace_itself_is_clean() {
    // The determinism guard's own acceptance criterion: scanning the real
    // workspace yields zero unwaived findings, and every waiver that exists both
    // suppresses something and carries a written justification.
    let root = manifest_dir()
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    let files = walk::workspace_files(&root).expect("walk workspace");
    assert!(files.len() > 80, "workspace walk found too few files");
    let report = analyze_files(&root, &files);
    let offenders: Vec<String> = report
        .unwaived()
        .map(|f| format!("{}:{} {} {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        offenders.is_empty(),
        "unwaived determinism hazards in the workspace:\n{}",
        offenders.join("\n")
    );
    for waiver in &report.waivers {
        assert!(
            waiver.used,
            "stale waiver at {}:{}",
            waiver.file, waiver.line
        );
        assert!(!waiver.reason.is_empty());
    }
}
