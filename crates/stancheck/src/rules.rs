//! The determinism-hazard rule set.
//!
//! Each rule is a token-level pattern plus an applicability predicate over the file's
//! crate and kind. Rules are deliberately conservative: they key on identifiers the
//! lexer guarantees are real code (not strings or comments), and scoping mistakes are
//! resolved toward *flagging* — a human then either fixes the hazard or writes a
//! justified waiver.

use crate::lexer::{Token, TokenKind};

/// How bad an unwaived finding is. Both severities fail the build; the split exists
/// so reports can rank determinism breakers above robustness smells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Breaks seeded bit-identical reproduction (hash iteration, wall clock, ...).
    Error,
    /// Robustness hazard in library code (`unwrap`/`expect`).
    Warning,
}

impl Severity {
    /// Lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// What kind of source file this is, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: `src/**` excluding binaries.
    Lib,
    /// A binary target (`src/bin/**` or `src/main.rs`).
    Bin,
    /// Integration tests (`tests/**`).
    Test,
    /// Benchmarks (`benches/**`).
    Bench,
    /// Examples (`examples/**`).
    Example,
    /// `build.rs`.
    Build,
}

impl FileKind {
    /// Label used in reports and fixture directives.
    pub fn label(self) -> &'static str {
        match self {
            FileKind::Lib => "lib",
            FileKind::Bin => "bin",
            FileKind::Test => "test",
            FileKind::Bench => "bench",
            FileKind::Example => "example",
            FileKind::Build => "build",
        }
    }

    /// Parses a fixture-directive label.
    pub fn from_label(label: &str) -> Option<FileKind> {
        Some(match label {
            "lib" => FileKind::Lib,
            "bin" => FileKind::Bin,
            "test" => FileKind::Test,
            "bench" => FileKind::Bench,
            "example" => FileKind::Example,
            "build" => FileKind::Build,
            _ => return None,
        })
    }
}

/// The crates whose code runs *inside* the simulation: a nondeterministic data
/// structure or clock here corrupts seeded results directly.
pub const SIMULATION_CRATES: [&str; 6] =
    ["core", "switch", "channel", "topology", "netsim", "traffic"];

/// Per-file analysis context: which crate the file belongs to, what kind it is, and
/// which top-level module (the first path segment under `src/`) it lives in.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Crate directory name (`core`, `bench`, ...) or `workspace` for the root facade.
    pub crate_name: String,
    /// Target kind.
    pub kind: FileKind,
    /// Top-level module under `src/` (`"transport"` for both `src/transport.rs` and
    /// `src/transport/mod.rs`; `"lib"` for `src/lib.rs`; empty outside `src/`).
    pub module: String,
}

impl FileContext {
    /// True when the file belongs to a simulation crate.
    pub fn is_simulation(&self) -> bool {
        SIMULATION_CRATES.contains(&self.crate_name.as_str())
    }

    /// True when wall-clock reads are sanctioned here: the bench crate (measuring
    /// wall time is its whole job) and the serve crate's transport module, the one
    /// place where the long-running service is *supposed* to meet the host clock.
    /// The serve session/driver modules stay restricted — a clock read there would
    /// leak wall time into the replayable command log.
    pub fn allows_wall_clock(&self) -> bool {
        self.crate_name == "bench" || (self.crate_name == "serve" && self.module == "transport")
    }

    /// True when host-thread-identity APIs are a hazard here: the simulation crates
    /// (always were), plus the serve crate outside its transport module — the
    /// session driver must behave identically whether it is driven live from a
    /// server thread or re-executed single-threaded from a command log.
    pub fn restricts_thread_identity(&self) -> bool {
        self.is_simulation() || (self.crate_name == "serve" && self.module != "transport")
    }
}

/// One rule's static metadata.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable id, used in reports and waiver comments.
    pub id: &'static str,
    /// Severity of findings.
    pub severity: Severity,
    /// One-line description for `--list-rules` and docs.
    pub summary: &'static str,
}

/// Every rule the analyzer knows, in report order.
pub const RULES: [Rule; 7] = [
    Rule {
        id: "hash-collections",
        severity: Severity::Error,
        summary: "HashMap/HashSet in a simulation crate: iteration order is \
                  nondeterministic; use BTreeMap/BTreeSet or a sorted Vec",
    },
    Rule {
        id: "wall-clock",
        severity: Severity::Error,
        summary: "SystemTime/Instant::now outside the bench crate or serve's \
                  transport module: wall-clock reads leak host timing into simulated \
                  results",
    },
    Rule {
        id: "thread-identity",
        severity: Severity::Error,
        summary: "thread::current/ThreadId/available_parallelism in a simulation \
                  crate or serve's session/driver modules: thread identity or host \
                  core count feeding simulation logic breaks seed determinism",
    },
    Rule {
        id: "unordered-merge",
        severity: Severity::Error,
        summary: "par-style iteration (rayon et al.): parallel merges must be \
                  explicitly ordered; unordered reduction reorders floating-point \
                  and sequence results",
    },
    Rule {
        id: "unsafe-block",
        severity: Severity::Error,
        summary: "unsafe code: every crate in this workspace forbids it; any use \
                  needs an explicit audit trail",
    },
    Rule {
        id: "boxed-event-payload",
        severity: Severity::Error,
        summary: "Box in netsim library code: the event-dispatch path stores \
                  payloads in the slab arena and pooled buffers; a per-event heap \
                  allocation reintroduces the malloc traffic the calendar rewrite \
                  removed",
    },
    Rule {
        id: "unwrap-expect",
        severity: Severity::Warning,
        summary: "unwrap/expect in library (non-test, non-binary) code: panics in \
                  library paths abort whole campaigns; return errors or justify \
                  infallibility with a waiver",
    },
];

/// Looks up a rule by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// One raw finding (before waiver resolution).
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// The rule that fired.
    pub rule: &'static Rule,
    /// 1-based source line.
    pub line: u32,
    /// Human-oriented message naming the exact token that triggered.
    pub message: String,
}

/// Identifiers whose presence alone constitutes an unordered-merge hazard.
const PAR_IDENTS: [&str; 6] = [
    "rayon",
    "par_iter",
    "into_par_iter",
    "par_bridge",
    "par_chunks",
    "par_extend",
];

/// Runs every rule over a lexed token stream.
///
/// `mask[i]` marks tokens inside test-only scopes (see [`crate::scope::test_mask`]);
/// most rules skip those.
pub fn scan(tokens: &[Token<'_>], mask: &[bool], ctx: &FileContext) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    let in_test_target = matches!(
        ctx.kind,
        FileKind::Test | FileKind::Bench | FileKind::Example
    );
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident {
            continue;
        }
        let in_test = mask[i] || in_test_target;
        match token.text {
            "HashMap" | "HashSet" if ctx.is_simulation() && !in_test => {
                findings.push(finding(
                    "hash-collections",
                    token.line,
                    format!(
                        "`{}` in simulation crate `{}`: iteration order varies per \
                         process; use BTreeMap/BTreeSet or a Vec sorted on a stable key",
                        token.text, ctx.crate_name
                    ),
                ));
            }
            "SystemTime" if !ctx.allows_wall_clock() && !in_test => {
                findings.push(finding(
                    "wall-clock",
                    token.line,
                    format!(
                        "`SystemTime` in crate `{}`: simulated code must derive time \
                         from the simulator clock, not the host",
                        ctx.crate_name
                    ),
                ));
            }
            "Instant"
                if !ctx.allows_wall_clock()
                    && !in_test
                    && next_is(tokens, i, &[":", ":", "now"]) =>
            {
                findings.push(finding(
                    "wall-clock",
                    token.line,
                    format!(
                        "`Instant::now` in crate `{}`: wall-clock timing belongs in \
                         the bench crate or serve's transport module",
                        ctx.crate_name
                    ),
                ));
            }
            "available_parallelism" | "ThreadId" if ctx.restricts_thread_identity() && !in_test => {
                findings.push(finding(
                    "thread-identity",
                    token.line,
                    format!(
                        "`{}` in crate `{}`: host core count / thread identity must \
                         never influence simulated behavior",
                        token.text, ctx.crate_name
                    ),
                ));
            }
            "thread"
                if ctx.restricts_thread_identity()
                    && !in_test
                    && next_is(tokens, i, &[":", ":", "current"]) =>
            {
                findings.push(finding(
                    "thread-identity",
                    token.line,
                    format!(
                        "`thread::current` in crate `{}`: thread identity feeding \
                         simulation logic breaks seed determinism",
                        ctx.crate_name
                    ),
                ));
            }
            t if PAR_IDENTS.contains(&t) && !in_test => {
                findings.push(finding(
                    "unordered-merge",
                    token.line,
                    format!(
                        "`{t}`: parallel iteration merges must be explicitly ordered \
                         (merge in seed/index order like the scenario runner does)"
                    ),
                ));
            }
            "unsafe" => {
                findings.push(finding(
                    "unsafe-block",
                    token.line,
                    "`unsafe` is forbidden across the workspace".to_string(),
                ));
            }
            "Box" if ctx.crate_name == "netsim" && ctx.kind == FileKind::Lib && !in_test => {
                findings.push(finding(
                    "boxed-event-payload",
                    token.line,
                    "`Box` in the netsim event-dispatch path: payloads live in the \
                     simulator's slab arena and pooled delivery buffers; allocate \
                     from the pool (or justify the indirection with a waiver)"
                        .to_string(),
                ));
            }
            "unwrap" | "expect"
                if ctx.kind == FileKind::Lib
                    && !mask[i]
                    && i > 0
                    && tokens[i - 1].text == "."
                    && next_is(tokens, i, &["("]) =>
            {
                findings.push(finding(
                    "unwrap-expect",
                    token.line,
                    format!(
                        "`.{}(...)` in library code: a panic here aborts the whole \
                         campaign; bubble an error or waive with the reason it cannot \
                         fail",
                        token.text
                    ),
                ));
            }
            _ => {}
        }
    }
    findings
}

fn finding(id: &str, line: u32, message: String) -> RawFinding {
    RawFinding {
        rule: rule_by_id(id).unwrap_or(&RULES[0]),
        line,
        message,
    }
}

/// True when the tokens after `i` match `expected` texts exactly.
fn next_is(tokens: &[Token<'_>], i: usize, expected: &[&str]) -> bool {
    expected
        .iter()
        .enumerate()
        .all(|(k, want)| matches!(tokens.get(i + 1 + k), Some(t) if t.text == *want))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::test_mask;

    fn scan_str(src: &str, crate_name: &str, kind: FileKind) -> Vec<RawFinding> {
        scan_str_in(src, crate_name, kind, "lib")
    }

    fn scan_str_in(src: &str, crate_name: &str, kind: FileKind, module: &str) -> Vec<RawFinding> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        scan(
            &lexed.tokens,
            &mask,
            &FileContext {
                crate_name: crate_name.to_string(),
                kind,
                module: module.to_string(),
            },
        )
    }

    fn ids(findings: &[RawFinding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule.id).collect()
    }

    #[test]
    fn hashmap_flagged_only_in_simulation_crates() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        assert_eq!(scan_str(src, "core", FileKind::Lib).len(), 3);
        assert!(scan_str(src, "bench", FileKind::Lib).is_empty());
        assert!(scan_str(src, "metrics", FileKind::Lib).is_empty());
    }

    #[test]
    fn hashmap_in_test_module_is_fine() {
        let src = "#[cfg(test)]\nmod tests { use std::collections::HashMap; fn f() { HashMap::<u8, u8>::new(); } }";
        assert!(scan_str(src, "core", FileKind::Lib).is_empty());
    }

    #[test]
    fn wall_clock_allows_bench_crate() {
        let src = "fn t() { let s = std::time::Instant::now(); }";
        assert_eq!(ids(&scan_str(src, "netsim", FileKind::Lib)), ["wall-clock"]);
        assert!(scan_str(src, "bench", FileKind::Lib).is_empty());
        // `Instant` as a type alone (stored, compared) is not flagged — only `::now`.
        let stored = "struct S { at: Instant }";
        assert!(scan_str(stored, "netsim", FileKind::Lib).is_empty());
        // SystemTime is flagged on sight: there is no deterministic use for it.
        let sys = "fn t() -> SystemTime { unreachable!() }";
        assert_eq!(
            ids(&scan_str(sys, "metrics", FileKind::Lib)),
            ["wall-clock"]
        );
    }

    #[test]
    fn thread_identity_rules() {
        let src = "fn n() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }";
        assert_eq!(
            ids(&scan_str(src, "core", FileKind::Lib)),
            ["thread-identity"]
        );
        assert!(scan_str(src, "metrics", FileKind::Lib).is_empty());
        let cur = "fn id() { let t = thread::current().id(); }";
        assert_eq!(
            ids(&scan_str(cur, "core", FileKind::Lib)),
            ["thread-identity"]
        );
        // thread::scope / spawn are the *sanctioned* primitives.
        let scoped = "fn s() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
        assert!(scan_str(scoped, "core", FileKind::Lib).is_empty());
    }

    #[test]
    fn serve_transport_is_the_only_serve_module_allowed_wall_clock() {
        let src = "fn t() { let s = std::time::Instant::now(); }";
        assert!(scan_str_in(src, "serve", FileKind::Lib, "transport").is_empty());
        assert_eq!(
            ids(&scan_str_in(src, "serve", FileKind::Lib, "session")),
            ["wall-clock"]
        );
        let sys = "fn t() -> SystemTime { unreachable!() }";
        assert!(scan_str_in(sys, "serve", FileKind::Lib, "transport").is_empty());
        assert_eq!(
            ids(&scan_str_in(sys, "serve", FileKind::Lib, "log")),
            ["wall-clock"]
        );
    }

    #[test]
    fn serve_restricts_thread_identity_outside_transport() {
        let cur = "fn id() { let t = thread::current().id(); }";
        assert_eq!(
            ids(&scan_str_in(cur, "serve", FileKind::Lib, "session")),
            ["thread-identity"]
        );
        assert!(scan_str_in(cur, "serve", FileKind::Lib, "transport").is_empty());
        // Non-serve, non-simulation crates stay unrestricted.
        assert!(scan_str(cur, "metrics", FileKind::Lib).is_empty());
    }

    #[test]
    fn par_idents_flagged_everywhere_outside_tests() {
        let src = "fn f(v: &[u32]) { v.par_iter().for_each(|_| {}); }";
        assert_eq!(
            ids(&scan_str(src, "metrics", FileKind::Lib)),
            ["unordered-merge"]
        );
    }

    #[test]
    fn unsafe_flagged_even_in_tests() {
        let src =
            "#[cfg(test)]\nmod tests { fn f() { unsafe { core::hint::unreachable_unchecked() } } }";
        assert_eq!(ids(&scan_str(src, "tags", FileKind::Lib)), ["unsafe-block"]);
    }

    #[test]
    fn unwrap_expect_only_in_lib_non_test() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }\nfn g(r: Result<u32, ()>) -> u32 { r.expect(\"msg\") }";
        assert_eq!(
            ids(&scan_str(src, "metrics", FileKind::Lib)),
            ["unwrap-expect", "unwrap-expect"]
        );
        assert!(scan_str(src, "metrics", FileKind::Bin).is_empty());
        assert!(scan_str(src, "metrics", FileKind::Test).is_empty());
        // unwrap_or and friends are fine.
        let or = "fn f(o: Option<u32>) -> u32 { o.unwrap_or(1) }";
        assert!(scan_str(or, "metrics", FileKind::Lib).is_empty());
        // A method *named* unwrap on a path (Self::unwrap) is not a `.unwrap()` call.
        let path = "fn f() { Wrapper::unwrap(w); }";
        assert!(scan_str(path, "metrics", FileKind::Lib).is_empty());
    }

    #[test]
    fn boxed_payload_only_in_netsim_lib() {
        let src = "pub struct Ev { body: Box<[u8]> }\nfn f() { let _ = Box::new(7u32); }";
        assert_eq!(
            ids(&scan_str(src, "netsim", FileKind::Lib)),
            ["boxed-event-payload", "boxed-event-payload"]
        );
        // Other crates and netsim's own tests/benches may box freely.
        assert!(scan_str(src, "core", FileKind::Lib).is_empty());
        assert!(scan_str(src, "netsim", FileKind::Test).is_empty());
        let in_test_mod = "#[cfg(test)]\nmod tests { fn f() { let _ = Box::new(1u8); } }";
        assert!(scan_str(in_test_mod, "netsim", FileKind::Lib).is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = r#"
            // HashMap SystemTime unsafe unwrap
            fn f() -> &'static str { "HashMap unsafe par_iter" }
        "#;
        assert!(scan_str(src, "core", FileKind::Lib).is_empty());
    }
}
