//! The `sdn-stancheck` command-line entry point.
//!
//! ```text
//! sdn-stancheck [OPTIONS] [PATHS...]
//!
//!   --root DIR     workspace root (default: discovered from the working directory)
//!   --json         print the JSON report to stdout (human summary moves to stderr)
//!   --out PATH     also write the JSON report to PATH
//!   --list-rules   print the rule table and exit
//!   PATHS...       explicit files or directories to scan instead of the workspace
//!
//! exit status: 0 = no unwaived findings, 1 = unwaived findings, 2 = usage/IO error
//! ```

use sdn_stancheck::{analyze_files, walk, Report, Severity, RULES};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: Option<PathBuf>,
    json: bool,
    out: Option<PathBuf>,
    list_rules: bool,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: false,
        out: None,
        list_rules: false,
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let value = args.next().ok_or("--root needs a directory argument")?;
                opts.root = Some(PathBuf::from(value));
            }
            "--json" => opts.json = true,
            "--out" => {
                let value = args.next().ok_or("--out needs a file argument")?;
                opts.out = Some(PathBuf::from(value));
            }
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => {
                println!(
                    "sdn-stancheck: static determinism guard for the Renaissance workspace\n\n\
                     usage: sdn-stancheck [--root DIR] [--json] [--out PATH] [--list-rules] [PATHS...]\n\n\
                     Scans every Rust source in the workspace (or just PATHS) for determinism\n\
                     hazards. Suppress a finding with an auditable inline waiver:\n\n\
                     \t// stancheck: allow(<rule>) — <written justification>\n\n\
                     exit status: 0 clean, 1 unwaived findings, 2 usage/IO error"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("sdn-stancheck: {message}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in &RULES {
            println!(
                "{:18} [{}] {}",
                rule.id,
                rule.severity.label(),
                rule.summary
            );
        }
        return ExitCode::SUCCESS;
    }

    let root = match opts.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| walk::find_workspace_root(&cwd))
    }) {
        Some(root) => root,
        None => {
            eprintln!("sdn-stancheck: no workspace root found (pass --root DIR)");
            return ExitCode::from(2);
        }
    };

    let files = if opts.paths.is_empty() {
        match walk::workspace_files(&root) {
            Ok(files) => files,
            Err(err) => {
                eprintln!("sdn-stancheck: cannot walk {}: {err}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        let mut files = Vec::new();
        for path in &opts.paths {
            let path = if path.is_absolute() {
                path.clone()
            } else {
                root.join(path)
            };
            if path.is_dir() {
                // Explicit directories are scanned in full — including fixture dirs
                // the workspace walk skips (that is how CI proves the corpus fails).
                match collect_all(&path) {
                    Ok(mut found) => files.append(&mut found),
                    Err(err) => {
                        eprintln!("sdn-stancheck: cannot walk {}: {err}", path.display());
                        return ExitCode::from(2);
                    }
                }
            } else {
                files.push(path);
            }
        }
        files.sort();
        files
    };

    let report = analyze_files(&root, &files);

    if let Some(out_path) = &opts.out {
        if let Err(err) = std::fs::write(out_path, report.to_json()) {
            eprintln!("sdn-stancheck: cannot write {}: {err}", out_path.display());
            return ExitCode::from(2);
        }
    }
    if opts.json {
        print!("{}", report.to_json());
        let _ = print_human(&mut std::io::stderr(), &report);
    } else {
        let _ = print_human(&mut std::io::stdout(), &report);
    }

    if report.unwaived_count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Collects every `.rs` under `dir` with no skip list (explicit-path mode).
fn collect_all(dir: &std::path::Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            out.append(&mut collect_all(&path)?);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(out)
}

fn print_human(to: &mut dyn Write, report: &Report) -> std::io::Result<()> {
    let mut unwaived = 0usize;
    let mut errors = 0usize;
    for f in &report.findings {
        if f.waived {
            continue;
        }
        unwaived += 1;
        if f.severity == Severity::Error {
            errors += 1;
        }
        writeln!(
            to,
            "{}:{}: [{}] {}: {}",
            f.file,
            f.line,
            f.severity.label(),
            f.rule,
            f.message
        )?;
    }
    let waived = report.waived_count();
    if waived > 0 {
        writeln!(to, "{waived} finding(s) suppressed by justified waivers:")?;
        for f in report.findings.iter().filter(|f| f.waived) {
            writeln!(
                to,
                "  {}:{}: {} — {}",
                f.file,
                f.line,
                f.rule,
                f.waiver_reason.as_deref().unwrap_or("")
            )?;
        }
    }
    writeln!(
        to,
        "stancheck: {} file(s), {} unwaived finding(s) ({} error, {} warning), {} waived",
        report.files_scanned,
        unwaived,
        errors,
        unwaived - errors,
        waived
    )?;
    Ok(())
}
