//! Test-scope detection over the token stream.
//!
//! Library rules (like `unwrap-expect`) must not fire inside `#[cfg(test)]` modules or
//! `#[test]` functions: test code is allowed to panic and to be sloppy about clocks.
//! This pass walks the token stream once and produces a parallel boolean mask —
//! `mask[i]` is true when token `i` lives inside a test-only scope.
//!
//! The detection is a heuristic over tokens, not a full parse: an attribute that
//! mentions `test` (and does not mention `not`, so `#[cfg(not(test))]` stays
//! production code) arms a pending flag; the next `{` opens a test scope that covers
//! everything to the matching `}`. A `;` before any `{` disarms the flag, so
//! `#[cfg(test)] use foo;` does not quarantine the rest of the file.

use crate::lexer::Token;

/// Computes the test mask for `tokens`: `true` = inside `#[test]`/`#[cfg(test)]`.
pub fn test_mask(tokens: &[Token<'_>]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    // Brace depths at which a test scope was opened.
    let mut test_scopes: Vec<usize> = Vec::new();
    let mut depth = 0usize;
    let mut pending = false;
    let mut i = 0usize;
    while i < tokens.len() {
        let in_test = !test_scopes.is_empty();
        let text = tokens[i].text;
        match text {
            "#" => {
                // Attribute: `#` `[` ... `]` (or `#![...]`). Scan its tokens for
                // `test` without `not`.
                let mut j = i + 1;
                if matches!(tokens.get(j), Some(t) if t.text == "!") {
                    j += 1;
                }
                if matches!(tokens.get(j), Some(t) if t.text == "[") {
                    let mut bracket_depth = 1usize;
                    let mut k = j + 1;
                    let mut saw_test = false;
                    let mut saw_not = false;
                    while k < tokens.len() && bracket_depth > 0 {
                        match tokens[k].text {
                            "[" => bracket_depth += 1,
                            "]" => bracket_depth -= 1,
                            "test" | "doctest" => saw_test = true,
                            "not" => saw_not = true,
                            _ => {}
                        }
                        k += 1;
                    }
                    if saw_test && !saw_not {
                        pending = true;
                    }
                    for slot in mask.iter_mut().take(k).skip(i) {
                        *slot = in_test;
                    }
                    i = k;
                    continue;
                }
            }
            "{" => {
                if pending {
                    test_scopes.push(depth);
                    pending = false;
                    // The brace itself belongs to the test scope it opens.
                    mask[i] = true;
                    depth += 1;
                    i += 1;
                    continue;
                }
                depth += 1;
            }
            "}" => {
                mask[i] = in_test;
                depth = depth.saturating_sub(1);
                if test_scopes.last() == Some(&depth) {
                    test_scopes.pop();
                }
                i += 1;
                continue;
            }
            ";" => {
                // An item ended without a body: the armed attribute applied to a
                // braceless item (`use`, `type`, ...), not to a scope.
                pending = false;
            }
            _ => {}
        }
        mask[i] = in_test;
        i += 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn masked_idents(src: &str) -> Vec<(String, bool)> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        lexed
            .tokens
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.kind == crate::lexer::TokenKind::Ident)
            .map(|(t, m)| (t.text.to_string(), *m))
            .collect()
    }

    fn is_test(src: &str, ident: &str) -> bool {
        masked_idents(src)
            .into_iter()
            .find(|(t, _)| t == ident)
            .map(|(_, m)| m)
            .unwrap_or_else(|| panic!("ident {ident} not found"))
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let src = r#"
            fn production() { real() }
            #[cfg(test)]
            mod tests {
                #[test]
                fn check() { helper() }
            }
            fn also_production() { real2() }
        "#;
        assert!(!is_test(src, "real"));
        assert!(is_test(src, "helper"));
        assert!(!is_test(src, "real2"));
    }

    #[test]
    fn test_fn_without_module_is_masked() {
        let src = r#"
            #[test]
            fn lone() { probe() }
            fn after() { live() }
        "#;
        assert!(is_test(src, "probe"));
        assert!(!is_test(src, "live"));
    }

    #[test]
    fn cfg_not_test_stays_production() {
        let src = r#"
            #[cfg(not(test))]
            fn guard() { live_path() }
        "#;
        assert!(!is_test(src, "live_path"));
    }

    #[test]
    fn braceless_item_disarms_the_flag() {
        let src = r#"
            #[cfg(test)]
            use std::collections::BTreeMap;
            fn production() { real() }
        "#;
        assert!(!is_test(src, "real"));
    }

    #[test]
    fn nested_braces_stay_in_scope() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn helper() { if cond() { inner() } }
            }
            fn out() { free() }
        "#;
        assert!(is_test(src, "inner"));
        assert!(!is_test(src, "free"));
    }
}
