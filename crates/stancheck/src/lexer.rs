//! A minimal hand-rolled Rust lexer, just deep enough for hazard scanning.
//!
//! The analyzer only needs identifiers and punctuation with accurate line numbers,
//! plus the comment stream (waivers live in comments). Everything that could hide a
//! false positive — string literals, raw strings, char literals, lifetimes, nested
//! block comments — is recognized and skipped, so `"HashMap"` inside a string or a
//! doc comment never reaches the rule engine.

/// What a [`Token`] is: a word or a single punctuation character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword: `[A-Za-z_][A-Za-z0-9_]*`.
    Ident,
    /// A single punctuation character (`.`, `:`, `{`, `#`, ...).
    Punct,
}

/// One lexed token, borrowing its text from the source.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    /// The token text (one char for punctuation).
    pub text: &'a str,
    /// 1-based source line the token starts on.
    pub line: u32,
    /// Word or punctuation.
    pub kind: TokenKind,
}

/// One comment (line or block, doc or plain), borrowing from the source.
#[derive(Debug, Clone, Copy)]
pub struct Comment<'a> {
    /// The full comment text including the `//` / `/*` introducer.
    pub text: &'a str,
    /// 1-based line the comment starts on.
    pub start_line: u32,
    /// 1-based line the comment ends on (differs from `start_line` for blocks).
    pub end_line: u32,
}

/// The lexer output: the code token stream and the comment stream, separately.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    /// Code tokens in source order.
    pub tokens: Vec<Token<'a>>,
    /// Comments in source order.
    pub comments: Vec<Comment<'a>>,
}

/// Lexes `src` into tokens and comments. Never fails: unterminated constructs are
/// consumed to end-of-file, which is the forgiving behavior a linter wants.
pub fn lex(src: &str) -> Lexed<'_> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed<'a>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Lexed<'a> {
        while self.pos < self.bytes.len() {
            let c = self.bytes[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => {
                    self.pos += 1;
                    self.string_body();
                }
                b'\'' => self.quote(),
                b'r' | b'b' if self.raw_or_byte_literal() => {}
                _ if c.is_ascii_alphabetic() || c == b'_' => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    let start = self.pos;
                    // Multi-byte UTF-8 punctuation (em dashes in comments never get
                    // here, but source text may contain them in odd places): consume
                    // the full code point so we never split a character.
                    let width = utf8_width(c);
                    self.pos += width;
                    self.out.tokens.push(Token {
                        text: &self.src[start..self.pos],
                        line: self.line,
                        kind: TokenKind::Punct,
                    });
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.out.comments.push(Comment {
            text: &self.src[start..self.pos],
            start_line: self.line,
            end_line: self.line,
        });
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            match self.bytes[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                _ => self.pos += 1,
            }
        }
        self.out.comments.push(Comment {
            text: &self.src[start..self.pos],
            start_line,
            end_line: self.line,
        });
    }

    /// Consumes a (non-raw) string body; `pos` is just past the opening quote.
    fn string_body(&mut self) {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    self.pos += 1;
                    return;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// A `'` is either a lifetime (`'a`) or a char literal (`'x'`, `'\n'`).
    fn quote(&mut self) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime =
            matches!(next, Some(c) if c.is_ascii_alphabetic() || c == b'_') && after != Some(b'\'');
        self.pos += 1;
        if is_lifetime {
            while self.pos < self.bytes.len() {
                let c = self.bytes[self.pos];
                if c.is_ascii_alphanumeric() || c == b'_' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            return;
        }
        // Char literal: consume to the closing quote, honoring escapes.
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => return, // stray quote; bail at end of line
                _ => self.pos += 1,
            }
        }
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`. Returns false if
    /// the `r`/`b` starts a plain identifier instead (caller then lexes the ident).
    fn raw_or_byte_literal(&mut self) -> bool {
        let mut j = self.pos;
        // Optional second prefix letter: rb / br.
        let first = self.bytes[j];
        j += 1;
        if let Some(&second) = self.bytes.get(j) {
            if (first == b'b' && second == b'r') || (first == b'r' && second == b'b') {
                j += 1;
            }
        }
        let raw = self.src[self.pos..j].contains('r');
        if first == b'b' && !raw {
            // b"..." or b'x'
            match self.bytes.get(j) {
                Some(b'"') => {
                    self.pos = j + 1;
                    self.string_body();
                    return true;
                }
                Some(b'\'') => {
                    self.pos = j;
                    self.quote();
                    return true;
                }
                _ => return false,
            }
        }
        // Raw form: count hashes then require a quote.
        let mut hashes = 0usize;
        while self.bytes.get(j + hashes) == Some(&b'#') {
            hashes += 1;
        }
        if self.bytes.get(j + hashes) != Some(&b'"') {
            return false;
        }
        self.pos = j + hashes + 1;
        // Scan for `"` followed by `hashes` hash marks.
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    let mut k = 0usize;
                    while k < hashes && self.peek(1 + k) == Some(b'#') {
                        k += 1;
                    }
                    self.pos += 1 + k;
                    if k == hashes {
                        return true;
                    }
                }
                _ => self.pos += 1,
            }
        }
        true
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let c = self.bytes[self.pos];
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.out.tokens.push(Token {
            text: &self.src[start..self.pos],
            line: self.line,
            kind: TokenKind::Ident,
        });
    }

    /// Numbers are skipped entirely; the only subtlety is not swallowing the `..` of
    /// a range expression (`0..10`) as a float's decimal point.
    fn number(&mut self) {
        while self.pos < self.bytes.len() {
            let c = self.bytes[self.pos];
            let decimal_point = c == b'.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit());
            if c.is_ascii_alphanumeric() || c == b'_' || decimal_point {
                self.pos += 1;
            } else {
                break;
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "HashMap in a string";
            // HashMap in a line comment
            /* HashMap in /* a nested */ block comment */
            let b = r#"HashMap in a raw string"#;
            let c = b"HashMap in bytes";
        "##;
        let words = idents(src);
        assert!(
            !words.contains(&"HashMap"),
            "leaked from literal: {words:?}"
        );
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let words = idents(src);
        assert!(words.contains(&"str"));
        // The lifetime's `a` must not appear as a standalone identifier, and the
        // char literal body must be skipped.
        assert!(!words.contains(&"x") || words.iter().filter(|w| **w == "x").count() == 1);
    }

    #[test]
    fn line_numbers_are_accurate() {
        let src = "first\nsecond\n\nfourth";
        let toks = lex(src).tokens;
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn multiline_strings_track_lines() {
        let src = "let s = \"one\ntwo\nthree\";\nafter";
        let toks = lex(src);
        let after = toks.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 4);
    }

    #[test]
    fn range_is_not_a_float() {
        let src = "for i in 0..10 { touch(i) }";
        let words = idents(src);
        assert_eq!(words, vec!["for", "i", "in", "touch", "i"]);
    }

    #[test]
    fn block_comment_spans_are_recorded() {
        let src = "a\n/* one\ntwo */\nb";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].start_line, 2);
        assert_eq!(lexed.comments[0].end_line, 3);
        assert_eq!(lexed.tokens[1].line, 4);
    }

    #[test]
    fn raw_identifier_prefixes_do_not_eat_code() {
        // `r` and `b` as plain identifiers must lex as identifiers.
        let src = "let r = b + r2;";
        let words = idents(src);
        assert_eq!(words, vec!["let", "r", "b", "r2"]);
    }
}
