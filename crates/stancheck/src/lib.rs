//! `sdn-stancheck` — the workspace determinism guard.
//!
//! Every figure this repository reproduces rests on one contract: **a seeded run is
//! bit-identical across thread counts, machines, and refactors.** The scenario
//! runner's parallel/sequential property test and the BENCH baseline gate enforce
//! that contract dynamically; this crate enforces it statically, flagging the code
//! patterns that historically break it before they reach a baseline:
//!
//! | rule | hazard |
//! |------|--------|
//! | `hash-collections` | `HashMap`/`HashSet` in simulation crates (iteration order) |
//! | `wall-clock` | `SystemTime` / `Instant::now` outside the bench crate or serve's transport module |
//! | `thread-identity` | `thread::current` / `ThreadId` / `available_parallelism` in simulation crates or serve outside transport |
//! | `unordered-merge` | `rayon`-style `par_*` iteration anywhere outside tests |
//! | `unsafe-block` | `unsafe` anywhere (the workspace forbids it) |
//! | `boxed-event-payload` | `Box` in netsim library code (per-event heap allocation in the dispatch path) |
//! | `unwrap-expect` | `.unwrap()` / `.expect(...)` in library, non-test code |
//!
//! The tool is hand-rolled and dependency-free, in the same offline idiom as
//! `sdn-rng` and the `bench::report` JSON emitter: a small Rust lexer
//! ([`lexer`]) that is literal-aware (no false positives from strings or doc
//! comments), a test-scope mask ([`scope`]), token-pattern rules ([`rules`]), and
//! an auditable waiver channel ([`waiver`]):
//!
//! ```text
//! // stancheck: allow(<rule>) — <written justification>
//! ```
//!
//! Run it locally with `cargo run -p sdn-stancheck`; CI runs it in the lint stage
//! and fails on any unwaived finding. `--json` emits the machine-readable report
//! uploaded as a CI artifact.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;
pub mod waiver;
pub mod walk;

use std::path::Path;

pub use analyze::{analyze_source, fixture_directive};
pub use report::{Finding, Report, WaiverRecord};
pub use rules::{FileContext, FileKind, Rule, Severity, RULES, SIMULATION_CRATES};

/// Analyzes a set of files (absolute paths) against `root`-relative display paths,
/// honoring fixture directives. Files that cannot be read are reported as findings
/// rather than silently skipped — a guard that cannot see a file must say so.
pub fn analyze_files(root: &Path, files: &[std::path::PathBuf]) -> Report {
    let mut out = Report::default();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(path);
        let rel_display = rel.to_string_lossy().replace('\\', "/");
        let src = match std::fs::read_to_string(path) {
            Ok(src) => src,
            Err(err) => {
                out.findings.push(Finding {
                    rule: "io-error".to_string(),
                    severity: Severity::Error,
                    file: rel_display,
                    line: 0,
                    message: format!("cannot read file: {err}"),
                    waived: false,
                    waiver_reason: None,
                });
                continue;
            }
        };
        let ctx = fixture_directive(&src).unwrap_or_else(|| walk::classify(rel));
        let (findings, waivers) = analyze_source(&rel_display, &src, &ctx);
        out.findings.extend(findings);
        out.waivers.extend(waivers);
        out.files_scanned += 1;
    }
    out
}
