//! Workspace discovery and file classification.
//!
//! The walker is deterministic by construction (paths are sorted before analysis —
//! a hazard scanner whose own output depends on `read_dir` order would fail its own
//! audit) and skips build output, VCS metadata, and the fixture corpus: fixtures are
//! *known-bad by design* and only scanned when named explicitly.

use crate::rules::{FileContext, FileKind};
use std::io;
use std::path::{Path, PathBuf};

/// Directory names the workspace walk never descends into.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

/// Recursively collects every `.rs` file under `root`, sorted lexicographically.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect(root, &mut files)?;
    files.sort();
    Ok(files)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Classifies a repo-relative path into its crate and target kind.
pub fn classify(rel: &Path) -> FileContext {
    let components: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let crate_name = if components.len() > 2 && components[0] == "crates" {
        components[1].clone()
    } else {
        "workspace".to_string()
    };
    let file_name = components.last().map(String::as_str).unwrap_or("");
    let kind = if file_name == "build.rs" {
        FileKind::Build
    } else if components.iter().any(|c| c == "bin") || file_name == "main.rs" {
        FileKind::Bin
    } else if components.iter().any(|c| c == "tests") {
        FileKind::Test
    } else if components.iter().any(|c| c == "benches") {
        FileKind::Bench
    } else if components.iter().any(|c| c == "examples") {
        FileKind::Example
    } else {
        FileKind::Lib
    };
    // Top-level module under `src/`: the first path segment after `src` (its file
    // stem for direct children, the directory name otherwise). Scoped rules — e.g.
    // serve's transport-only wall-clock allowance — key on this.
    let module = components
        .iter()
        .position(|c| c == "src")
        .and_then(|i| components.get(i + 1))
        .map(|seg| seg.strip_suffix(".rs").unwrap_or(seg).to_string())
        .unwrap_or_default();
    FileContext {
        crate_name,
        kind,
        module,
    }
}

/// Walks upward from `start` to the enclosing workspace root (the first directory
/// whose `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str) -> FileContext {
        classify(Path::new(path))
    }

    #[test]
    fn crate_and_kind_classification() {
        let c = ctx("crates/core/src/harness.rs");
        assert_eq!(c.crate_name, "core");
        assert_eq!(c.kind, FileKind::Lib);
        assert!(c.is_simulation());

        let c = ctx("crates/bench/src/bin/scale_campaign.rs");
        assert_eq!(c.crate_name, "bench");
        assert_eq!(c.kind, FileKind::Bin);
        assert!(!c.is_simulation());

        assert_eq!(ctx("crates/bench/benches/hotpath.rs").kind, FileKind::Bench);
        assert_eq!(ctx("crates/bench/tests/gate.rs").kind, FileKind::Test);
        assert_eq!(ctx("tests/properties.rs").kind, FileKind::Test);
        assert_eq!(ctx("examples/quickstart.rs").kind, FileKind::Example);
        assert_eq!(ctx("src/lib.rs").kind, FileKind::Lib);
        assert_eq!(ctx("src/lib.rs").crate_name, "workspace");
        assert_eq!(ctx("crates/rng/build.rs").kind, FileKind::Build);
        assert_eq!(ctx("crates/stancheck/src/main.rs").kind, FileKind::Bin);
    }

    #[test]
    fn module_is_the_first_segment_under_src() {
        assert_eq!(ctx("crates/serve/src/transport.rs").module, "transport");
        assert_eq!(ctx("crates/serve/src/transport/mod.rs").module, "transport");
        assert_eq!(ctx("crates/serve/src/session.rs").module, "session");
        assert_eq!(ctx("crates/serve/src/bin/sdn-serve-cli.rs").module, "bin");
        assert_eq!(ctx("crates/core/src/lib.rs").module, "lib");
        assert_eq!(ctx("crates/bench/tests/gate.rs").module, "");
        // Only transport gets the wall-clock allowance.
        assert!(ctx("crates/serve/src/transport.rs").allows_wall_clock());
        assert!(!ctx("crates/serve/src/session.rs").allows_wall_clock());
        assert!(ctx("crates/serve/src/session.rs").restricts_thread_identity());
        assert!(!ctx("crates/serve/src/transport.rs").restricts_thread_identity());
    }
}
