//! Waiver comments: auditable, per-line suppression with a mandatory justification.
//!
//! Syntax (in a line or block comment):
//!
//! ```text
//! // stancheck: allow(rule-id) — justification for why this is safe
//! // stancheck: allow(rule-a, rule-b) - shared justification
//! ```
//!
//! A waiver suppresses findings of the named rule(s) on the comment's own line and on
//! the line immediately after it (so it can trail the offending expression or sit on
//! its own line above it). The justification — everything after the closing paren,
//! minus a leading separator (`—`, `-`, `:`) — must be non-empty: a waiver without a
//! written reason is itself reported as a finding, as is a waiver naming an unknown
//! rule or one that suppresses nothing.
//!
//! Waivers are only recognized in *plain* comments (`//`, `/* */`). Doc comments
//! (`///`, `//!`, `/**`, `/*!`) are rendered documentation — they cite waiver syntax
//! as prose (this very module does) and must never act as suppressions.

use crate::lexer::Comment;

/// One parsed waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule ids this waiver suppresses.
    pub rules: Vec<String>,
    /// Line the waiver comment starts on.
    pub line: u32,
    /// Last line the waiver covers (`end_line + 1` of the comment).
    pub covers_through: u32,
    /// The written justification (may be empty — reported as a finding downstream).
    pub reason: String,
}

/// A malformed waiver: mentions `stancheck:` but does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverSyntaxError {
    /// Line of the malformed comment.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

/// Scans the comment stream for waivers. Returns parsed waivers and syntax errors.
pub fn parse_waivers(comments: &[Comment<'_>]) -> (Vec<Waiver>, Vec<WaiverSyntaxError>) {
    let mut waivers = Vec::new();
    let mut errors = Vec::new();
    for comment in comments {
        if is_doc_comment(comment.text) {
            continue;
        }
        let Some(at) = comment.text.find("stancheck:") else {
            continue;
        };
        let rest = comment.text[at + "stancheck:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            errors.push(WaiverSyntaxError {
                line: comment.start_line,
                message: "expected `allow(<rule>)` after `stancheck:`".to_string(),
            });
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            errors.push(WaiverSyntaxError {
                line: comment.start_line,
                message: "expected `(` after `stancheck: allow`".to_string(),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            errors.push(WaiverSyntaxError {
                line: comment.start_line,
                message: "unclosed `(` in `stancheck: allow(...)`".to_string(),
            });
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            errors.push(WaiverSyntaxError {
                line: comment.start_line,
                message: "`stancheck: allow()` names no rules".to_string(),
            });
            continue;
        }
        let reason = strip_separator(&rest[close + 1..]);
        waivers.push(Waiver {
            rules,
            line: comment.start_line,
            covers_through: comment.end_line + 1,
            reason,
        });
    }
    (waivers, errors)
}

/// True for `///`, `//!`, `/**`, `/*!` (but not the empty block comment `/**/`).
fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///")
        || text.starts_with("//!")
        || (text.starts_with("/**") && !text.starts_with("/**/"))
        || text.starts_with("/*!")
}

/// Trims the justification: drop a leading `—` / `–` / `-` / `:` separator, trailing
/// block-comment terminator, and whitespace.
fn strip_separator(raw: &str) -> String {
    let mut s = raw.trim();
    for sep in ["—", "–", "-", ":"] {
        if let Some(stripped) = s.strip_prefix(sep) {
            s = stripped.trim_start();
            break;
        }
    }
    s.trim_end_matches("*/").trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> (Vec<Waiver>, Vec<WaiverSyntaxError>) {
        parse_waivers(&lex(src).comments)
    }

    #[test]
    fn waiver_with_justification_round_trips() {
        let (waivers, errors) = parse(
            "// stancheck: allow(unwrap-expect) — mutex poisoning is unreachable here\nlet x = 1;",
        );
        assert!(errors.is_empty());
        assert_eq!(waivers.len(), 1);
        assert_eq!(waivers[0].rules, vec!["unwrap-expect"]);
        assert_eq!(waivers[0].line, 1);
        assert_eq!(waivers[0].covers_through, 2);
        assert_eq!(waivers[0].reason, "mutex poisoning is unreachable here");
    }

    #[test]
    fn multiple_rules_and_ascii_separator() {
        let (waivers, _) = parse("// stancheck: allow(wall-clock, unwrap-expect) - timing shim");
        assert_eq!(waivers[0].rules, vec!["wall-clock", "unwrap-expect"]);
        assert_eq!(waivers[0].reason, "timing shim");
    }

    #[test]
    fn missing_reason_parses_with_empty_reason() {
        let (waivers, errors) = parse("// stancheck: allow(unsafe-block)");
        assert!(errors.is_empty());
        assert_eq!(waivers[0].reason, "");
    }

    #[test]
    fn malformed_waivers_are_reported() {
        let (_, errors) = parse("// stancheck: allogw(unwrap-expect) oops");
        assert_eq!(errors.len(), 1);
        let (_, errors) = parse("// stancheck: allow[unwrap-expect]");
        assert_eq!(errors.len(), 1);
        let (_, errors) = parse("// stancheck: allow(unwrap-expect — drifted paren");
        assert_eq!(errors.len(), 1);
        let (_, errors) = parse("// stancheck: allow()");
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn block_comment_waiver_covers_next_line() {
        let (waivers, _) =
            parse("/* stancheck: allow(hash-collections) — keyed output\nis sorted */\nuse x;");
        assert_eq!(waivers[0].line, 1);
        assert_eq!(waivers[0].covers_through, 3);
        assert_eq!(waivers[0].reason, "keyed output\nis sorted");
    }

    #[test]
    fn doc_comments_never_waive() {
        let (waivers, errors) =
            parse("/// // stancheck: allow(unwrap-expect) — doc example\nfn f() {}");
        assert!(waivers.is_empty() && errors.is_empty());
        let (waivers, errors) =
            parse("//! ```text\n//! // stancheck: allow(wall-clock) — cited syntax\n//! ```");
        assert!(waivers.is_empty() && errors.is_empty());
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        let (waivers, errors) =
            parse("// this mentions stancheck in prose, no directive\n// stancheck is neat");
        assert!(waivers.is_empty());
        // Prose starting with `stancheck ` (no colon) must not error either.
        assert!(errors.is_empty());
    }
}
