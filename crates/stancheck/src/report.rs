//! Resolved findings, waiver records, and the machine-readable JSON report.
//!
//! The JSON emitter is hand-rolled in the same offline idiom as `bench::report`:
//! no dependencies, stable key order, and every string escaped. CI uploads the
//! `--json` output as a build artifact so a failing run is diagnosable without
//! re-running the tool.

use crate::rules::Severity;

/// One resolved finding (a rule that fired, after waiver matching).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (one of [`crate::rules::RULES`] or a `waiver-*` meta rule).
    pub rule: String,
    /// Severity of the finding.
    pub severity: Severity,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-oriented explanation.
    pub message: String,
    /// True when a justified waiver suppresses this finding.
    pub waived: bool,
    /// The waiver's justification, when waived.
    pub waiver_reason: Option<String>,
}

/// One waiver encountered during the scan, with its audit state.
#[derive(Debug, Clone)]
pub struct WaiverRecord {
    /// Repo-relative file path.
    pub file: String,
    /// Line the waiver comment starts on.
    pub line: u32,
    /// Rule ids the waiver names.
    pub rules: Vec<String>,
    /// The written justification.
    pub reason: String,
    /// True when the waiver suppressed at least one finding.
    pub used: bool,
}

/// The whole-run report.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, waived or not, in scan order.
    pub findings: Vec<Finding>,
    /// Every waiver encountered.
    pub waivers: Vec<WaiverRecord>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not suppressed by a justified waiver. Any of these fails the build.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Count of unwaived findings.
    pub fn unwaived_count(&self) -> usize {
        self.unwaived().count()
    }

    /// Count of findings suppressed by justified waivers.
    pub fn waived_count(&self) -> usize {
        self.findings.iter().filter(|f| f.waived).count()
    }

    /// Serializes the report as a single JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str("  \"tool\": \"sdn-stancheck\",\n");
        out.push_str(&format!(
            "  \"version\": {},\n",
            json_str(env!("CARGO_PKG_VERSION"))
        ));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"summary\": {{\"unwaived\": {}, \"waived\": {}, \"waivers\": {}}},\n",
            self.unwaived_count(),
            self.waived_count(),
            self.waivers.len()
        ));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"rule\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \
                 \"message\": {}, \"waived\": {}{}}}",
                json_str(&f.rule),
                json_str(f.severity.label()),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                f.waived,
                match &f.waiver_reason {
                    Some(reason) => format!(", \"waiver_reason\": {}", json_str(reason)),
                    None => String::new(),
                }
            ));
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"waivers\": [");
        for (i, w) in self.waivers.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let rules = w
                .rules
                .iter()
                .map(|r| json_str(r))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rules\": [{}], \"reason\": {}, \
                 \"used\": {}}}",
                json_str(&w.file),
                w.line,
                rules,
                json_str(&w.reason),
                w.used
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal (with the surrounding quotes).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(json_str("ctrl\u{1}"), "\"ctrl\\u0001\"");
    }

    #[test]
    fn report_json_shape() {
        let report = Report {
            findings: vec![Finding {
                rule: "hash-collections".to_string(),
                severity: Severity::Error,
                file: "crates/core/src/lib.rs".to_string(),
                line: 7,
                message: "bad \"thing\"".to_string(),
                waived: false,
                waiver_reason: None,
            }],
            waivers: vec![WaiverRecord {
                file: "crates/core/src/a.rs".to_string(),
                line: 3,
                rules: vec!["wall-clock".to_string()],
                reason: "why".to_string(),
                used: true,
            }],
            files_scanned: 2,
        };
        let json = report.to_json();
        assert!(json.contains("\"files_scanned\": 2"));
        assert!(json.contains("\"unwaived\": 1"));
        assert!(json.contains("\"rule\": \"hash-collections\""));
        assert!(json.contains("\"message\": \"bad \\\"thing\\\"\""));
        assert!(json.contains("\"used\": true"));
    }
}
