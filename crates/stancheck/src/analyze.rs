//! Ties the passes together: lex → test mask → rules → waiver resolution.
//!
//! Waiver semantics enforced here:
//! - a waiver suppresses a matching-rule finding on its own line(s) or the line
//!   immediately after — *only* if it carries a non-empty justification;
//! - a waiver with no justification is a `waiver-missing-justification` finding and
//!   suppresses nothing;
//! - a waiver naming an unknown rule is a `waiver-unknown-rule` finding;
//! - a justified waiver that suppresses nothing is a `waiver-unused` finding, so
//!   stale waivers are flushed out when the hazard they covered is fixed;
//! - malformed `stancheck:` comments are `waiver-syntax` findings.
//!
//! None of the `waiver-*` meta findings can themselves be waived: the waiver channel
//! must stay auditable.

use crate::lexer::lex;
use crate::report::{Finding, WaiverRecord};
use crate::rules::{rule_by_id, scan, FileContext, FileKind, Severity};
use crate::scope::test_mask;
use crate::waiver::parse_waivers;

/// Analyzes one file's source. `file` is the repo-relative path used in reports.
pub fn analyze_source(
    file: &str,
    src: &str,
    ctx: &FileContext,
) -> (Vec<Finding>, Vec<WaiverRecord>) {
    let lexed = lex(src);
    let mask = test_mask(&lexed.tokens);
    let raw = scan(&lexed.tokens, &mask, ctx);
    let (waivers, syntax_errors) = parse_waivers(&lexed.comments);

    let mut used = vec![false; waivers.len()];
    let mut findings = Vec::new();

    for finding in raw {
        let matched = waivers.iter().enumerate().find(|(_, w)| {
            !w.reason.is_empty()
                && w.rules.iter().any(|r| r == finding.rule.id)
                && finding.line >= w.line
                && finding.line <= w.covers_through
        });
        match matched {
            Some((wi, w)) => {
                used[wi] = true;
                findings.push(Finding {
                    rule: finding.rule.id.to_string(),
                    severity: finding.rule.severity,
                    file: file.to_string(),
                    line: finding.line,
                    message: finding.message,
                    waived: true,
                    waiver_reason: Some(w.reason.clone()),
                });
            }
            None => findings.push(Finding {
                rule: finding.rule.id.to_string(),
                severity: finding.rule.severity,
                file: file.to_string(),
                line: finding.line,
                message: finding.message,
                waived: false,
                waiver_reason: None,
            }),
        }
    }

    for err in &syntax_errors {
        findings.push(meta(file, "waiver-syntax", err.line, err.message.clone()));
    }
    for (wi, w) in waivers.iter().enumerate() {
        for rule in &w.rules {
            if rule_by_id(rule).is_none() {
                findings.push(meta(
                    file,
                    "waiver-unknown-rule",
                    w.line,
                    format!("waiver names unknown rule `{rule}`"),
                ));
            }
        }
        if w.reason.is_empty() {
            findings.push(meta(
                file,
                "waiver-missing-justification",
                w.line,
                "waiver has no written justification; append `— <reason>`".to_string(),
            ));
        } else if !used[wi] && w.rules.iter().all(|r| rule_by_id(r).is_some()) {
            findings.push(meta(
                file,
                "waiver-unused",
                w.line,
                format!(
                    "waiver for `{}` suppresses nothing; remove it",
                    w.rules.join(", ")
                ),
            ));
        }
    }

    let records = waivers
        .iter()
        .zip(&used)
        .map(|(w, &u)| WaiverRecord {
            file: file.to_string(),
            line: w.line,
            rules: w.rules.clone(),
            reason: w.reason.clone(),
            used: u,
        })
        .collect();
    (findings, records)
}

fn meta(file: &str, rule: &str, line: u32, message: String) -> Finding {
    Finding {
        rule: rule.to_string(),
        severity: Severity::Error,
        file: file.to_string(),
        line,
        message,
        waived: false,
        waiver_reason: None,
    }
}

/// Parses a fixture directive:
/// `// stancheck-fixture: crate=<name> kind=<label> [module=<name>]`.
///
/// Fixture files live outside any crate's source tree, so their path says nothing
/// about how rules should apply; the directive pins the simulated context. The
/// optional `module=` pin exists for module-scoped rules (serve's transport-only
/// wall-clock allowance) and defaults to `lib`. Returns `None` when the source has
/// no directive (normal files).
pub fn fixture_directive(src: &str) -> Option<FileContext> {
    let marker = "stancheck-fixture:";
    let at = src.find(marker)?;
    let line = src[at + marker.len()..].lines().next()?;
    let mut crate_name = None;
    let mut kind = None;
    let mut module = "lib".to_string();
    for part in line.split_whitespace() {
        if let Some(v) = part.strip_prefix("crate=") {
            crate_name = Some(v.to_string());
        } else if let Some(v) = part.strip_prefix("kind=") {
            kind = FileKind::from_label(v);
        } else if let Some(v) = part.strip_prefix("module=") {
            module = v.to_string();
        }
    }
    Some(FileContext {
        crate_name: crate_name?,
        kind: kind?,
        module,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx(name: &str) -> FileContext {
        FileContext {
            crate_name: name.to_string(),
            kind: FileKind::Lib,
            module: "lib".to_string(),
        }
    }

    #[test]
    fn justified_waiver_suppresses_and_is_recorded() {
        let src = "// stancheck: allow(hash-collections) — replayed in sorted order\n\
                   use std::collections::HashMap;\n";
        let (findings, waivers) = analyze_source("f.rs", src, &lib_ctx("core"));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].waived);
        assert_eq!(
            findings[0].waiver_reason.as_deref(),
            Some("replayed in sorted order")
        );
        assert_eq!(waivers.len(), 1);
        assert!(waivers[0].used);
    }

    #[test]
    fn unjustified_waiver_suppresses_nothing() {
        let src = "// stancheck: allow(hash-collections)\nuse std::collections::HashMap;\n";
        let (findings, _) = analyze_source("f.rs", src, &lib_ctx("core"));
        let rules: Vec<&str> = findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"hash-collections"));
        assert!(rules.contains(&"waiver-missing-justification"));
        assert!(findings.iter().all(|f| !f.waived));
    }

    #[test]
    fn unused_and_unknown_waivers_are_flagged() {
        let src = "// stancheck: allow(wall-clock) — stale\nfn ok() {}\n\
                   // stancheck: allow(no-such-rule) — eh\nfn also_ok() {}\n";
        let (findings, _) = analyze_source("f.rs", src, &lib_ctx("core"));
        let rules: Vec<&str> = findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"waiver-unused"));
        assert!(rules.contains(&"waiver-unknown-rule"));
    }

    #[test]
    fn trailing_waiver_covers_its_own_line() {
        let src = "use std::collections::HashMap; // stancheck: allow(hash-collections) — scratch map, drained sorted\n";
        let (findings, _) = analyze_source("f.rs", src, &lib_ctx("netsim"));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].waived);
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_suppress() {
        let src = "// stancheck: allow(wall-clock) — wrong rule\nuse std::collections::HashMap;\n";
        let (findings, _) = analyze_source("f.rs", src, &lib_ctx("core"));
        assert!(findings
            .iter()
            .any(|f| f.rule == "hash-collections" && !f.waived));
    }

    #[test]
    fn fixture_directive_parses() {
        let ctx = fixture_directive("// stancheck-fixture: crate=core kind=lib\nfn x() {}")
            .expect("directive");
        assert_eq!(ctx.crate_name, "core");
        assert_eq!(ctx.kind, FileKind::Lib);
        assert_eq!(ctx.module, "lib");
        assert!(fixture_directive("fn x() {}").is_none());

        let ctx = fixture_directive(
            "// stancheck-fixture: crate=serve kind=lib module=transport\nfn x() {}",
        )
        .expect("directive");
        assert_eq!(ctx.crate_name, "serve");
        assert_eq!(ctx.module, "transport");
    }
}
