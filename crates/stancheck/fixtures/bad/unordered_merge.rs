// stancheck-fixture: crate=topology kind=lib
//! Known-bad: unordered parallel reduction (results depend on thread scheduling).

pub fn sum_costs(costs: &[f64]) -> f64 {
    costs.par_iter().cloned().reduce(|| 0.0, |a, b| a + b)
}
