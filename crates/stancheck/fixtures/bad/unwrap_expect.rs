// stancheck-fixture: crate=metrics kind=lib
//! Known-bad: panicking extractors in library code.

pub fn first_sample(samples: &[f64]) -> f64 {
    *samples.first().unwrap()
}

pub fn parse_count(raw: &str) -> usize {
    raw.parse().expect("count must be numeric")
}
