// stancheck-fixture: crate=switch kind=lib
//! Known-bad: unsafe code in a workspace that forbids it.

pub fn transmute_id(raw: u64) -> u32 {
    unsafe { std::mem::transmute::<u32, u32>(raw as u32) }
}
