// stancheck-fixture: crate=core kind=lib
//! Known-bad: host thread identity steering simulation behavior.

pub fn shard_for_current_thread(shards: usize) -> usize {
    let id = format!("{:?}", std::thread::current().id());
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    (id.len() * cores) % shards
}
