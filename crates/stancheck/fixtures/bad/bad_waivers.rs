// stancheck-fixture: crate=core kind=lib
//! Known-bad: the waiver channel abused in every way the analyzer rejects.

// A waiver with no written justification suppresses nothing:
pub fn no_reason(map: std::collections::HashMap<u32, u32>) -> usize {
    // stancheck: allow(hash-collections)
    map.len()
}

// stancheck: allow(definitely-not-a-rule) — the rule id is made up
pub fn unknown_rule() {}

// stancheck: allow(wall-clock) — nothing on the next line uses a clock
pub fn stale_waiver() {}

// stancheck: allow
pub fn malformed() {}
