// stancheck-fixture: crate=netsim kind=lib
//! Known-bad: per-event heap allocation in the simulator's dispatch path. Payloads
//! belong in the slab arena and pooled delivery buffers; boxing them reintroduces a
//! malloc/free pair per simulated message.

pub struct Delivery {
    pub at_micros: u64,
    pub payload: Box<[u8]>,
}

pub fn enqueue(bytes: &[u8]) -> Delivery {
    Delivery {
        at_micros: 0,
        payload: Box::from(bytes),
    }
}
