// stancheck-fixture: crate=netsim kind=lib
//! Known-bad: wall-clock reads inside the simulator.
use std::time::{Instant, SystemTime};

pub fn stamp() -> f64 {
    let started = Instant::now();
    let _epoch = SystemTime::now();
    started.elapsed().as_secs_f64()
}
