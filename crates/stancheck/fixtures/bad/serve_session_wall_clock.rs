// stancheck-fixture: crate=serve kind=lib module=session
//! Known-bad: wall-clock reads in the serve session driver. The session must be
//! replayable from a command log — host time here would make live and replayed
//! runs diverge.
use std::time::{Instant, SystemTime};

pub fn stamp_tick() -> f64 {
    let started = Instant::now();
    let _epoch = SystemTime::now();
    started.elapsed().as_secs_f64()
}
