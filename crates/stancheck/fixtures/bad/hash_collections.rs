// stancheck-fixture: crate=core kind=lib
//! Known-bad: hash collections in a simulation crate.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn tally(edges: &[(u32, u32)]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut degree: HashMap<u32, usize> = HashMap::new();
    for (a, b) in edges {
        seen.insert(*a);
        *degree.entry(*b).or_insert(0) += 1;
    }
    seen.len() + degree.len()
}
