// stancheck-fixture: crate=core kind=lib
//! Every hazard here carries a justified waiver: the analyzer must report zero
//! unwaived findings and record each waiver as used.

// stancheck: allow(hash-collections) — scratch map, drained into a sorted Vec before any iteration escapes
use std::collections::HashMap;

pub fn sorted_degrees(edges: &[(u32, u32)]) -> Vec<(u32, usize)> {
    // stancheck: allow(hash-collections) — same scratch map; output is sorted below
    let mut degree: HashMap<u32, usize> = HashMap::new();
    for (a, _) in edges {
        *degree.entry(*a).or_insert(0) += 1;
    }
    let mut out: Vec<(u32, usize)> = degree.into_iter().collect();
    out.sort_unstable();
    out
}

pub fn must_first(samples: &[f64]) -> f64 {
    // stancheck: allow(unwrap-expect) — callers are required to pass non-empty slices; checked by the scenario builder
    *samples.first().unwrap()
}
