// stancheck-fixture: crate=core kind=lib
//! A clean simulation-crate file: deterministic structures, no clocks, no panics.
//! Mentions of HashMap, Instant::now, and unsafe appear only in strings and
//! comments, which the literal-aware lexer must ignore.

use std::collections::BTreeMap;

/// Not a hazard: "HashMap" and "unsafe" inside a string literal.
pub const DOC_BLURB: &str = "prefer BTreeMap over HashMap; never unsafe";

pub fn degree_table(edges: &[(u32, u32)]) -> BTreeMap<u32, usize> {
    let mut degree = BTreeMap::new();
    for (a, b) in edges {
        *degree.entry(*a).or_insert(0) += 1;
        *degree.entry(*b).or_insert(0) += 1;
    }
    degree
}

pub fn first_or_zero(samples: &[f64]) -> f64 {
    samples.first().copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_unwrap_and_hash() {
        // Inside #[cfg(test)] the library rules stand down.
        let mut set = std::collections::HashSet::new();
        set.insert(1u32);
        assert_eq!(degree_table(&[(1, 2)]).get(&1).copied().unwrap(), 1);
    }
}
