// stancheck-fixture: crate=serve kind=lib module=transport
//! Known-clean: the serve transport module is the one sanctioned home for
//! wall-clock and thread-identity reads — they never reach simulated state.
use std::time::Instant;

pub fn uptime_secs(started: Instant) -> f64 {
    Instant::now().duration_since(started).as_secs_f64()
}

pub fn connection_label() -> String {
    format!("conn on {:?}", std::thread::current().id())
}
