//! A streaming, mergeable summary of repeated measurements.

/// Default capacity of the quantile sketch: below this many samples quantiles are
/// exact; beyond it the sketch compacts to bounded memory.
const DEFAULT_CAPACITY: usize = 4096;

/// A streaming summary of a sample set: count, mean, standard deviation, min/max, and
/// approximate quantiles, in bounded memory.
///
/// * **Moments** (mean, variance) are maintained with the weighted incremental form of
///   Welford's online algorithm; [`record`](Self::record) keeps them exact regardless
///   of sketch compaction.
/// * **Quantiles** come from a compacting sketch: raw `(value, weight)` pairs are kept
///   until the capacity is reached, then the sorted buffer is halved by merging
///   adjacent pairs. Up to the capacity (default 4096) quantiles are *exact*
///   nearest-rank statistics; past it they are approximate with rank error bounded by
///   the number of compactions.
/// * **Merging** ([`Digest::merge`]) replays the other digest's retained entries
///   through the *same* weighted update as `record`. Two consequences: the merge is
///   deterministic (a pure function of the operand states), and while the merged-in
///   digests have not compacted, reducing per-seed digests in seed order is
///   **bit-identical** to recording the concatenated stream sequentially — the
///   property the parallel scenario runner's determinism contract extends to. Merging
///   digests that *have* compacted remains deterministic but approximate (each
///   retained entry stands in for `weight` nearby samples).
///
/// Empty-digest statistics return `0.0` (matching the `Samples` type this replaces),
/// except [`Digest::quantile`] which returns `None`.
///
/// # Example
///
/// ```
/// use sdn_metrics::Digest;
///
/// let mut d = Digest::default();
/// for v in [4.0, 1.0, 3.0, 2.0, 5.0] {
///     d.record(v);
/// }
/// assert_eq!(d.len(), 5);
/// assert_eq!(d.mean(), 3.0);
/// assert_eq!(d.median(), 3.0);
/// assert_eq!(d.p99(), 5.0);
/// assert!((d.stddev() - 2.5f64.sqrt()).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Digest {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    /// `(value, weight)` pairs in insertion order; compacted once `capacity` is hit.
    entries: Vec<(f64, u64)>,
    capacity: usize,
}

impl Default for Digest {
    fn default() -> Self {
        Digest::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Digest {
    /// An empty digest with the default sketch capacity.
    pub fn new() -> Self {
        Digest::default()
    }

    /// An empty digest whose quantile sketch holds at most `capacity` entries
    /// (clamped to at least 8). Quantiles are exact until `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        Digest {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            entries: Vec::new(),
            capacity: capacity.max(8),
        }
    }

    /// A digest over the given samples.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut d = Digest::default();
        for v in samples {
            d.record(v);
        }
        d
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values: NaN/infinity would silently poison every
    /// downstream statistic, so they fail loudly at the source.
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite(), "digest values must be finite: {value}");
        self.add_weighted(value, 1);
    }

    /// Folds another digest into this one by replaying its retained entries. The
    /// other digest's exact min/max are folded in directly: compaction drops entries
    /// but `min`/`max` never lose the true extremes.
    pub fn merge(&mut self, other: &Digest) {
        for &(value, weight) in &other.entries {
            self.add_weighted(value, weight);
        }
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// The single moment/sketch update both [`record`](Self::record) and
    /// [`merge`](Self::merge) go through — shared so a seed-order merge of
    /// uncompacted digests executes the exact scalar operation sequence of a
    /// sequential record stream.
    fn add_weighted(&mut self, value: f64, weight: u64) {
        if weight == 0 {
            return;
        }
        let new_count = self.count + weight;
        let delta = value - self.mean;
        self.mean += delta * (weight as f64 / new_count as f64);
        self.m2 += delta * delta * (self.count as f64 * weight as f64 / new_count as f64);
        self.count = new_count;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.entries.push((value, weight));
        if self.entries.len() >= self.capacity {
            self.compact();
        }
    }

    /// Halves the sketch: sort by value, then merge each adjacent pair into its lower
    /// member with the pair's combined weight. Deterministic (stable sort via the
    /// IEEE total order, fixed pairing), which keeps [`merge`](Self::merge)
    /// deterministic too.
    fn compact(&mut self) {
        self.entries.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut compacted = Vec::with_capacity(self.entries.len() / 2 + 1);
        let mut pairs = self.entries.chunks_exact(2);
        for pair in &mut pairs {
            compacted.push((pair[0].0, pair[0].1 + pair[1].1));
        }
        compacted.extend_from_slice(pairs.remainder());
        self.entries = compacted;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Number of recorded samples as the raw counter.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation, with Bessel's correction (0 with fewer than two
    /// samples).
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Minimum sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The nearest-rank `q`-quantile (`q` clamped to `[0, 1]`), or `None` when empty.
    /// Exact while the sketch has not compacted (fewer samples than the capacity).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        Some(self.quantiles(&[q])[0])
    }

    /// Several nearest-rank quantiles over a single sort of the sketch (0.0 each when
    /// empty) — what artifact emitters use to render p50/p90/p99 without re-sorting
    /// per rank.
    pub fn quantiles(&self, qs: &[f64]) -> Vec<f64> {
        if self.count == 0 {
            return vec![0.0; qs.len()];
        }
        let mut sorted = self.entries.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: u64 = sorted.iter().map(|&(_, w)| w).sum();
        qs.iter()
            .map(|&q| {
                let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
                let mut cumulative = 0;
                for &(value, weight) in &sorted {
                    cumulative += weight;
                    if cumulative >= target {
                        return value;
                    }
                }
                unreachable!("cumulative weight covers every target rank")
            })
            .collect()
    }

    /// Median — the 0.5 quantile (0 when empty).
    pub fn median(&self) -> f64 {
        self.quantile(0.5).unwrap_or(0.0)
    }

    /// 50th percentile (0 when empty).
    pub fn p50(&self) -> f64 {
        self.median()
    }

    /// 90th percentile (0 when empty).
    pub fn p90(&self) -> f64 {
        self.quantile(0.9).unwrap_or(0.0)
    }

    /// 99th percentile (0 when empty).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* generator — enough randomness for property-style
    /// tests without a dependency.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn next_f64(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// The exact nearest-rank quantile of a sorted slice — the reference the digest is
    /// checked against.
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let target = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[target - 1]
    }

    #[test]
    fn empty_digest_statistics() {
        let d = Digest::default();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.stddev(), 0.0);
        assert_eq!(d.min(), 0.0);
        assert_eq!(d.max(), 0.0);
        assert_eq!(d.median(), 0.0);
        assert_eq!(d.quantile(0.5), None);
    }

    #[test]
    fn basic_statistics() {
        let d = Digest::from_samples([2.0, 4.0, 9.0]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.mean(), 5.0);
        assert_eq!(d.median(), 4.0);
        assert_eq!(d.min(), 2.0);
        assert_eq!(d.max(), 9.0);
        // Sample stddev of {2, 4, 9}: sqrt(((2-5)^2 + (4-5)^2 + (9-5)^2) / 2).
        assert!((d.stddev() - (13.0f64).sqrt()).abs() < 1e-12);
        // Negative-only samples: max must not report the old Samples fold default 0.
        let neg = Digest::from_samples([-3.0, -1.0]);
        assert_eq!(neg.max(), -1.0);
        assert_eq!(neg.min(), -3.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_values_are_rejected() {
        Digest::default().record(f64::NAN);
    }

    /// Property: while the sketch has not compacted, p50/p90/p99 equal the exact
    /// nearest-rank quantiles of the sorted sample slice — over many random sample
    /// sets of random sizes.
    #[test]
    fn quantiles_exact_below_capacity() {
        let mut rng = Rng(0x5EED_1234_5678_9ABC);
        for case in 0..200 {
            let n = 1 + (rng.next() % 512) as usize;
            let samples: Vec<f64> = (0..n).map(|_| rng.next_f64() * 1e4 - 5e3).collect();
            let digest = Digest::from_samples(samples.iter().copied());
            let mut sorted = samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(
                    digest.quantile(q),
                    Some(exact_quantile(&sorted, q)),
                    "case {case}: n={n} q={q}"
                );
            }
            assert_eq!(digest.min(), sorted[0]);
            assert_eq!(digest.max(), sorted[n - 1]);
        }
    }

    /// Property: past the capacity the sketch stays within a small rank error of the
    /// exact quantiles (values are drawn from [0, 1], so rank error shows up as value
    /// error of the same order), while the moments stay exact.
    #[test]
    fn quantiles_approximate_above_capacity() {
        let mut rng = Rng(0xFACE_CAFE_0000_0001);
        let n = 50_000;
        let mut digest = Digest::with_capacity(1024);
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let v = rng.next_f64();
            samples.push(v);
            digest.record(v);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.5, 0.9, 0.99] {
            let exact = exact_quantile(&samples, q);
            let approx = digest.quantile(q).unwrap();
            assert!(
                (approx - exact).abs() < 0.05,
                "q={q}: exact {exact} vs sketch {approx}"
            );
        }
        // Moments are not affected by sketch compaction on the record path.
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        assert!((digest.mean() - mean).abs() < 1e-9);
        assert_eq!(digest.len(), n);
    }

    /// Determinism: reducing per-seed digests in seed order is bit-identical no matter
    /// how often it is done, and — while below capacity — bit-identical to recording
    /// the whole stream sequentially.
    #[test]
    fn seed_order_merge_is_bit_identical_to_sequential() {
        let mut rng = Rng(42);
        let per_seed: Vec<Vec<f64>> = (0..8)
            .map(|_| (0..100).map(|_| rng.next_f64() * 100.0).collect())
            .collect();

        let mut sequential = Digest::default();
        for chunk in &per_seed {
            for &v in chunk {
                sequential.record(v);
            }
        }

        // Two independent "parallel" reductions: per-seed digests merged in seed order.
        let reduce = || {
            let mut merged = Digest::default();
            for chunk in &per_seed {
                let worker = Digest::from_samples(chunk.iter().copied());
                merged.merge(&worker);
            }
            merged
        };
        let merged_a = reduce();
        let merged_b = reduce();
        assert_eq!(merged_a, merged_b, "merge must be deterministic");
        assert_eq!(
            merged_a, sequential,
            "below capacity, seed-order merge must equal the sequential stream bit for bit"
        );
    }

    /// Merging above capacity still agrees with the exact statistics to sketch
    /// tolerance and stays deterministic.
    #[test]
    fn merge_with_compaction_is_deterministic_and_accurate() {
        let mut rng = Rng(7);
        let chunks: Vec<Vec<f64>> = (0..16)
            .map(|_| (0..1000).map(|_| rng.next_f64()).collect())
            .collect();
        let reduce = || {
            let mut merged = Digest::with_capacity(512);
            for chunk in &chunks {
                let mut worker = Digest::with_capacity(512);
                for &v in chunk {
                    worker.record(v);
                }
                merged.merge(&worker);
            }
            merged
        };
        let a = reduce();
        let b = reduce();
        assert_eq!(a, b);
        assert_eq!(a.len(), 16_000);
        let mut all: Vec<f64> = chunks.iter().flatten().copied().collect();
        let exact_mean = all.iter().sum::<f64>() / all.len() as f64;
        all.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for q in [0.5, 0.9, 0.99] {
            assert!((a.quantile(q).unwrap() - exact_quantile(&all, q)).abs() < 0.08);
        }
        // Merging compacted operands replays weighted entries, so the mean is
        // approximate — but adjacent-pair compaction keeps it close.
        assert!((a.mean() - exact_mean).abs() < 0.01);
    }

    #[test]
    fn merge_preserves_exact_extremes_of_compacted_operands() {
        // Capacity 8: recording 1..=8 compacts, keeping the LOWER member of each
        // adjacent pair — 8.0 disappears from the entries...
        let mut other = Digest::with_capacity(8);
        for v in 1..=8 {
            other.record(v as f64);
        }
        assert!(other.entries.len() < 8, "sketch must have compacted");
        assert_eq!(other.max(), 8.0);
        // ...but min/max are folded in exactly, not replayed from the lossy sketch.
        let mut merged = Digest::default();
        merged.merge(&other);
        assert_eq!(merged.max(), 8.0);
        assert_eq!(merged.min(), 1.0);
        assert_eq!(merged.len(), 8);
    }

    #[test]
    fn batched_quantiles_match_single_calls() {
        let d = Digest::from_samples([5.0, 1.0, 4.0, 2.0, 3.0]);
        assert_eq!(
            d.quantiles(&[0.5, 0.9, 0.99]),
            vec![d.median(), d.p90(), d.p99()]
        );
        assert_eq!(Digest::default().quantiles(&[0.5, 0.9]), vec![0.0, 0.0]);
    }

    #[test]
    fn merge_into_empty_and_with_empty() {
        let full = Digest::from_samples([1.0, 2.0]);
        let mut d = Digest::default();
        d.merge(&full);
        assert_eq!(d.len(), 2);
        assert_eq!(d.mean(), 1.5);
        let before = d.clone();
        d.merge(&Digest::default());
        assert_eq!(d, before);
    }
}
