//! The sink abstraction metric observations flow through.

use crate::digest::Digest;
use crate::key::MetricKey;
use std::collections::BTreeMap;
use std::io::{self, Write};

/// A destination for metric observations.
///
/// Every observation is a `(scope, key, value)` triple: the *scope* names the
/// experiment cell the value belongs to (a network, a network/configuration string,
/// ...), the [`MetricKey`] names *what* was measured, and the value is one sample.
/// Experiment code records samples as they are produced; what happens to them —
/// in-memory digesting, streaming to a file — is the sink's business, so scale
/// campaigns no longer have to buffer every sample to report statistics.
pub trait Recorder {
    /// Records one observation of `key` within `scope`.
    fn record(&mut self, scope: &str, key: &MetricKey, value: f64);

    /// Flushes any buffered output. A no-op for in-memory sinks.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// An in-memory sink aggregating every observation into a [`Digest`] per
/// `(scope, key)` — the recorder behind every printed results table.
///
/// # Example
///
/// ```
/// use sdn_metrics::{MemorySink, MetricKey, Recorder};
///
/// let mut sink = MemorySink::default();
/// sink.record("B4", &MetricKey::RECOVERY_TIME, 2.5);
/// sink.record("B4", &MetricKey::RECOVERY_TIME, 3.5);
/// assert_eq!(sink.digest("B4", &MetricKey::RECOVERY_TIME).unwrap().mean(), 3.0);
/// assert!(sink.digest("Clos", &MetricKey::RECOVERY_TIME).is_none());
/// ```
#[derive(Debug, Default)]
pub struct MemorySink {
    series: BTreeMap<String, BTreeMap<MetricKey, Digest>>,
}

impl MemorySink {
    /// The digest of one `(scope, key)` series, if anything was recorded for it.
    pub fn digest(&self, scope: &str, key: &MetricKey) -> Option<&Digest> {
        self.series.get(scope).and_then(|metrics| metrics.get(key))
    }

    /// Iterates over every `(scope, key, digest)` series in scope/key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricKey, &Digest)> + '_ {
        self.series.iter().flat_map(|(scope, metrics)| {
            metrics
                .iter()
                .map(move |(key, digest)| (scope.as_str(), key, digest))
        })
    }

    /// Number of distinct `(scope, key)` series recorded.
    pub fn series_count(&self) -> usize {
        self.series.values().map(BTreeMap::len).sum()
    }

    /// Returns `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

impl Recorder for MemorySink {
    fn record(&mut self, scope: &str, key: &MetricKey, value: f64) {
        self.series
            .entry(scope.to_string())
            .or_default()
            .entry(key.clone())
            .or_default()
            .record(value);
    }
}

/// Escapes a string for embedding in a JSON document (quotes not included).
pub(crate) fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// A streaming sink writing one JSON object per observation, one per line
/// ([JSON lines](https://jsonlines.org/)): nothing is buffered beyond the writer, so
/// arbitrarily long campaigns stream in constant memory.
///
/// # Example
///
/// ```
/// use sdn_metrics::{JsonLinesSink, MetricKey, Recorder};
///
/// let mut buf = Vec::new();
/// JsonLinesSink::new(&mut buf).record("B4", &MetricKey::BOOTSTRAP_TIME, 1.5);
/// assert_eq!(
///     String::from_utf8(buf).unwrap(),
///     "{\"scope\":\"B4\",\"metric\":\"scenario/bootstrap_s\",\"unit\":\"s\",\"value\":1.5}\n"
/// );
/// ```
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    out: W,
    /// First write failure, surfaced by the next [`flush`](Recorder::flush):
    /// `record` itself stays infallible so the hot path never unwinds mid-run.
    deferred: Option<io::Error>,
}

impl<W: Write> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonLinesSink {
            out,
            deferred: None,
        }
    }
}

impl<W: Write> Recorder for JsonLinesSink<W> {
    fn record(&mut self, scope: &str, key: &MetricKey, value: f64) {
        let mut line = String::with_capacity(96);
        line.push_str("{\"scope\":\"");
        json_escape(scope, &mut line);
        line.push_str("\",\"metric\":\"");
        json_escape(&key.path(), &mut line);
        line.push_str("\",\"unit\":\"");
        json_escape(key.unit().symbol(), &mut line);
        line.push_str("\",\"value\":");
        if value.is_finite() {
            line.push_str(&format!("{value}"));
        } else {
            line.push_str("null");
        }
        line.push_str("}\n");
        if self.deferred.is_none() {
            self.deferred = self.out.write_all(line.as_bytes()).err();
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self.deferred.take() {
            Some(err) => Err(err),
            None => self.out.flush(),
        }
    }
}

/// Quotes a CSV field when it contains a separator, quote, or newline (RFC 4180).
/// Public so artifact emitters outside this crate quote fields the same way.
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// A streaming sink writing one CSV row per observation, with a header row on the
/// first record.
///
/// # Example
///
/// ```
/// use sdn_metrics::{CsvSink, MetricKey, Recorder};
///
/// let mut buf = Vec::new();
/// CsvSink::new(&mut buf).record("B4", &MetricKey::BOOTSTRAP_TIME, 1.5);
/// assert_eq!(
///     String::from_utf8(buf).unwrap(),
///     "scope,metric,unit,value\nB4,scenario/bootstrap_s,s,1.5\n"
/// );
/// ```
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    out: W,
    wrote_header: bool,
    /// First write failure, surfaced by the next [`flush`](Recorder::flush), same
    /// contract as [`JsonLinesSink`].
    deferred: Option<io::Error>,
}

impl<W: Write> CsvSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        CsvSink {
            out,
            wrote_header: false,
            deferred: None,
        }
    }
}

impl<W: Write> Recorder for CsvSink<W> {
    fn record(&mut self, scope: &str, key: &MetricKey, value: f64) {
        let mut row = String::with_capacity(64);
        if !self.wrote_header {
            row.push_str("scope,metric,unit,value\n");
            self.wrote_header = true;
        }
        row.push_str(&csv_field(scope));
        row.push(',');
        row.push_str(&csv_field(&key.path()));
        row.push(',');
        row.push_str(&csv_field(key.unit().symbol()));
        row.push(',');
        row.push_str(&format!("{value}\n"));
        if self.deferred.is_none() {
            self.deferred = self.out.write_all(row.as_bytes()).err();
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self.deferred.take() {
            Some(err) => Err(err),
            None => self.out.flush(),
        }
    }
}

/// Broadcasts every observation to several sinks — e.g. an in-memory digest store for
/// the results table plus a streaming file sink for the machine-readable artifact.
#[derive(Default)]
pub struct Fanout {
    sinks: Vec<Box<dyn Recorder>>,
}

impl Fanout {
    /// An empty fanout (recording into it is a no-op).
    pub fn new() -> Self {
        Fanout::default()
    }

    /// Adds a sink.
    pub fn push(&mut self, sink: Box<dyn Recorder>) {
        self.sinks.push(sink);
    }
}

impl Recorder for Fanout {
    fn record(&mut self, scope: &str, key: &MetricKey, value: f64) {
        for sink in &mut self.sinks {
            sink.record(scope, key, value);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        for sink in &mut self.sinks {
            sink.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{Namespace, Unit};

    #[test]
    fn memory_sink_digests_per_scope_and_key() {
        let mut sink = MemorySink::default();
        sink.record("B4", &MetricKey::BOOTSTRAP_TIME, 1.0);
        sink.record("B4", &MetricKey::BOOTSTRAP_TIME, 3.0);
        sink.record("B4", &MetricKey::RECOVERY_TIME, 9.0);
        sink.record("Clos", &MetricKey::BOOTSTRAP_TIME, 7.0);
        assert_eq!(sink.series_count(), 3);
        assert_eq!(
            sink.digest("B4", &MetricKey::BOOTSTRAP_TIME)
                .unwrap()
                .mean(),
            2.0
        );
        assert_eq!(
            sink.digest("Clos", &MetricKey::BOOTSTRAP_TIME)
                .unwrap()
                .len(),
            1
        );
        let collected: Vec<(String, String)> = sink
            .iter()
            .map(|(scope, key, _)| (scope.to_string(), key.path()))
            .collect();
        assert_eq!(
            collected,
            vec![
                ("B4".into(), "scenario/bootstrap_s".into()),
                ("B4".into(), "scenario/recovery_s".into()),
                ("Clos".into(), "scenario/bootstrap_s".into()),
            ]
        );
        assert!(sink.flush().is_ok());
    }

    #[test]
    fn json_lines_escapes_scopes() {
        let mut buf = Vec::new();
        let mut sink = JsonLinesSink::new(&mut buf);
        let key = MetricKey::custom(Namespace::Bench, "x");
        sink.record("say \"hi\"\n", &key, 2.0);
        sink.flush().unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            "{\"scope\":\"say \\\"hi\\\"\\n\",\"metric\":\"bench/x\",\"unit\":\"count\",\"value\":2}\n"
        );
    }

    #[test]
    fn csv_quotes_fields_and_writes_header_once() {
        let mut buf = Vec::new();
        let mut sink = CsvSink::new(&mut buf);
        let key = MetricKey::custom(Namespace::Bench, "x").with_unit(Unit::Seconds);
        sink.record("a,b", &key, 1.0);
        sink.record("plain", &key, 2.5);
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            "scope,metric,unit,value\n\"a,b\",bench/x,s,1\nplain,bench/x,s,2.5\n"
        );
    }

    #[test]
    fn fanout_broadcasts() {
        let mut fanout = Fanout::new();
        fanout.push(Box::new(MemorySink::default()));
        fanout.push(Box::new(MemorySink::default()));
        fanout.record("s", &MetricKey::BOOTSTRAP_TIME, 1.0);
        assert!(fanout.flush().is_ok());
        // An empty fanout accepts records silently.
        Fanout::new().record("s", &MetricKey::BOOTSTRAP_TIME, 1.0);
    }
}
