//! Typed, namespaced metric identities.

use std::borrow::Cow;
use std::fmt;

/// The namespace a metric belongs to — the first path segment of its identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Namespace {
    /// Scenario-level observations made by the runner (bootstrap, recovery, summaries).
    Scenario,
    /// Periodically sampled probe observables.
    Probe,
    /// Traffic-workload observations (throughput, retransmissions, ...).
    Workload,
    /// Network-medium accounting (messages, bytes, losses).
    Network,
    /// Harness-level measurements of the benchmark process itself (wall clock, sizes).
    Bench,
}

impl Namespace {
    /// The lowercase path segment (`"scenario"`, `"probe"`, ...).
    pub const fn as_str(self) -> &'static str {
        match self {
            Namespace::Scenario => "scenario",
            Namespace::Probe => "probe",
            Namespace::Workload => "workload",
            Namespace::Network => "network",
            Namespace::Bench => "bench",
        }
    }
}

impl fmt::Display for Namespace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The unit a metric's values are expressed in. Metadata only: two keys with the same
/// namespace and name are the same metric regardless of unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Unit {
    /// Simulated or wall-clock seconds.
    Seconds,
    /// Wall-clock milliseconds.
    Millis,
    /// Megabits per second.
    MbitPerSec,
    /// A percentage in `[0, 100]`.
    Percent,
    /// A dimensionless ratio (correlation coefficients, 0/1 predicates).
    Ratio,
    /// A plain count of discrete things.
    #[default]
    Count,
    /// Bytes.
    Bytes,
}

impl Unit {
    /// Short symbol for table headers and sink output (`"s"`, `"ms"`, ...).
    pub const fn symbol(self) -> &'static str {
        match self {
            Unit::Seconds => "s",
            Unit::Millis => "ms",
            Unit::MbitPerSec => "Mbit/s",
            Unit::Percent => "%",
            Unit::Ratio => "ratio",
            Unit::Count => "count",
            Unit::Bytes => "B",
        }
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Which direction of change is an improvement — what turns a numeric delta between
/// two measurements into "better", "worse", or "neither".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Polarity {
    /// Smaller is better (latencies, message counts, loss).
    LowerIsBetter,
    /// Larger is better (throughput, legitimacy).
    HigherIsBetter,
    /// Neither direction is a regression (structural quantities such as rule counts).
    #[default]
    Neutral,
}

/// A typed, namespaced metric identity.
///
/// Identity is the `(namespace, name)` pair: [`Unit`] and [`Polarity`] are carried as
/// metadata for formatting and regression gating but do not participate in equality,
/// ordering, or hashing. The well-known keys of the workspace are exposed as
/// associated constants ([`MetricKey::BOOTSTRAP_TIME`], ...); experiment-specific
/// metrics are built with [`MetricKey::named`] (const, `&'static str`) or
/// [`MetricKey::custom`] (owned name).
///
/// # Example
///
/// ```
/// use sdn_metrics::{MetricKey, Namespace, Polarity, Unit};
///
/// const OVERHEAD: MetricKey =
///     MetricKey::named(Namespace::Scenario, "overhead", Unit::Count, Polarity::LowerIsBetter);
/// assert_eq!(OVERHEAD.path(), "scenario/overhead");
/// assert_eq!(OVERHEAD, MetricKey::custom(Namespace::Scenario, "overhead"));
/// ```
#[derive(Clone, Debug)]
pub struct MetricKey {
    namespace: Namespace,
    name: Cow<'static, str>,
    unit: Unit,
    polarity: Polarity,
}

impl MetricKey {
    /// Time from the empty configuration to the first legitimate state, in simulated
    /// seconds.
    pub const BOOTSTRAP_TIME: MetricKey = MetricKey::named(
        Namespace::Scenario,
        "bootstrap_s",
        Unit::Seconds,
        Polarity::LowerIsBetter,
    );
    /// Time from a fault batch back to a legitimate state, in simulated seconds.
    pub const RECOVERY_TIME: MetricKey = MetricKey::named(
        Namespace::Scenario,
        "recovery_s",
        Unit::Seconds,
        Polarity::LowerIsBetter,
    );
    /// Simulated clock at the end of a run, in seconds.
    pub const SIM_END: MetricKey = MetricKey::named(
        Namespace::Scenario,
        "sim_end_s",
        Unit::Seconds,
        Polarity::Neutral,
    );
    /// The legitimacy predicate sampled as 0/1.
    pub const LEGITIMACY: MetricKey = MetricKey::named(
        Namespace::Probe,
        "legitimacy",
        Unit::Ratio,
        Polarity::HigherIsBetter,
    );
    /// Total rules installed across all live switches.
    pub const TOTAL_RULES: MetricKey = MetricKey::named(
        Namespace::Probe,
        "total_rules",
        Unit::Count,
        Polarity::Neutral,
    );
    /// Largest per-switch rule count.
    pub const MAX_RULES_PER_SWITCH: MetricKey = MetricKey::named(
        Namespace::Probe,
        "max_rules_per_switch",
        Unit::Count,
        Polarity::Neutral,
    );
    /// Control-plane messages handed to the network.
    pub const MESSAGES_SENT: MetricKey = MetricKey::named(
        Namespace::Network,
        "messages_sent",
        Unit::Count,
        Polarity::LowerIsBetter,
    );
    /// Fraction of a run's fault batches whose recovery reached a legitimate state
    /// before the scenario moved on — the survival observable of flapping-link cells.
    pub const FLAP_SURVIVAL: MetricKey = MetricKey::named(
        Namespace::Scenario,
        "flap_survival",
        Unit::Ratio,
        Polarity::HigherIsBetter,
    );
    /// Control-plane messages sent while a partition was in force (between the cut
    /// batch and the heal batch), from the sampled messages probe.
    pub const PARTITION_MESSAGES: MetricKey = MetricKey::named(
        Namespace::Network,
        "partition_messages",
        Unit::Count,
        Polarity::LowerIsBetter,
    );
    /// Per-second TCP goodput of a traffic workload.
    pub const THROUGHPUT: MetricKey = MetricKey::named(
        Namespace::Workload,
        "throughput_mbps",
        Unit::MbitPerSec,
        Polarity::HigherIsBetter,
    );
    /// Per-second TCP retransmission percentage of a traffic workload.
    pub const RETRANSMISSIONS: MetricKey = MetricKey::named(
        Namespace::Workload,
        "retransmission_pct",
        Unit::Percent,
        Polarity::LowerIsBetter,
    );
    /// Flow completion time of one finished flow of the heavy-traffic engine, in
    /// simulated seconds. Record per-flow samples under this key and the digest's
    /// quantiles are the paper-style FCT statistics.
    pub const FCT: MetricKey = MetricKey::named(
        Namespace::Workload,
        "fct_s",
        Unit::Seconds,
        Polarity::LowerIsBetter,
    );
    /// Median flow completion time of a heavy-traffic run, in simulated seconds.
    pub const FCT_P50: MetricKey = MetricKey::named(
        Namespace::Workload,
        "fct_p50_s",
        Unit::Seconds,
        Polarity::LowerIsBetter,
    );
    /// 99th-percentile flow completion time of a heavy-traffic run, in simulated
    /// seconds — the tail-latency observable of datacenter traffic studies.
    pub const FCT_P99: MetricKey = MetricKey::named(
        Namespace::Workload,
        "fct_p99_s",
        Unit::Seconds,
        Polarity::LowerIsBetter,
    );
    /// Aggregate achieved goodput of the flow batch over one service interval.
    pub const ACHIEVED_THROUGHPUT: MetricKey = MetricKey::named(
        Namespace::Workload,
        "achieved_mbps",
        Unit::MbitPerSec,
        Polarity::HigherIsBetter,
    );
    /// Number of flows simultaneously in flight (sampled per service interval).
    pub const CONCURRENT_FLOWS: MetricKey = MetricKey::named(
        Namespace::Workload,
        "concurrent_flows",
        Unit::Count,
        Polarity::Neutral,
    );
    /// Flow completions per wall-clock second of the batch engine — the heavy-traffic
    /// counterpart of [`MetricKey::EVENTS_PER_SEC`] (host-dependent, never gated).
    pub const FLOWS_PER_SEC: MetricKey = MetricKey::named(
        Namespace::Bench,
        "flows_per_sec",
        Unit::Count,
        Polarity::HigherIsBetter,
    );
    /// Wall-clock time the host spent executing an experiment cell.
    pub const WALL_CLOCK: MetricKey = MetricKey::named(
        Namespace::Bench,
        "wall_clock_ms",
        Unit::Millis,
        Polarity::LowerIsBetter,
    );
    /// Simulator events processed per wall-clock second — the hot-path throughput
    /// observable the scale campaign reports (never gated: it depends on the host).
    pub const EVENTS_PER_SEC: MetricKey = MetricKey::named(
        Namespace::Bench,
        "events_per_sec",
        Unit::Count,
        Polarity::HigherIsBetter,
    );

    /// A key with a `'static` name — usable in `const` contexts.
    pub const fn named(
        namespace: Namespace,
        name: &'static str,
        unit: Unit,
        polarity: Polarity,
    ) -> MetricKey {
        MetricKey {
            namespace,
            name: Cow::Borrowed(name),
            unit,
            polarity,
        }
    }

    /// A key with an owned name, default unit ([`Unit::Count`]) and neutral polarity.
    pub fn custom(namespace: Namespace, name: impl Into<String>) -> MetricKey {
        MetricKey {
            namespace,
            name: Cow::Owned(name.into()),
            unit: Unit::default(),
            polarity: Polarity::default(),
        }
    }

    /// Returns this key with a different unit.
    pub fn with_unit(mut self, unit: Unit) -> MetricKey {
        self.unit = unit;
        self
    }

    /// Returns this key with a different polarity.
    pub fn with_polarity(mut self, polarity: Polarity) -> MetricKey {
        self.polarity = polarity;
        self
    }

    /// The key's namespace.
    pub fn namespace(&self) -> Namespace {
        self.namespace
    }

    /// The key's name within its namespace.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unit values of this metric are expressed in.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// Which direction of change is an improvement.
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }

    /// The full `namespace/name` path, the stable serialized identity of the key.
    pub fn path(&self) -> String {
        format!("{}/{}", self.namespace, self.name)
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.namespace, self.name)
    }
}

// Identity is (namespace, name); unit/polarity are metadata.
impl PartialEq for MetricKey {
    fn eq(&self, other: &Self) -> bool {
        self.namespace == other.namespace && self.name == other.name
    }
}
impl Eq for MetricKey {}

impl PartialOrd for MetricKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MetricKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.namespace, self.name.as_ref()).cmp(&(other.namespace, other.name.as_ref()))
    }
}

impl std::hash::Hash for MetricKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.namespace.hash(state);
        self.name.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_ignores_unit_and_polarity() {
        let a = MetricKey::named(
            Namespace::Scenario,
            "x",
            Unit::Seconds,
            Polarity::LowerIsBetter,
        );
        let b = MetricKey::custom(Namespace::Scenario, "x");
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        let c = MetricKey::custom(Namespace::Probe, "x");
        assert_ne!(a, c);
    }

    #[test]
    fn paths_and_metadata() {
        assert_eq!(MetricKey::BOOTSTRAP_TIME.path(), "scenario/bootstrap_s");
        assert_eq!(
            MetricKey::BOOTSTRAP_TIME.to_string(),
            "scenario/bootstrap_s"
        );
        assert_eq!(MetricKey::BOOTSTRAP_TIME.unit(), Unit::Seconds);
        assert_eq!(
            MetricKey::BOOTSTRAP_TIME.polarity(),
            Polarity::LowerIsBetter
        );
        assert_eq!(MetricKey::THROUGHPUT.polarity(), Polarity::HigherIsBetter);
        assert_eq!(Unit::MbitPerSec.symbol(), "Mbit/s");
        let k = MetricKey::custom(Namespace::Bench, "nodes")
            .with_unit(Unit::Count)
            .with_polarity(Polarity::Neutral);
        assert_eq!(k.path(), "bench/nodes");
        assert_eq!(k.unit(), Unit::Count);
    }

    #[test]
    fn ordering_is_by_namespace_then_name() {
        let mut keys = [
            MetricKey::custom(Namespace::Probe, "b"),
            MetricKey::custom(Namespace::Scenario, "z"),
            MetricKey::custom(Namespace::Probe, "a"),
        ];
        keys.sort();
        let paths: Vec<String> = keys.iter().map(MetricKey::path).collect();
        assert_eq!(paths, vec!["scenario/z", "probe/a", "probe/b"]);
    }
}
