//! Bounded ring-buffer retention for JSON-lines streams.
//!
//! A long-running service cannot keep an unbounded [`JsonLinesSink`](crate::JsonLinesSink)
//! file growing forever, but it still wants the *recent* samples queryable — the idiom
//! of canic's paged log helpers. [`RingSink`] keeps the last `capacity` rendered lines
//! in memory, stamps each with a monotonically increasing sequence number, counts what
//! it evicts, and serves paged reads over whatever survives.

use crate::key::MetricKey;
use crate::recorder::{json_escape, Recorder};
use std::collections::VecDeque;

/// A bounded in-memory ring of rendered JSON lines with drop-count accounting.
///
/// Lines enter either through the [`Recorder`] impl (rendered exactly like
/// [`JsonLinesSink`](crate::JsonLinesSink): `{"scope":...,"metric":...,"unit":...,
/// "value":...}`) or pre-rendered through [`RingSink::push_line`]. Every line gets
/// the next sequence number; once `capacity` lines are retained, each push evicts
/// the oldest line and increments [`RingSink::dropped`]. [`RingSink::page`] serves
/// bounded reads by sequence number — the backing store of a paged `/log` endpoint.
///
/// # Example
///
/// ```
/// use sdn_metrics::{MetricKey, Recorder, RingSink};
///
/// let mut ring = RingSink::new(2);
/// for value in [1.0, 2.0, 3.0] {
///     ring.record("B4", &MetricKey::BOOTSTRAP_TIME, value);
/// }
/// assert_eq!(ring.len(), 2);
/// assert_eq!(ring.dropped(), 1);
/// let page = ring.page(0, 10);
/// assert_eq!(page.first_seq, Some(1)); // line 0 was evicted
/// assert_eq!(page.lines.len(), 2);
/// assert_eq!(page.next, 3);
/// ```
#[derive(Clone, Debug)]
pub struct RingSink {
    capacity: usize,
    /// Retained `(sequence, line)` pairs, oldest first. Sequences are contiguous.
    lines: VecDeque<(u64, String)>,
    next_seq: u64,
    dropped: u64,
}

/// One paged read out of a [`RingSink`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RingPage {
    /// The `(sequence, line)` pairs satisfying the request, oldest first.
    pub lines: Vec<(u64, String)>,
    /// Sequence number of the oldest retained line at read time (`None` when empty).
    pub first_seq: Option<u64>,
    /// The sequence the *next* pushed line will get — pass back as `from` to poll.
    pub next: u64,
    /// Lines evicted so far over the ring's whole lifetime.
    pub dropped: u64,
}

impl RingSink {
    /// A ring retaining at most `capacity` lines (minimum 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            lines: VecDeque::new(),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Appends one pre-rendered line (without trailing newline), evicting the oldest
    /// retained line when full. Returns the sequence number the line was stamped with.
    pub fn push_line(&mut self, line: impl Into<String>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.lines.len() == self.capacity {
            self.lines.pop_front();
            self.dropped += 1;
        }
        self.lines.push_back((seq, line.into()));
        seq
    }

    /// Lines currently retained.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The configured retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total lines evicted since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The sequence number the next pushed line will receive (also the total number
    /// of lines ever pushed).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Sequence number of the oldest retained line, if any.
    pub fn first_seq(&self) -> Option<u64> {
        self.lines.front().map(|(seq, _)| *seq)
    }

    /// Serves at most `limit` retained lines with sequence `>= from`, oldest first.
    /// A `from` older than retention simply starts at the oldest survivor — the
    /// page's `dropped`/`first_seq` fields let the caller detect the gap.
    pub fn page(&self, from: u64, limit: usize) -> RingPage {
        let lines = self
            .lines
            .iter()
            .skip_while(|(seq, _)| *seq < from)
            .take(limit)
            .cloned()
            .collect();
        RingPage {
            lines,
            first_seq: self.first_seq(),
            next: self.next_seq,
            dropped: self.dropped,
        }
    }
}

impl Recorder for RingSink {
    fn record(&mut self, scope: &str, key: &MetricKey, value: f64) {
        let mut line = String::with_capacity(96);
        line.push_str("{\"scope\":\"");
        json_escape(scope, &mut line);
        line.push_str("\",\"metric\":\"");
        json_escape(&key.path(), &mut line);
        line.push_str("\",\"unit\":\"");
        json_escape(key.unit().symbol(), &mut line);
        line.push_str("\",\"value\":");
        if value.is_finite() {
            line.push_str(&format!("{value}"));
        } else {
            line.push_str("null");
        }
        line.push('}');
        self.push_line(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_the_newest_capacity_lines_and_counts_drops() {
        let mut ring = RingSink::new(3);
        assert!(ring.is_empty());
        for i in 0..10 {
            assert_eq!(ring.push_line(format!("line {i}")), i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        assert_eq!(ring.dropped(), 7);
        assert_eq!(ring.next_seq(), 10);
        assert_eq!(ring.first_seq(), Some(7));
    }

    #[test]
    fn pages_by_sequence_with_limit() {
        let mut ring = RingSink::new(5);
        for i in 0..8 {
            ring.push_line(format!("l{i}"));
        }
        // Retained: 3..8. A stale `from` starts at the oldest survivor.
        let page = ring.page(0, 2);
        assert_eq!(
            page.lines,
            vec![(3, "l3".to_string()), (4, "l4".to_string())]
        );
        assert_eq!(page.first_seq, Some(3));
        assert_eq!(page.next, 8);
        assert_eq!(page.dropped, 3);
        // Resuming from the middle.
        let page = ring.page(6, 10);
        assert_eq!(
            page.lines,
            vec![(6, "l6".to_string()), (7, "l7".to_string())]
        );
        // A `from` at the head returns an empty page whose `next` is the poll cursor.
        let page = ring.page(8, 10);
        assert!(page.lines.is_empty());
        assert_eq!(page.next, 8);
    }

    #[test]
    fn recorder_impl_renders_json_lines() {
        let mut ring = RingSink::new(4);
        ring.record("fat_tree(8)", &MetricKey::BOOTSTRAP_TIME, 1.5);
        ring.record("say \"hi\"", &MetricKey::BOOTSTRAP_TIME, f64::NAN);
        let page = ring.page(0, 10);
        assert_eq!(
            page.lines[0].1,
            "{\"scope\":\"fat_tree(8)\",\"metric\":\"scenario/bootstrap_s\",\"unit\":\"s\",\"value\":1.5}"
        );
        assert_eq!(
            page.lines[1].1,
            "{\"scope\":\"say \\\"hi\\\"\",\"metric\":\"scenario/bootstrap_s\",\"unit\":\"s\",\"value\":null}"
        );
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut ring = RingSink::new(0);
        ring.push_line("a");
        ring.push_line("b");
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.page(0, 10).lines, vec![(1, "b".to_string())]);
    }
}
