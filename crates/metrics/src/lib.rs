//! The typed observability pipeline shared by the simulator, the scenario runner, and
//! the benchmark harness.
//!
//! Three pieces replace the stringly-typed `Vec<(String, f64)>` plumbing the workspace
//! grew up with:
//!
//! * [`MetricKey`] — a typed, namespaced metric identity (`scenario/bootstrap_s`,
//!   `probe/legitimacy`, ...) carrying a [`Unit`] and a [`Polarity`] so downstream
//!   code can format values and decide which direction of change is a regression
//!   without parsing names,
//! * [`Digest`] — a streaming, mergeable summary of repeated measurements
//!   (count/mean/stddev/min/max plus p50/p90/p99 quantiles) that experiment code
//!   aggregates instead of buffering every sample,
//! * [`Recorder`] — the sink abstraction observations flow through: an in-memory
//!   digest store ([`MemorySink`]), streaming JSON-lines ([`JsonLinesSink`]) and CSV
//!   ([`CsvSink`]) writers, and a [`Fanout`] combinator.
//!
//! # Example
//!
//! ```
//! use sdn_metrics::{MetricKey, MemorySink, Recorder};
//!
//! let mut sink = MemorySink::default();
//! for value in [1.0, 2.0, 3.0] {
//!     sink.record("B4", &MetricKey::BOOTSTRAP_TIME, value);
//! }
//! let digest = sink.digest("B4", &MetricKey::BOOTSTRAP_TIME).unwrap();
//! assert_eq!(digest.len(), 3);
//! assert_eq!(digest.mean(), 2.0);
//! assert_eq!(digest.median(), 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod digest;
mod key;
mod recorder;
mod ring;

pub use digest::Digest;
pub use key::{MetricKey, Namespace, Polarity, Unit};
pub use recorder::{csv_field, CsvSink, Fanout, JsonLinesSink, MemorySink, Recorder};
pub use ring::{RingPage, RingSink};
