//! The legitimate-state predicate (paper, Definition 1) evaluated over a running
//! [`SdnNetwork`].
//!
//! A state is legitimate when, for every live controller `i` and node `k`:
//!
//! 1. `i`'s discovered topology equals the part of the connected topology it can reach,
//! 2. every switch is managed by exactly the live controllers (and nothing else),
//! 3. the installed rules let `i` and `k` exchange packets in-band over the operational
//!    network (both directions),
//! 4. no switch stores rules of controllers that are no longer part of the system.
//!
//! Every bootstrap-time and recovery-time measurement in the bench harness is "time
//! until [`check`] returns an empty issue list".

use crate::harness::SdnNetwork;
use sdn_switch::forwarding;
use sdn_topology::flat::NO_INDEX;
use sdn_topology::{BfsScratch, FlatGraph, Graph, NodeId};
use std::collections::BTreeSet;

/// The outcome of a legitimacy check: an empty issue list means the state is legitimate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LegitimacyReport {
    /// Human-readable descriptions of every violated condition.
    pub issues: Vec<String>,
}

impl LegitimacyReport {
    /// Returns `true` when no condition is violated.
    pub fn is_legitimate(&self) -> bool {
        self.issues.is_empty()
    }

    fn push(&mut self, issue: String) {
        // Cap the list so that a completely un-converged network does not allocate an
        // enormous report on every check.
        if self.issues.len() < 64 {
            self.issues.push(issue);
        }
    }
}

/// Evaluates the legitimacy predicate over the current state of `net`.
///
/// The operational graph is snapshot once into a [`FlatGraph`] and every
/// reachability question — the per-controller switch-transit sets, the induced
/// subgraphs, and the in-band routing walks — runs over that snapshot with a
/// shared, reusable [`BfsScratch`] workspace.
pub fn check(net: &SdnNetwork) -> LegitimacyReport {
    let mut report = LegitimacyReport::default();
    let operational = net.sim().operational_graph();
    let live_controllers = net.live_controller_ids();
    let live_switches = net.live_switch_ids();

    if live_controllers.is_empty() {
        report.push("no live controller exists".to_string());
        return report;
    }

    // All reachability below is "through switches only": controllers never forward
    // packets, so a node that can only be reached by relaying through another controller
    // is outside the task definition (it cannot be discovered or managed in-band).
    let controller_set: BTreeSet<NodeId> = net.controller_ids().into_iter().collect();
    let flat = operational.snapshot();
    let mut scratch = BfsScratch::new();
    let is_controller: Vec<bool> = flat
        .node_ids()
        .iter()
        .map(|n| controller_set.contains(n))
        .collect();

    // One switch-transit BFS per live controller, shared by conditions 1–3
    // (the old code re-ran it per (switch, controller) pair).
    let transit: Vec<(NodeId, TransitReach)> = live_controllers
        .iter()
        .map(|&c| {
            (
                c,
                TransitReach::compute(&flat, c, &is_controller, &mut scratch),
            )
        })
        .collect();

    // Condition 1: every live controller knows the topology it can reach.
    for (c, reach) in &transit {
        let c = *c;
        let Some(controller) = net.controller(c) else {
            report.push(format!("controller {c} has no state machine"));
            continue;
        };
        let observed = net.sim().observed(c);
        let discovered = controller.discovered_graph(observed);
        let expected = reach.induced_subgraph(&flat);
        if discovered != expected {
            report.push(format!(
                "controller {c} topology view diverges: knows {} nodes / {} links, expected {} nodes / {} links",
                discovered.node_count(),
                discovered.link_count(),
                expected.node_count(),
                expected.link_count(),
            ));
        }
    }

    // Condition 2 and 4: manager sets and rule ownership match the live controller set.
    for &s in &live_switches {
        let Some(switch) = net.switch(s) else {
            report.push(format!("switch {s} has no state machine"));
            continue;
        };
        let expected_managers: BTreeSet<NodeId> = transit
            .iter()
            .filter(|(_, reach)| reach.contains(&flat, s))
            .map(|&(c, _)| c)
            .collect();
        let actual_managers: BTreeSet<NodeId> =
            switch.managers().to_sorted_vec().into_iter().collect();
        if actual_managers != expected_managers {
            report.push(format!(
                "switch {s} managers {actual_managers:?} differ from live controllers {expected_managers:?}"
            ));
        }
        let rule_owners: BTreeSet<NodeId> = switch
            .rules()
            .controllers_with_rules()
            .into_iter()
            .collect();
        for owner in rule_owners {
            if !expected_managers.contains(&owner) {
                report.push(format!(
                    "switch {s} still stores rules of stale controller {owner}"
                ));
            }
        }
    }

    // Condition 3: in-band connectivity between every controller and every node it can
    // possibly reach without relaying through another controller.
    let mut neighbor_buf: Vec<NodeId> = Vec::new();
    for (c, reach) in &transit {
        let c = *c;
        for &node in &reach.nodes {
            if node == c {
                continue;
            }
            if route_in_band_flat(net, &flat, c, node, &mut neighbor_buf).is_none() {
                report.push(format!("no in-band path from controller {c} to {node}"));
            }
            if route_in_band_flat(net, &flat, node, c, &mut neighbor_buf).is_none() {
                report.push(format!(
                    "no in-band path from {node} back to controller {c}"
                ));
            }
        }
    }

    report
}

/// The switch-transit reachability of one controller: nodes reachable along paths
/// whose *intermediate* hops are all switches — the reachability notion that matters
/// in-band, because controllers never forward.
struct TransitReach {
    /// Reached nodes in ascending identifier order.
    nodes: Vec<NodeId>,
    /// Membership mask per dense index of the snapshot the BFS ran over.
    mask: Vec<bool>,
}

impl TransitReach {
    fn compute(
        flat: &FlatGraph,
        from: NodeId,
        is_controller: &[bool],
        scratch: &mut BfsScratch,
    ) -> Self {
        let mut mask = vec![false; flat.node_count()];
        let Some(source) = flat.index_of(from) else {
            // A node outside the operational graph reaches only itself.
            return TransitReach {
                nodes: vec![from],
                mask,
            };
        };
        flat.bfs_filtered(source, scratch, |idx| !is_controller[idx as usize]);
        let mut nodes = Vec::new();
        for (idx, &d) in scratch.distances().iter().enumerate() {
            if d != NO_INDEX {
                mask[idx] = true;
                nodes.push(flat.node_at(idx as u32));
            }
        }
        TransitReach { nodes, mask }
    }

    fn contains(&self, flat: &FlatGraph, node: NodeId) -> bool {
        flat.index_of(node)
            .map(|idx| self.mask[idx as usize])
            .unwrap_or(false)
    }

    /// The subgraph of the snapshot induced by the reached nodes.
    fn induced_subgraph(&self, flat: &FlatGraph) -> Graph {
        let mut out = Graph::new();
        for &n in &self.nodes {
            out.add_node(n);
        }
        for (idx, reached) in self.mask.iter().enumerate() {
            if !reached {
                continue;
            }
            let idx = idx as u32;
            for &peer in flat.neighbor_indices(idx) {
                if peer > idx && self.mask[peer as usize] {
                    out.add_link(flat.node_at(idx), flat.node_at(peer));
                }
            }
        }
        out
    }
}

/// Simulates the in-band forwarding of one packet from `from` to `to` over the current
/// switch configurations and the operational graph, without mutating any state.
///
/// Returns the traversed path, or `None` when the packet would be dropped. The walk
/// reproduces exactly what [`crate::nodes::SwitchNode`] does: rule-based next hop with
/// fast-failover priorities, direct-neighbor fallback, and DFS bounce-back.
pub fn route_in_band(
    net: &SdnNetwork,
    operational: &Graph,
    from: NodeId,
    to: NodeId,
) -> Option<Vec<NodeId>> {
    // Walks the graph directly — a single path probe does not amortize a CSR
    // snapshot; the batch caller [`check`] uses the snapshot variant below.
    route_in_band_impl(
        net,
        operational.node_count(),
        |cur, buf| buf.extend(operational.neighbors(cur)),
        from,
        to,
        &mut Vec::new(),
    )
}

/// [`route_in_band`] over a prepared snapshot: the hot-path variant [`check`] uses,
/// reading neighbor slices straight off the CSR rows into a reusable buffer.
fn route_in_band_flat(
    net: &SdnNetwork,
    flat: &FlatGraph,
    from: NodeId,
    to: NodeId,
    neighbor_buf: &mut Vec<NodeId>,
) -> Option<Vec<NodeId>> {
    route_in_band_impl(
        net,
        flat.node_count(),
        |cur, buf| buf.extend(flat.neighbors(cur)),
        from,
        to,
        neighbor_buf,
    )
}

/// The shared in-band DFS walk, parameterized over the neighbor source.
fn route_in_band_impl<F>(
    net: &SdnNetwork,
    node_count: usize,
    mut fill_neighbors: F,
    from: NodeId,
    to: NodeId,
    neighbor_buf: &mut Vec<NodeId>,
) -> Option<Vec<NodeId>>
where
    F: FnMut(NodeId, &mut Vec<NodeId>),
{
    let ttl = 4 * node_count.max(4);
    let mut visited: Vec<NodeId> = vec![from];
    let mut trail: Vec<NodeId> = vec![from];
    let mut path: Vec<NodeId> = vec![from];
    let mut hops = 0usize;

    while let Some(&cur) = trail.last() {
        if cur == to {
            return Some(path);
        }
        if hops >= ttl {
            return None;
        }
        neighbor_buf.clear();
        fill_neighbors(cur, neighbor_buf);
        let neighbors: &[NodeId] = neighbor_buf;
        let next = if let Some(controller) = net.controller(cur) {
            // Controllers only originate packets; mid-path controllers never forward.
            if cur == from {
                controller
                    .first_hop_candidates(to)
                    .into_iter()
                    .find(|h| neighbors.contains(h) && !visited.contains(h))
                    .or_else(|| (neighbors.contains(&to) && !visited.contains(&to)).then_some(to))
            } else {
                None
            }
        } else if let Some(switch) = net.switch(cur) {
            forwarding::decide(switch.rules(), from, to, &visited, neighbors, &mut |_| true)
        } else {
            None
        };
        match next {
            Some(h) => {
                visited.push(h);
                trail.push(h);
                path.push(h);
                hops += 1;
            }
            None => {
                trail.pop();
                if let Some(&back) = trail.last() {
                    path.push(back);
                    hops += 1;
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ControllerConfig, HarnessConfig};
    use sdn_netsim::SimDuration;
    use sdn_topology::builders;

    fn bootstrapped_ring() -> SdnNetwork {
        let topology = builders::ring(5, 1);
        let mut sdn = SdnNetwork::new(
            topology,
            ControllerConfig::for_network(1, 5),
            HarnessConfig::default().with_task_delay(SimDuration::from_millis(100)),
        );
        sdn.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("bootstrap");
        sdn
    }

    #[test]
    fn fresh_network_is_not_legitimate_and_report_explains_why() {
        let topology = builders::ring(4, 1);
        let sdn = SdnNetwork::new(
            topology,
            ControllerConfig::for_network(1, 4),
            HarnessConfig::default(),
        );
        let report = sdn.legitimacy_report();
        assert!(!report.is_legitimate());
        assert!(!report.issues.is_empty());
    }

    #[test]
    fn bootstrapped_network_is_legitimate_and_routes_in_band() {
        let sdn = bootstrapped_ring();
        let report = sdn.legitimacy_report();
        assert!(report.is_legitimate(), "issues: {:?}", report.issues);
        let operational = sdn.sim().operational_graph();
        let c = sdn.controller_ids()[0];
        for s in sdn.switch_ids() {
            let path = route_in_band(&sdn, operational, c, s).expect("path to switch");
            assert_eq!(*path.first().unwrap(), c);
            assert_eq!(*path.last().unwrap(), s);
            let back = route_in_band(&sdn, operational, s, c).expect("path back");
            assert_eq!(*back.last().unwrap(), c);
        }
    }

    #[test]
    fn corrupting_a_switch_breaks_legitimacy_until_recovery() {
        let mut sdn = bootstrapped_ring();
        let victim = sdn.switch_ids()[2];
        sdn.switch_mut(victim).unwrap().corrupt_clear();
        let report = sdn.legitimacy_report();
        assert!(
            !report.is_legitimate(),
            "cleared switch must break legitimacy"
        );
        // The controller re-installs everything within a bounded time.
        let elapsed = sdn
            .run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("self-stabilization after switch corruption");
        assert!(elapsed > SimDuration::ZERO);
    }

    #[test]
    fn stale_rule_owner_is_reported_and_cleaned() {
        let mut sdn = bootstrapped_ring();
        let victim = sdn.switch_ids()[0];
        let bogus = sdn_switch::Rule {
            cid: NodeId::new(99),
            sid: victim,
            src: None,
            dst: NodeId::new(1),
            prt: 200,
            fwd: NodeId::new(1),
            tag: sdn_tags::Tag::new(99, 1),
        };
        sdn.switch_mut(victim).unwrap().corrupt_install_rule(bogus);
        sdn.switch_mut(victim)
            .unwrap()
            .corrupt_add_manager(NodeId::new(99));
        let report = sdn.legitimacy_report();
        assert!(report
            .issues
            .iter()
            .any(|i| i.contains("stale controller") || i.contains("managers")));
        sdn.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(180))
            .expect("stale state must eventually be purged");
        let switch = sdn.switch(victim).unwrap();
        assert!(switch.rules().rules_of(NodeId::new(99)).is_empty());
        assert!(!switch.managers().contains(NodeId::new(99)));
    }
}
