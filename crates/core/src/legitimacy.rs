//! The legitimate-state predicate (paper, Definition 1) evaluated over a running
//! [`SdnNetwork`].
//!
//! A state is legitimate when, for every live controller `i` and node `k`:
//!
//! 1. `i`'s discovered topology equals the part of the connected topology it can reach,
//! 2. every switch is managed by exactly the live controllers (and nothing else),
//! 3. the installed rules let `i` and `k` exchange packets in-band over the operational
//!    network (both directions),
//! 4. no switch stores rules of controllers that are no longer part of the system.
//!
//! Every bootstrap-time and recovery-time measurement in the bench harness is "time
//! until [`check`] returns an empty issue list".

use crate::harness::SdnNetwork;
use sdn_switch::forwarding;
use sdn_topology::{Graph, NodeId};
use std::collections::BTreeSet;

/// The outcome of a legitimacy check: an empty issue list means the state is legitimate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LegitimacyReport {
    /// Human-readable descriptions of every violated condition.
    pub issues: Vec<String>,
}

impl LegitimacyReport {
    /// Returns `true` when no condition is violated.
    pub fn is_legitimate(&self) -> bool {
        self.issues.is_empty()
    }

    fn push(&mut self, issue: String) {
        // Cap the list so that a completely un-converged network does not allocate an
        // enormous report on every check.
        if self.issues.len() < 64 {
            self.issues.push(issue);
        }
    }
}

/// Evaluates the legitimacy predicate over the current state of `net`.
pub fn check(net: &SdnNetwork) -> LegitimacyReport {
    let mut report = LegitimacyReport::default();
    let operational = net.sim().operational_graph();
    let live_controllers = net.live_controller_ids();
    let live_switches = net.live_switch_ids();

    if live_controllers.is_empty() {
        report.push("no live controller exists".to_string());
        return report;
    }

    // All reachability below is "through switches only": controllers never forward
    // packets, so a node that can only be reached by relaying through another controller
    // is outside the task definition (it cannot be discovered or managed in-band).
    let controller_set: BTreeSet<NodeId> = net.controller_ids().into_iter().collect();

    // Condition 1: every live controller knows the topology it can reach.
    for &c in &live_controllers {
        let Some(controller) = net.controller(c) else {
            report.push(format!("controller {c} has no state machine"));
            continue;
        };
        let observed = net.sim().observed_neighbors(c);
        let discovered = controller.discovered_graph(&observed);
        let expected = reachable_subgraph(&operational, c, &controller_set);
        if discovered != expected {
            report.push(format!(
                "controller {c} topology view diverges: knows {} nodes / {} links, expected {} nodes / {} links",
                discovered.node_count(),
                discovered.link_count(),
                expected.node_count(),
                expected.link_count(),
            ));
        }
    }

    // Condition 2 and 4: manager sets and rule ownership match the live controller set.
    for &s in &live_switches {
        let Some(switch) = net.switch(s) else {
            report.push(format!("switch {s} has no state machine"));
            continue;
        };
        let expected_managers: BTreeSet<NodeId> = live_controllers
            .iter()
            .copied()
            .filter(|&c| switch_transit_reachable(&operational, c, &controller_set).contains(&s))
            .collect();
        let actual_managers: BTreeSet<NodeId> =
            switch.managers().to_sorted_vec().into_iter().collect();
        if actual_managers != expected_managers {
            report.push(format!(
                "switch {s} managers {actual_managers:?} differ from live controllers {expected_managers:?}"
            ));
        }
        let rule_owners: BTreeSet<NodeId> = switch
            .rules()
            .controllers_with_rules()
            .into_iter()
            .collect();
        for owner in rule_owners {
            if !expected_managers.contains(&owner) {
                report.push(format!(
                    "switch {s} still stores rules of stale controller {owner}"
                ));
            }
        }
    }

    // Condition 3: in-band connectivity between every controller and every node it can
    // possibly reach without relaying through another controller.
    for &c in &live_controllers {
        for node in switch_transit_reachable(&operational, c, &controller_set) {
            if node == c {
                continue;
            }
            if route_in_band(net, &operational, c, node).is_none() {
                report.push(format!("no in-band path from controller {c} to {node}"));
            }
            if route_in_band(net, &operational, node, c).is_none() {
                report.push(format!(
                    "no in-band path from {node} back to controller {c}"
                ));
            }
        }
    }

    report
}

/// Nodes reachable from `from` along paths whose *intermediate* hops are all switches —
/// the reachability notion that matters in-band, because controllers never forward.
fn switch_transit_reachable(
    graph: &Graph,
    from: NodeId,
    controllers: &BTreeSet<NodeId>,
) -> BTreeSet<NodeId> {
    let mut reachable = BTreeSet::new();
    let mut queue = std::collections::VecDeque::new();
    reachable.insert(from);
    queue.push_back(from);
    while let Some(node) = queue.pop_front() {
        // Only the starting node and switches relay further.
        if node != from && controllers.contains(&node) {
            continue;
        }
        for next in graph.neighbors(node) {
            if reachable.insert(next) {
                queue.push_back(next);
            }
        }
    }
    reachable
}

/// The subgraph of `graph` induced by the nodes reachable from `from` without relaying
/// through controllers.
fn reachable_subgraph(graph: &Graph, from: NodeId, controllers: &BTreeSet<NodeId>) -> Graph {
    let reachable = switch_transit_reachable(graph, from, controllers);
    let mut out = Graph::new();
    for &n in &reachable {
        out.add_node(n);
    }
    for link in graph.links() {
        if reachable.contains(&link.a) && reachable.contains(&link.b) {
            out.add_link(link.a, link.b);
        }
    }
    out
}

/// Simulates the in-band forwarding of one packet from `from` to `to` over the current
/// switch configurations and the operational graph, without mutating any state.
///
/// Returns the traversed path, or `None` when the packet would be dropped. The walk
/// reproduces exactly what [`crate::nodes::SwitchNode`] does: rule-based next hop with
/// fast-failover priorities, direct-neighbor fallback, and DFS bounce-back.
pub fn route_in_band(
    net: &SdnNetwork,
    operational: &Graph,
    from: NodeId,
    to: NodeId,
) -> Option<Vec<NodeId>> {
    let ttl = 4 * operational.node_count().max(4);
    let mut visited: Vec<NodeId> = vec![from];
    let mut trail: Vec<NodeId> = vec![from];
    let mut path: Vec<NodeId> = vec![from];
    let mut hops = 0usize;

    while let Some(&cur) = trail.last() {
        if cur == to {
            return Some(path);
        }
        if hops >= ttl {
            return None;
        }
        let neighbors: Vec<NodeId> = operational.neighbors(cur).collect();
        let next = if let Some(controller) = net.controller(cur) {
            // Controllers only originate packets; mid-path controllers never forward.
            if cur == from {
                controller
                    .first_hop_candidates(to)
                    .into_iter()
                    .find(|h| neighbors.contains(h) && !visited.contains(h))
                    .or_else(|| (neighbors.contains(&to) && !visited.contains(&to)).then_some(to))
            } else {
                None
            }
        } else if let Some(switch) = net.switch(cur) {
            forwarding::decide(switch.rules(), from, to, &visited, &neighbors, &mut |_| {
                true
            })
        } else {
            None
        };
        match next {
            Some(h) => {
                visited.push(h);
                trail.push(h);
                path.push(h);
                hops += 1;
            }
            None => {
                trail.pop();
                if let Some(&back) = trail.last() {
                    path.push(back);
                    hops += 1;
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ControllerConfig, HarnessConfig};
    use sdn_netsim::SimDuration;
    use sdn_topology::builders;

    fn bootstrapped_ring() -> SdnNetwork {
        let topology = builders::ring(5, 1);
        let mut sdn = SdnNetwork::new(
            topology,
            ControllerConfig::for_network(1, 5),
            HarnessConfig::default().with_task_delay(SimDuration::from_millis(100)),
        );
        sdn.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("bootstrap");
        sdn
    }

    #[test]
    fn fresh_network_is_not_legitimate_and_report_explains_why() {
        let topology = builders::ring(4, 1);
        let sdn = SdnNetwork::new(
            topology,
            ControllerConfig::for_network(1, 4),
            HarnessConfig::default(),
        );
        let report = sdn.legitimacy_report();
        assert!(!report.is_legitimate());
        assert!(!report.issues.is_empty());
    }

    #[test]
    fn bootstrapped_network_is_legitimate_and_routes_in_band() {
        let sdn = bootstrapped_ring();
        let report = sdn.legitimacy_report();
        assert!(report.is_legitimate(), "issues: {:?}", report.issues);
        let operational = sdn.sim().operational_graph();
        let c = sdn.controller_ids()[0];
        for s in sdn.switch_ids() {
            let path = route_in_band(&sdn, &operational, c, s).expect("path to switch");
            assert_eq!(*path.first().unwrap(), c);
            assert_eq!(*path.last().unwrap(), s);
            let back = route_in_band(&sdn, &operational, s, c).expect("path back");
            assert_eq!(*back.last().unwrap(), c);
        }
    }

    #[test]
    fn corrupting_a_switch_breaks_legitimacy_until_recovery() {
        let mut sdn = bootstrapped_ring();
        let victim = sdn.switch_ids()[2];
        sdn.switch_mut(victim).unwrap().corrupt_clear();
        let report = sdn.legitimacy_report();
        assert!(
            !report.is_legitimate(),
            "cleared switch must break legitimacy"
        );
        // The controller re-installs everything within a bounded time.
        let elapsed = sdn
            .run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("self-stabilization after switch corruption");
        assert!(elapsed > SimDuration::ZERO);
    }

    #[test]
    fn stale_rule_owner_is_reported_and_cleaned() {
        let mut sdn = bootstrapped_ring();
        let victim = sdn.switch_ids()[0];
        let bogus = sdn_switch::Rule {
            cid: NodeId::new(99),
            sid: victim,
            src: None,
            dst: NodeId::new(1),
            prt: 200,
            fwd: NodeId::new(1),
            tag: sdn_tags::Tag::new(99, 1),
        };
        sdn.switch_mut(victim).unwrap().corrupt_install_rule(bogus);
        sdn.switch_mut(victim)
            .unwrap()
            .corrupt_add_manager(NodeId::new(99));
        let report = sdn.legitimacy_report();
        assert!(report
            .issues
            .iter()
            .any(|i| i.contains("stale controller") || i.contains("managers")));
        sdn.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(180))
            .expect("stale state must eventually be purged");
        let switch = sdn.switch(victim).unwrap();
        assert!(switch.rules().rules_of(NodeId::new(99)).is_empty());
        assert!(!switch.managers().contains(NodeId::new(99)));
    }
}
