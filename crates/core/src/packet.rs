//! The in-band control packet envelope.
//!
//! All control-plane traffic — command batches, queries, and query replies — travels
//! *through the data plane*: a packet is handed from switch to switch according to the
//! rules the controllers themselves installed. The envelope carries the source and
//! destination header fields the rules match on, a TTL, and the depth-first traversal
//! state (visited set and trail) used by the bounce-back failover of the paper's
//! building block \[6\].

use sdn_netsim::Payload;
use sdn_switch::{CommandBatch, QueryReply};
use sdn_topology::NodeId;

/// What a control packet carries.
#[derive(Clone, Debug, PartialEq)]
pub enum PacketBody {
    /// A controller-to-node command batch (switches apply it; controllers answer the
    /// trailing query and ignore the rest, per Algorithm 2 line 23).
    Commands(CommandBatch),
    /// A query reply travelling back to the querying controller.
    Reply(QueryReply),
}

impl PacketBody {
    /// Approximate payload size in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            PacketBody::Commands(batch) => batch.wire_size(),
            PacketBody::Reply(reply) => reply.wire_size(),
        }
    }
}

/// An in-band control-plane packet.
///
/// # Example
///
/// ```
/// use renaissance::packet::{ControlPacket, PacketBody};
/// use sdn_switch::{CommandBatch, SwitchCommand};
/// use sdn_tags::Tag;
/// use sdn_topology::NodeId;
///
/// let batch = CommandBatch::new(NodeId::new(0), vec![SwitchCommand::Query { tag: Tag::new(0, 1) }]);
/// let pkt = ControlPacket::new(NodeId::new(0), NodeId::new(7), 64, PacketBody::Commands(batch));
/// assert_eq!(pkt.src, NodeId::new(0));
/// assert_eq!(pkt.dst, NodeId::new(7));
/// assert_eq!(pkt.visited, vec![NodeId::new(0)]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ControlPacket {
    /// The node that originated the packet (matched by the rules' source field).
    pub src: NodeId,
    /// The node the packet is destined to.
    pub dst: NodeId,
    /// Remaining hops before the packet is dropped.
    pub ttl: u16,
    /// Every node the packet has visited (monotonically growing; DFS visited set).
    pub visited: Vec<NodeId>,
    /// The current DFS trail (stack); the last element is the packet's current holder,
    /// and bounce-backs pop it to return to the previous hop.
    pub trail: Vec<NodeId>,
    /// The payload.
    pub body: PacketBody,
}

impl ControlPacket {
    /// Creates a packet originating at `src` (which is recorded as already visited).
    pub fn new(src: NodeId, dst: NodeId, ttl: u16, body: PacketBody) -> Self {
        ControlPacket {
            src,
            dst,
            ttl,
            visited: vec![src],
            trail: vec![src],
            body,
        }
    }

    /// Records that the packet is now held by `node`, updating the visited set and the
    /// DFS trail. Idempotent when the node is already at the top of the trail.
    pub fn arrive_at(&mut self, node: NodeId) {
        if !self.visited.contains(&node) {
            self.visited.push(node);
        }
        if self.trail.last() != Some(&node) {
            self.trail.push(node);
        }
    }

    /// Pops the current holder off the trail and returns the node the packet should
    /// bounce back to, if any.
    pub fn bounce_back(&mut self) -> Option<NodeId> {
        self.trail.pop();
        self.trail.last().copied()
    }

    /// Decrements the TTL; returns `false` when the packet must be dropped.
    pub fn consume_hop(&mut self) -> bool {
        if self.ttl == 0 {
            return false;
        }
        self.ttl -= 1;
        true
    }
}

impl Payload for ControlPacket {
    fn wire_size(&self) -> usize {
        // Envelope header + DFS state + payload.
        24 + self.visited.len() * 4 + self.trail.len() * 4 + self.body.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_switch::SwitchCommand;
    use sdn_tags::Tag;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn query_packet(src: u32, dst: u32, ttl: u16) -> ControlPacket {
        let batch = CommandBatch::new(
            n(src),
            vec![SwitchCommand::Query {
                tag: Tag::new(src, 1),
            }],
        );
        ControlPacket::new(n(src), n(dst), ttl, PacketBody::Commands(batch))
    }

    #[test]
    fn new_packet_starts_with_source_visited() {
        let p = query_packet(0, 5, 8);
        assert_eq!(p.visited, vec![n(0)]);
        assert_eq!(p.trail, vec![n(0)]);
        assert_eq!(p.ttl, 8);
    }

    #[test]
    fn arrival_updates_visited_and_trail_once() {
        let mut p = query_packet(0, 5, 8);
        p.arrive_at(n(3));
        p.arrive_at(n(3));
        assert_eq!(p.visited, vec![n(0), n(3)]);
        assert_eq!(p.trail, vec![n(0), n(3)]);
        p.arrive_at(n(4));
        assert_eq!(p.trail, vec![n(0), n(3), n(4)]);
    }

    #[test]
    fn bounce_back_walks_the_trail() {
        let mut p = query_packet(0, 5, 8);
        p.arrive_at(n(3));
        p.arrive_at(n(4));
        assert_eq!(p.bounce_back(), Some(n(3)));
        assert_eq!(p.bounce_back(), Some(n(0)));
        assert_eq!(p.bounce_back(), None);
    }

    #[test]
    fn ttl_consumption() {
        let mut p = query_packet(0, 5, 2);
        assert!(p.consume_hop());
        assert!(p.consume_hop());
        assert!(!p.consume_hop());
        assert_eq!(p.ttl, 0);
    }

    #[test]
    fn wire_size_includes_body_and_state() {
        let p = query_packet(0, 5, 8);
        let small = p.wire_size();
        let mut big = p.clone();
        big.arrive_at(n(1));
        big.arrive_at(n(2));
        assert!(big.wire_size() > small);
        let reply = ControlPacket::new(
            n(5),
            n(0),
            8,
            PacketBody::Reply(QueryReply::from_controller(
                n(5),
                vec![n(1)],
                Tag::new(0, 1),
            )),
        );
        assert!(reply.wire_size() > 24);
    }
}
