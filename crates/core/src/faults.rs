//! Transient-fault injection: arbitrary state corruption, the "rare" faults of the
//! paper's fault model (Section 3.4.2) that the Mininet prototype could not exercise but
//! a simulation can.
//!
//! The injector scribbles over switch rule tables, manager sets, controller reply
//! databases, and round tags. Theorem 2 of the paper promises recovery from *any* such
//! state within a bounded number of frames; the integration tests and the
//! `ablation_variants` bench use this module to check that empirically.

use crate::harness::SdnNetwork;
use sdn_rng::Rng;
use sdn_switch::{QueryReply, Rule};
use sdn_tags::Tag;
use sdn_topology::NodeId;

/// How aggressively to corrupt the network state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorruptionPlan {
    /// Number of garbage rules injected per switch.
    pub garbage_rules_per_switch: usize,
    /// Number of bogus managers injected per switch.
    pub bogus_managers_per_switch: usize,
    /// Whether to wipe a random subset of switches completely.
    pub clear_some_switches: bool,
    /// Number of bogus replies injected into each controller's replyDB.
    pub bogus_replies_per_controller: usize,
    /// Whether to corrupt every controller's round tags.
    pub corrupt_controller_tags: bool,
}

impl Default for CorruptionPlan {
    fn default() -> Self {
        CorruptionPlan {
            garbage_rules_per_switch: 8,
            bogus_managers_per_switch: 2,
            clear_some_switches: true,
            bogus_replies_per_controller: 4,
            corrupt_controller_tags: true,
        }
    }
}

impl CorruptionPlan {
    /// A light corruption: a few garbage rules only.
    pub fn light() -> Self {
        CorruptionPlan {
            garbage_rules_per_switch: 2,
            bogus_managers_per_switch: 0,
            clear_some_switches: false,
            bogus_replies_per_controller: 0,
            corrupt_controller_tags: false,
        }
    }

    /// A heavy corruption touching every kind of state the model allows.
    pub fn heavy() -> Self {
        CorruptionPlan {
            garbage_rules_per_switch: 32,
            bogus_managers_per_switch: 8,
            clear_some_switches: true,
            bogus_replies_per_controller: 16,
            corrupt_controller_tags: true,
        }
    }
}

/// Deterministic transient-fault injector.
#[derive(Debug)]
pub struct FaultInjector {
    rng: Rng,
}

impl FaultInjector {
    /// Creates an injector with a fixed seed (experiments stay reproducible).
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// Applies `plan` to the whole network: every switch and every controller is
    /// corrupted according to the plan. Returns the number of state mutations performed.
    pub fn corrupt(&mut self, net: &mut SdnNetwork, plan: CorruptionPlan) -> usize {
        let mut mutations = 0;
        let node_count = net.topology().node_count() as u32;
        let switches = net.switch_ids();
        let controllers = net.controller_ids();

        for &s in &switches {
            if plan.clear_some_switches && self.rng.gen_bool(0.25) {
                if let Some(switch) = net.switch_mut(s) {
                    switch.corrupt_clear();
                    mutations += 1;
                }
            }
            for _ in 0..plan.garbage_rules_per_switch {
                let rule = self.random_rule(s, node_count);
                if let Some(switch) = net.switch_mut(s) {
                    switch.corrupt_install_rule(rule);
                    mutations += 1;
                }
            }
            for _ in 0..plan.bogus_managers_per_switch {
                let bogus = NodeId::new(self.rng.gen_range(0..node_count + 16));
                if let Some(switch) = net.switch_mut(s) {
                    switch.corrupt_add_manager(bogus);
                    mutations += 1;
                }
            }
        }

        for &c in &controllers {
            if plan.corrupt_controller_tags {
                let curr = Tag::new(
                    self.rng.gen_range(0..node_count),
                    self.rng.gen_range(1..1_000u64),
                );
                let prev = Tag::new(
                    self.rng.gen_range(0..node_count),
                    self.rng.gen_range(1..1_000u64),
                );
                if let Some(controller) = net.controller_mut(c) {
                    controller.corrupt_tags(curr, prev);
                    mutations += 1;
                }
            }
            for _ in 0..plan.bogus_replies_per_controller {
                let reply = self.random_reply(node_count);
                if let Some(controller) = net.controller_mut(c) {
                    controller.corrupt_inject_reply(reply);
                    mutations += 1;
                }
            }
        }
        mutations
    }

    /// Picks a uniformly random live switch (panics if there is none).
    pub fn random_switch(&mut self, net: &SdnNetwork) -> NodeId {
        let switches = net.live_switch_ids();
        switches[self.rng.gen_range(0..switches.len())]
    }

    /// Picks a uniformly random live controller (panics if there is none).
    pub fn random_controller(&mut self, net: &SdnNetwork) -> NodeId {
        let controllers = net.live_controller_ids();
        controllers[self.rng.gen_range(0..controllers.len())]
    }

    /// Picks `count` distinct random links of the current topology whose removal keeps
    /// the network *in-band connected* (mirrors the paper's random link-failure
    /// experiments, which always leave the network connected so recovery is possible).
    ///
    /// Because controllers never forward packets, "connected" here means: the
    /// switch-only subgraph stays connected and every controller keeps at least one
    /// link to it.
    pub fn random_safe_links(&mut self, net: &SdnNetwork, count: usize) -> Vec<(NodeId, NodeId)> {
        let controllers = net.controller_ids();
        let safe = |graph: &sdn_topology::Graph| {
            let switch_only = graph.without_nodes(controllers.iter());
            if !sdn_topology::paths::is_connected(&switch_only) {
                return false;
            }
            controllers
                .iter()
                .all(|&c| !graph.contains_node(c) || graph.degree(c) >= 1)
        };
        let mut chosen = Vec::new();
        let mut graph = net.sim().topology().clone();
        let mut attempts = 0;
        while chosen.len() < count && attempts < count * 50 + 100 {
            attempts += 1;
            let links: Vec<_> = graph.links().collect();
            if links.is_empty() {
                break;
            }
            let link = links[self.rng.gen_range(0..links.len())];
            let mut candidate = graph.clone();
            candidate.remove_link(link.a, link.b);
            if safe(&candidate) {
                graph = candidate;
                chosen.push((link.a, link.b));
            }
        }
        chosen
    }

    fn random_rule(&mut self, switch: NodeId, node_count: u32) -> Rule {
        Rule {
            cid: NodeId::new(self.rng.gen_range(0..node_count + 8)),
            sid: switch,
            src: if self.rng.gen_bool(0.5) {
                None
            } else {
                Some(NodeId::new(self.rng.gen_range(0..node_count)))
            },
            dst: NodeId::new(self.rng.gen_range(0..node_count)),
            prt: self.rng.gen_range(0..=u8::MAX),
            fwd: NodeId::new(self.rng.gen_range(0..node_count)),
            tag: Tag::new(
                self.rng.gen_range(0..node_count),
                self.rng.gen_range(1..500u64),
            ),
        }
    }

    fn random_reply(&mut self, node_count: u32) -> QueryReply {
        let responder = NodeId::new(self.rng.gen_range(0..node_count + 8));
        let neighbors = (0..self.rng.gen_range(0..4u32))
            .map(|_| NodeId::new(self.rng.gen_range(0..node_count)))
            .filter(|&n| n != responder)
            .collect();
        QueryReply {
            responder,
            neighbors,
            managers: vec![],
            rules: vec![],
            echo_tag: Tag::new(
                self.rng.gen_range(0..node_count),
                self.rng.gen_range(1..500u64),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ControllerConfig, HarnessConfig};
    use sdn_netsim::SimDuration;
    use sdn_topology::builders;

    fn bootstrapped() -> SdnNetwork {
        let topology = builders::ring(5, 2);
        let mut sdn = SdnNetwork::new(
            topology,
            ControllerConfig::for_network(2, 5),
            HarnessConfig::default().with_task_delay(SimDuration::from_millis(100)),
        );
        sdn.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("bootstrap");
        sdn
    }

    #[test]
    fn corruption_mutates_state_and_breaks_legitimacy() {
        let mut sdn = bootstrapped();
        let mut injector = FaultInjector::new(11);
        let mutations = injector.corrupt(&mut sdn, CorruptionPlan::heavy());
        assert!(mutations > 0);
        assert!(!sdn.is_legitimate());
    }

    #[test]
    fn system_self_stabilizes_after_heavy_corruption() {
        let mut sdn = bootstrapped();
        let mut injector = FaultInjector::new(23);
        injector.corrupt(&mut sdn, CorruptionPlan::heavy());
        let elapsed = sdn
            .run_until_legitimate(SimDuration::from_millis(200), SimDuration::from_secs(300))
            .expect("Theorem 2: recovery from arbitrary corruption");
        assert!(elapsed > SimDuration::ZERO);
    }

    #[test]
    fn random_choices_are_valid_and_reproducible() {
        let sdn = bootstrapped();
        let mut a = FaultInjector::new(5);
        let mut b = FaultInjector::new(5);
        assert_eq!(a.random_switch(&sdn), b.random_switch(&sdn));
        assert_eq!(a.random_controller(&sdn), b.random_controller(&sdn));
        let links_a = a.random_safe_links(&sdn, 2);
        let links_b = b.random_safe_links(&sdn, 2);
        assert_eq!(links_a, links_b);
        assert_eq!(links_a.len(), 2);
        // Removing the chosen links must keep the graph connected.
        let mut graph = sdn.sim().topology().clone();
        for (x, y) in &links_a {
            graph.remove_link(*x, *y);
        }
        assert!(sdn_topology::paths::is_connected(&graph));
    }

    #[test]
    fn corruption_plans_differ_in_aggressiveness() {
        assert!(
            CorruptionPlan::heavy().garbage_rules_per_switch
                > CorruptionPlan::light().garbage_rules_per_switch
        );
        assert!(!CorruptionPlan::light().corrupt_controller_tags);
        assert!(CorruptionPlan::default().clear_some_switches);
    }
}
