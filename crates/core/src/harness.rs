//! The simulation harness: an entire SDN (controllers + switches + network) in one
//! object, with fault injection and convergence measurement — the Rust stand-in for the
//! paper's Mininet testbed.

use crate::config::{ControllerConfig, HarnessConfig};
use crate::controller::Controller;
use crate::legitimacy::{self, LegitimacyReport};
use crate::nodes::{ControllerNode, SdnNode, SwitchNode};
use crate::packet::ControlPacket;
use sdn_netsim::{NetworkMetrics, SimConfig, SimDuration, SimTime, Simulator};
use sdn_switch::{AbstractSwitch, SwitchConfig};
use sdn_topology::{NamedTopology, NodeId};

/// A fully wired simulated SDN deployment.
///
/// # Example
///
/// ```
/// use renaissance::{ControllerConfig, HarnessConfig, SdnNetwork};
/// use sdn_netsim::SimDuration;
/// use sdn_topology::builders;
///
/// // A small ring with two controllers bootstraps to a legitimate state.
/// let net = builders::ring(6, 2);
/// let mut sdn = SdnNetwork::new(
///     net,
///     ControllerConfig::for_network(2, 6),
///     HarnessConfig::default().with_task_delay(SimDuration::from_millis(100)),
/// );
/// let elapsed = sdn.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(60));
/// assert!(elapsed.is_some());
/// ```
pub struct SdnNetwork {
    topology: NamedTopology,
    controller_config: ControllerConfig,
    harness_config: HarnessConfig,
    sim: Simulator<ControlPacket, SdnNode>,
}

impl SdnNetwork {
    /// Builds and starts a simulated SDN over `topology`.
    pub fn new(
        topology: NamedTopology,
        controller_config: ControllerConfig,
        harness_config: HarnessConfig,
    ) -> Self {
        let sim_config = SimConfig {
            detection_delay: harness_config.detection_delay,
            seed: harness_config.seed,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&topology.graph, sim_config);
        let switch_config = network_switch_config(&topology, &controller_config);
        for &controller_id in &topology.controllers {
            let controller = Controller::new(controller_id, controller_config);
            sim.add_node(
                controller_id,
                SdnNode::Controller(ControllerNode::new(controller, &harness_config)),
            );
        }
        for &switch_id in &topology.switches {
            let switch = AbstractSwitch::new(switch_id, switch_config);
            sim.add_node(
                switch_id,
                SdnNode::Switch(SwitchNode::new(switch, &harness_config)),
            );
        }
        sim.start();
        SdnNetwork {
            topology,
            controller_config,
            harness_config,
            sim,
        }
    }

    /// The topology the deployment was built from.
    pub fn topology(&self) -> &NamedTopology {
        &self.topology
    }

    /// The controller configuration in use.
    pub fn controller_config(&self) -> ControllerConfig {
        self.controller_config
    }

    /// The harness configuration in use.
    pub fn harness_config(&self) -> HarnessConfig {
        self.harness_config
    }

    /// The underlying simulator (read-only).
    pub fn sim(&self) -> &Simulator<ControlPacket, SdnNode> {
        &self.sim
    }

    /// The underlying simulator (mutable) — escape hatch for advanced fault scenarios.
    pub fn sim_mut(&mut self) -> &mut Simulator<ControlPacket, SdnNode> {
        &mut self.sim
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Network-wide message metrics.
    pub fn metrics(&self) -> &NetworkMetrics {
        self.sim.metrics()
    }

    /// Resets the message metrics (e.g. at the start of a measured phase).
    pub fn reset_metrics(&mut self) {
        self.sim.reset_metrics();
    }

    /// Runs the simulation for `duration` of simulated time.
    pub fn run_for(&mut self, duration: SimDuration) {
        self.sim.run_for(duration);
    }

    /// Runs the simulation until the given absolute simulated time.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.sim.run_until(deadline);
    }

    /// Runs until the legitimacy predicate (Definition 1) holds, checking every
    /// `check_every`, and returns the elapsed simulated time — or `None` if `timeout`
    /// expired first. This is the measurement primitive behind every bootstrap /
    /// recovery figure of the paper.
    pub fn run_until_legitimate(
        &mut self,
        check_every: SimDuration,
        timeout: SimDuration,
    ) -> Option<SimDuration> {
        let started = self.now();
        let deadline = started + timeout;
        loop {
            if self.is_legitimate() {
                return Some(self.now() - started);
            }
            if self.now() >= deadline {
                return None;
            }
            self.run_for(check_every);
        }
    }

    /// Evaluates the legitimacy predicate (paper, Definition 1).
    pub fn is_legitimate(&self) -> bool {
        self.legitimacy_report().is_legitimate()
    }

    /// Detailed legitimacy report, listing every violated condition.
    pub fn legitimacy_report(&self) -> LegitimacyReport {
        legitimacy::check(self)
    }

    // ------------------------------------------------------------------
    // Accessors over controllers and switches
    // ------------------------------------------------------------------

    /// Identifiers of all controllers (including failed ones).
    pub fn controller_ids(&self) -> Vec<NodeId> {
        self.topology.controllers.clone()
    }

    /// Identifiers of all switches (including failed ones).
    pub fn switch_ids(&self) -> Vec<NodeId> {
        self.topology.switches.clone()
    }

    /// Identifiers of controllers that have not fail-stopped and are still part of the
    /// topology.
    pub fn live_controller_ids(&self) -> Vec<NodeId> {
        self.topology
            .controllers
            .iter()
            .copied()
            .filter(|&c| self.sim.topology().contains_node(c) && !self.sim.is_node_failed(c))
            .collect()
    }

    /// Identifiers of switches that have not fail-stopped and are still in the topology.
    pub fn live_switch_ids(&self) -> Vec<NodeId> {
        self.topology
            .switches
            .iter()
            .copied()
            .filter(|&s| self.sim.topology().contains_node(s) && !self.sim.is_node_failed(s))
            .collect()
    }

    /// The controller state machine of `id`, if it exists.
    pub fn controller(&self, id: NodeId) -> Option<&Controller> {
        self.sim.node(id).and_then(SdnNode::as_controller)
    }

    /// Mutable access to a controller — used by transient-fault injection.
    pub fn controller_mut(&mut self, id: NodeId) -> Option<&mut Controller> {
        self.sim.node_mut(id).and_then(SdnNode::as_controller_mut)
    }

    /// The switch state machine of `id`, if it exists.
    pub fn switch(&self, id: NodeId) -> Option<&AbstractSwitch> {
        self.sim.node(id).and_then(SdnNode::as_switch)
    }

    /// Mutable access to a switch — used by transient-fault injection.
    pub fn switch_mut(&mut self, id: NodeId) -> Option<&mut AbstractSwitch> {
        self.sim.node_mut(id).and_then(SdnNode::as_switch_mut)
    }

    /// Total number of rules installed across all live switches (the memory-footprint
    /// observable of Lemma 1 and of the variant ablation).
    pub fn total_rules(&self) -> usize {
        self.live_switch_ids()
            .into_iter()
            .filter_map(|s| self.switch(s))
            .map(|sw| sw.rules().len())
            .sum()
    }

    /// The largest rule count of any single live switch.
    pub fn max_rules_per_switch(&self) -> usize {
        self.live_switch_ids()
            .into_iter()
            .filter_map(|s| self.switch(s))
            .map(|sw| sw.rules().len())
            .max()
            .unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Fault injection (the benign failures of Section 3.4.2)
    // ------------------------------------------------------------------

    /// Fail-stops a controller.
    pub fn fail_controller(&mut self, id: NodeId) {
        self.sim.fail_node(id);
    }

    /// Fail-stops a switch.
    pub fn fail_switch(&mut self, id: NodeId) {
        self.sim.fail_node(id);
    }

    /// Permanently removes a link from the topology.
    pub fn remove_link(&mut self, a: NodeId, b: NodeId) -> bool {
        self.sim.remove_link(a, b)
    }

    /// Adds a link to the topology.
    pub fn add_link(&mut self, a: NodeId, b: NodeId) {
        self.sim.add_link(a, b);
    }

    /// Temporarily fails a link (it stays part of `Gc`).
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) {
        self.sim.fail_link(a, b);
    }

    /// Restores a temporarily failed link.
    pub fn restore_link(&mut self, a: NodeId, b: NodeId) {
        self.sim.restore_link(a, b);
    }

    /// Revives a previously failed controller with a *fresh* (empty) state, as the paper
    /// assumes for node additions (Lemma 8: new nodes start with empty memory).
    pub fn revive_controller(&mut self, id: NodeId) {
        let controller = Controller::new(id, self.controller_config);
        let node = SdnNode::Controller(ControllerNode::new(controller, &self.harness_config));
        self.sim.replace_node(id, node);
        self.sim.revive_node(id);
        self.sim.start();
    }

    /// Revives a previously failed switch with empty configuration.
    ///
    /// The switch capacity is recomputed from the deployment
    /// ([`SwitchConfig::for_network`], the Lemma 1 sizing) rather than copied from
    /// whatever node state happens to survive — a revived switch starts fresh
    /// (Lemma 8), and falling back to `SwitchConfig::default()` when the old node was
    /// gone used to silently mis-size its rule capacity.
    pub fn revive_switch(&mut self, id: NodeId) {
        let switch_config = network_switch_config(&self.topology, &self.controller_config);
        let node = SdnNode::Switch(SwitchNode::new(
            AbstractSwitch::new(id, switch_config),
            &self.harness_config,
        ));
        self.sim.replace_node(id, node);
        self.sim.revive_node(id);
        self.sim.start();
    }
}

/// The per-switch capacity prescribed by Lemma 1 for this deployment — used both when
/// wiring the network and when reviving a switch with fresh state.
fn network_switch_config(
    topology: &NamedTopology,
    controller_config: &ControllerConfig,
) -> SwitchConfig {
    SwitchConfig::for_network(
        topology.controller_count(),
        topology.node_count(),
        controller_config
            .max_priorities
            .unwrap_or(topology.graph.max_degree() + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_topology::builders;

    fn small_net() -> SdnNetwork {
        let topology = builders::ring(5, 2);
        SdnNetwork::new(
            topology,
            ControllerConfig::for_network(2, 5),
            HarnessConfig::default()
                .with_task_delay(SimDuration::from_millis(100))
                .with_seed(3),
        )
    }

    #[test]
    fn bootstrap_reaches_legitimacy_on_a_small_ring() {
        let mut sdn = small_net();
        assert!(!sdn.is_legitimate(), "empty switches cannot be legitimate");
        let elapsed = sdn
            .run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("bootstrap must converge");
        assert!(elapsed > SimDuration::ZERO);
        // Every switch is managed by both controllers.
        for s in sdn.switch_ids() {
            let switch = sdn.switch(s).unwrap();
            assert_eq!(switch.managers().len(), 2, "switch {s} managers");
            assert!(!switch.rules().is_empty());
        }
        assert!(sdn.total_rules() > 0);
        assert!(
            sdn.max_rules_per_switch()
                <= sdn.switch(sdn.switch_ids()[0]).unwrap().config().max_rules
        );
    }

    #[test]
    fn controller_failure_is_cleaned_up() {
        let mut sdn = small_net();
        sdn.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("bootstrap");
        let victim = sdn.controller_ids()[1];
        sdn.fail_controller(victim);
        assert_eq!(sdn.live_controller_ids().len(), 1);
        let elapsed = sdn
            .run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("recovery after controller failure");
        assert!(elapsed > SimDuration::ZERO);
        for s in sdn.switch_ids() {
            let switch = sdn.switch(s).unwrap();
            assert!(
                !switch.managers().contains(victim),
                "stale manager must be removed from switch {s}"
            );
            assert!(switch.rules().rules_of(victim).is_empty());
        }
    }

    #[test]
    fn link_failure_recovers() {
        let mut sdn = small_net();
        sdn.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("bootstrap");
        // Remove one ring link (the ring stays connected).
        let switches = sdn.switch_ids();
        let removed = sdn.remove_link(switches[0], switches[1]);
        assert!(removed);
        let elapsed = sdn
            .run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("recovery after link failure");
        assert!(elapsed > SimDuration::ZERO);
    }

    #[test]
    fn revived_switch_gets_network_sized_config() {
        let mut sdn = small_net();
        sdn.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("bootstrap");
        let victim = sdn.switch_ids()[2];
        let expected = sdn.switch(victim).unwrap().config();
        sdn.fail_switch(victim);
        // Simulate the old node's state being gone (or corrupted): replace it with a
        // switch carrying the wrong, default capacity before reviving.
        let bogus = SdnNode::Switch(SwitchNode::new(
            AbstractSwitch::new(victim, SwitchConfig::default()),
            &sdn.harness_config(),
        ));
        sdn.sim_mut().replace_node(victim, bogus);
        sdn.revive_switch(victim);
        let revived = sdn.switch(victim).unwrap();
        assert_eq!(
            revived.config(),
            expected,
            "revival must recompute the Lemma 1 capacity, not inherit stale state"
        );
        assert_eq!(revived.rules().len(), 0, "revived switch starts empty");
        // The revived switch rejoins the deployment and ends up managed again.
        sdn.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("recovery after switch revival");
        assert!(!sdn.switch(victim).unwrap().managers().is_empty());
    }

    #[test]
    fn accessors_are_consistent() {
        let sdn = small_net();
        assert_eq!(sdn.controller_ids().len(), 2);
        assert_eq!(sdn.switch_ids().len(), 5);
        assert_eq!(sdn.live_controller_ids().len(), 2);
        assert_eq!(sdn.live_switch_ids().len(), 5);
        assert!(sdn.controller(sdn.controller_ids()[0]).is_some());
        assert!(sdn.switch(sdn.switch_ids()[0]).is_some());
        assert!(sdn.controller(sdn.switch_ids()[0]).is_none());
        assert_eq!(sdn.topology().switch_count(), 5);
        assert_eq!(sdn.controller_config().n_controllers, 2);
        assert_eq!(sdn.harness_config().seed, 3);
    }
}
