//! The simulation harness: an entire SDN (controllers + switches + network) in one
//! object, with fault injection and convergence measurement — the Rust stand-in for the
//! paper's Mininet testbed.

use crate::config::{ControllerConfig, HarnessConfig};
use crate::controller::Controller;
use crate::legitimacy::{self, LegitimacyReport};
use crate::nodes::{ControllerNode, SdnNode, SwitchNode};
use crate::packet::ControlPacket;
use sdn_netsim::{LinkConfig, NetworkMetrics, SimConfig, SimDuration, SimTime, Simulator};
use sdn_switch::{AbstractSwitch, SwitchConfig};
use sdn_topology::{NamedTopology, NodeId};
use std::cell::RefCell;

/// A fully wired simulated SDN deployment.
///
/// # Example
///
/// ```
/// use renaissance::{ControllerConfig, HarnessConfig, SdnNetwork};
/// use sdn_netsim::SimDuration;
/// use sdn_topology::builders;
///
/// // A small ring with two controllers bootstraps to a legitimate state.
/// let net = builders::ring(6, 2);
/// let mut sdn = SdnNetwork::new(
///     net,
///     ControllerConfig::for_network(2, 6),
///     HarnessConfig::default().with_task_delay(SimDuration::from_millis(100)),
/// );
/// let elapsed = sdn.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(60));
/// assert!(elapsed.is_some());
/// ```
pub struct SdnNetwork {
    topology: NamedTopology,
    controller_config: ControllerConfig,
    harness_config: HarnessConfig,
    sim: Simulator<ControlPacket, SdnNode>,
    /// Memoized legitimacy verdict, keyed on the simulator's topology generation and
    /// the fold of every node's state version: when no relevant event fired since the
    /// last check, [`SdnNetwork::legitimacy_report`] is O(nodes) instead of O(BFS).
    /// Caching never changes observable results — the key covers every input the
    /// predicate reads, and a property test cross-checks cached against recomputed
    /// reports under randomized fault schedules.
    legitimacy_cache: RefCell<Option<LegitimacyCache>>,
}

/// One memoized legitimacy evaluation (see [`SdnNetwork::legitimacy_report`]).
struct LegitimacyCache {
    generation: u64,
    state_stamp: u64,
    report: LegitimacyReport,
}

impl SdnNetwork {
    /// Builds and starts a simulated SDN over `topology`.
    pub fn new(
        topology: NamedTopology,
        controller_config: ControllerConfig,
        harness_config: HarnessConfig,
    ) -> Self {
        let sim_config = SimConfig {
            detection_delay: harness_config.detection_delay,
            seed: harness_config.seed,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&topology.graph, sim_config);
        let switch_config = network_switch_config(&topology, &controller_config);
        for &controller_id in &topology.controllers {
            let controller = Controller::new(controller_id, controller_config);
            sim.add_node(
                controller_id,
                SdnNode::Controller(ControllerNode::new(controller, &harness_config)),
            );
        }
        for &switch_id in &topology.switches {
            let switch = AbstractSwitch::new(switch_id, switch_config);
            sim.add_node(
                switch_id,
                SdnNode::Switch(SwitchNode::new(switch, &harness_config)),
            );
        }
        sim.start();
        SdnNetwork {
            topology,
            controller_config,
            harness_config,
            sim,
            legitimacy_cache: RefCell::new(None),
        }
    }

    /// The topology the deployment was built from.
    pub fn topology(&self) -> &NamedTopology {
        &self.topology
    }

    /// The controller configuration in use.
    pub fn controller_config(&self) -> ControllerConfig {
        self.controller_config
    }

    /// The harness configuration in use.
    pub fn harness_config(&self) -> HarnessConfig {
        self.harness_config
    }

    /// The underlying simulator (read-only).
    pub fn sim(&self) -> &Simulator<ControlPacket, SdnNode> {
        &self.sim
    }

    /// The underlying simulator (mutable) — escape hatch for advanced fault scenarios.
    pub fn sim_mut(&mut self) -> &mut Simulator<ControlPacket, SdnNode> {
        &mut self.sim
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Network-wide message metrics.
    pub fn metrics(&self) -> &NetworkMetrics {
        self.sim.metrics()
    }

    /// Resets the message metrics (e.g. at the start of a measured phase).
    pub fn reset_metrics(&mut self) {
        self.sim.reset_metrics();
    }

    /// Runs the simulation for `duration` of simulated time.
    pub fn run_for(&mut self, duration: SimDuration) {
        self.sim.run_for(duration);
    }

    /// Runs the simulation until the given absolute simulated time.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.sim.run_until(deadline);
    }

    /// Runs until the legitimacy predicate (Definition 1) holds, checking every
    /// `check_every`, and returns the elapsed simulated time — or `None` if `timeout`
    /// expired first. This is the measurement primitive behind every bootstrap /
    /// recovery figure of the paper.
    pub fn run_until_legitimate(
        &mut self,
        check_every: SimDuration,
        timeout: SimDuration,
    ) -> Option<SimDuration> {
        let started = self.now();
        let deadline = started + timeout;
        loop {
            if self.is_legitimate() {
                return Some(self.now() - started);
            }
            if self.now() >= deadline {
                return None;
            }
            self.run_for(check_every);
        }
    }

    /// Evaluates the legitimacy predicate (paper, Definition 1).
    pub fn is_legitimate(&self) -> bool {
        self.legitimacy_report().is_legitimate()
    }

    /// Detailed legitimacy report, listing every violated condition.
    ///
    /// Dirty-tracked: the report is recomputed only when the operational topology,
    /// the observed neighborhoods, or any controller/switch state changed since the
    /// last evaluation; otherwise the memoized report is returned. The cache key
    /// covers every input [`legitimacy::check`] reads, so the cached and recomputed
    /// reports are always identical — [`SdnNetwork::legitimacy_report_fresh`] is the
    /// explicit escape hatch that bypasses the cache.
    pub fn legitimacy_report(&self) -> LegitimacyReport {
        let generation = self.sim.topology_generation();
        let state_stamp = self.state_stamp();
        if let Some(cache) = self.legitimacy_cache.borrow().as_ref() {
            if cache.generation == generation && cache.state_stamp == state_stamp {
                return cache.report.clone();
            }
        }
        let report = legitimacy::check(self);
        *self.legitimacy_cache.borrow_mut() = Some(LegitimacyCache {
            generation,
            state_stamp,
            report: report.clone(),
        });
        report
    }

    /// Recomputes the legitimacy report from scratch, ignoring (and refreshing) the
    /// memoized result — the escape hatch for callers that want to pay for certainty,
    /// and the oracle the cache property test compares against.
    pub fn legitimacy_report_fresh(&self) -> LegitimacyReport {
        let report = legitimacy::check(self);
        *self.legitimacy_cache.borrow_mut() = Some(LegitimacyCache {
            generation: self.sim.topology_generation(),
            state_stamp: self.state_stamp(),
            report: report.clone(),
        });
        report
    }

    /// Folds every node's state version into one stamp. Any single state mutation
    /// changes the fold (each node contributes its identifier and version through a
    /// position-sensitive mix), which is what makes `(generation, stamp)` a sound
    /// cache key for the legitimacy predicate.
    fn state_stamp(&self) -> u64 {
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        for (id, node) in self.sim.nodes() {
            acc ^= (u64::from(id.index()) << 32) ^ node.state_version();
            acc = acc.rotate_left(13).wrapping_mul(0x0000_0100_0000_01B3);
        }
        acc
    }

    // ------------------------------------------------------------------
    // Accessors over controllers and switches
    // ------------------------------------------------------------------

    /// Identifiers of all controllers (including failed ones).
    pub fn controller_ids(&self) -> Vec<NodeId> {
        self.topology.controllers.clone()
    }

    /// Identifiers of all switches (including failed ones).
    pub fn switch_ids(&self) -> Vec<NodeId> {
        self.topology.switches.clone()
    }

    /// Identifiers of controllers that have not fail-stopped and are still part of the
    /// topology.
    pub fn live_controller_ids(&self) -> Vec<NodeId> {
        self.topology
            .controllers
            .iter()
            .copied()
            .filter(|&c| self.sim.topology().contains_node(c) && !self.sim.is_node_failed(c))
            .collect()
    }

    /// Identifiers of switches that have not fail-stopped and are still in the topology.
    pub fn live_switch_ids(&self) -> Vec<NodeId> {
        self.topology
            .switches
            .iter()
            .copied()
            .filter(|&s| self.sim.topology().contains_node(s) && !self.sim.is_node_failed(s))
            .collect()
    }

    /// The controller state machine of `id`, if it exists.
    pub fn controller(&self, id: NodeId) -> Option<&Controller> {
        self.sim.node(id).and_then(SdnNode::as_controller)
    }

    /// Mutable access to a controller — used by transient-fault injection.
    pub fn controller_mut(&mut self, id: NodeId) -> Option<&mut Controller> {
        self.sim.node_mut(id).and_then(SdnNode::as_controller_mut)
    }

    /// The switch state machine of `id`, if it exists.
    pub fn switch(&self, id: NodeId) -> Option<&AbstractSwitch> {
        self.sim.node(id).and_then(SdnNode::as_switch)
    }

    /// Mutable access to a switch — used by transient-fault injection.
    pub fn switch_mut(&mut self, id: NodeId) -> Option<&mut AbstractSwitch> {
        self.sim.node_mut(id).and_then(SdnNode::as_switch_mut)
    }

    /// Total number of rules installed across all live switches (the memory-footprint
    /// observable of Lemma 1 and of the variant ablation).
    pub fn total_rules(&self) -> usize {
        self.live_switch_ids()
            .into_iter()
            .filter_map(|s| self.switch(s))
            .map(|sw| sw.rules().len())
            .sum()
    }

    /// The largest rule count of any single live switch.
    pub fn max_rules_per_switch(&self) -> usize {
        self.live_switch_ids()
            .into_iter()
            .filter_map(|s| self.switch(s))
            .map(|sw| sw.rules().len())
            .max()
            .unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Fault injection (the benign failures of Section 3.4.2)
    // ------------------------------------------------------------------

    /// Fail-stops a controller.
    pub fn fail_controller(&mut self, id: NodeId) {
        self.sim.fail_node(id);
    }

    /// Fail-stops a switch.
    pub fn fail_switch(&mut self, id: NodeId) {
        self.sim.fail_node(id);
    }

    /// Permanently removes a link from the topology.
    pub fn remove_link(&mut self, a: NodeId, b: NodeId) -> bool {
        self.sim.remove_link(a, b)
    }

    /// Adds a link to the topology.
    pub fn add_link(&mut self, a: NodeId, b: NodeId) {
        self.sim.add_link(a, b);
    }

    /// Temporarily fails a link (it stays part of `Gc`).
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) {
        self.sim.fail_link(a, b);
    }

    /// Restores a temporarily failed link.
    pub fn restore_link(&mut self, a: NodeId, b: NodeId) {
        self.sim.restore_link(a, b);
    }

    /// Overrides the behaviour of one link symmetrically (gray failure: the link
    /// stays part of `Gc` but degrades). Returns `false` when the link does not
    /// exist — the call is still counted in [`SdnNetwork::link_config_warnings`].
    pub fn set_link_config(&mut self, a: NodeId, b: NodeId, config: LinkConfig) -> bool {
        self.sim.set_link_config(a, b, config)
    }

    /// Overrides the behaviour of one link *direction* only (asymmetric gray
    /// failure). Returns `false` when the link does not exist.
    pub fn set_link_config_directed(
        &mut self,
        from: NodeId,
        to: NodeId,
        config: LinkConfig,
    ) -> bool {
        self.sim.set_link_config_directed(from, to, config)
    }

    /// Removes every quality override from a link, restoring default behaviour.
    /// Returns `true` when an override was actually removed.
    pub fn clear_link_config(&mut self, a: NodeId, b: NodeId) -> bool {
        self.sim.clear_link_config(a, b)
    }

    /// The default link behaviour degraded links return to.
    pub fn default_link_config(&self) -> LinkConfig {
        self.sim.default_link_config()
    }

    /// How many link-config calls named a link absent from `Gc` so far.
    pub fn link_config_warnings(&self) -> u64 {
        self.sim.link_config_warnings()
    }

    /// Revives a previously failed controller with a *fresh* (empty) state, as the paper
    /// assumes for node additions (Lemma 8: new nodes start with empty memory).
    pub fn revive_controller(&mut self, id: NodeId) {
        let controller = Controller::new(id, self.controller_config);
        let node = SdnNode::Controller(ControllerNode::new(controller, &self.harness_config));
        self.sim.replace_node(id, node);
        self.sim.revive_node(id);
        self.sim.start();
    }

    /// Revives a previously failed switch with empty configuration.
    ///
    /// The switch capacity is recomputed from the deployment
    /// ([`SwitchConfig::for_network`], the Lemma 1 sizing) rather than copied from
    /// whatever node state happens to survive — a revived switch starts fresh
    /// (Lemma 8), and falling back to `SwitchConfig::default()` when the old node was
    /// gone used to silently mis-size its rule capacity.
    pub fn revive_switch(&mut self, id: NodeId) {
        let switch_config = network_switch_config(&self.topology, &self.controller_config);
        let node = SdnNode::Switch(SwitchNode::new(
            AbstractSwitch::new(id, switch_config),
            &self.harness_config,
        ));
        self.sim.replace_node(id, node);
        self.sim.revive_node(id);
        self.sim.start();
    }
}

/// The per-switch capacity prescribed by Lemma 1 for this deployment — used both when
/// wiring the network and when reviving a switch with fresh state.
fn network_switch_config(
    topology: &NamedTopology,
    controller_config: &ControllerConfig,
) -> SwitchConfig {
    SwitchConfig::for_network(
        topology.controller_count(),
        topology.node_count(),
        controller_config
            .max_priorities
            .unwrap_or(topology.graph.max_degree() + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_topology::builders;

    fn small_net() -> SdnNetwork {
        let topology = builders::ring(5, 2);
        SdnNetwork::new(
            topology,
            ControllerConfig::for_network(2, 5),
            HarnessConfig::default()
                .with_task_delay(SimDuration::from_millis(100))
                .with_seed(3),
        )
    }

    #[test]
    fn bootstrap_reaches_legitimacy_on_a_small_ring() {
        let mut sdn = small_net();
        assert!(!sdn.is_legitimate(), "empty switches cannot be legitimate");
        let elapsed = sdn
            .run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("bootstrap must converge");
        assert!(elapsed > SimDuration::ZERO);
        // Every switch is managed by both controllers.
        for s in sdn.switch_ids() {
            let switch = sdn.switch(s).unwrap();
            assert_eq!(switch.managers().len(), 2, "switch {s} managers");
            assert!(!switch.rules().is_empty());
        }
        assert!(sdn.total_rules() > 0);
        assert!(
            sdn.max_rules_per_switch()
                <= sdn.switch(sdn.switch_ids()[0]).unwrap().config().max_rules
        );
    }

    #[test]
    fn controller_failure_is_cleaned_up() {
        let mut sdn = small_net();
        sdn.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("bootstrap");
        let victim = sdn.controller_ids()[1];
        sdn.fail_controller(victim);
        assert_eq!(sdn.live_controller_ids().len(), 1);
        let elapsed = sdn
            .run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("recovery after controller failure");
        assert!(elapsed > SimDuration::ZERO);
        for s in sdn.switch_ids() {
            let switch = sdn.switch(s).unwrap();
            assert!(
                !switch.managers().contains(victim),
                "stale manager must be removed from switch {s}"
            );
            assert!(switch.rules().rules_of(victim).is_empty());
        }
    }

    #[test]
    fn link_failure_recovers() {
        let mut sdn = small_net();
        sdn.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("bootstrap");
        // Remove one ring link (the ring stays connected).
        let switches = sdn.switch_ids();
        let removed = sdn.remove_link(switches[0], switches[1]);
        assert!(removed);
        let elapsed = sdn
            .run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("recovery after link failure");
        assert!(elapsed > SimDuration::ZERO);
    }

    #[test]
    fn revived_switch_gets_network_sized_config() {
        let mut sdn = small_net();
        sdn.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("bootstrap");
        let victim = sdn.switch_ids()[2];
        let expected = sdn.switch(victim).unwrap().config();
        sdn.fail_switch(victim);
        // Simulate the old node's state being gone (or corrupted): replace it with a
        // switch carrying the wrong, default capacity before reviving.
        let bogus = SdnNode::Switch(SwitchNode::new(
            AbstractSwitch::new(victim, SwitchConfig::default()),
            &sdn.harness_config(),
        ));
        sdn.sim_mut().replace_node(victim, bogus);
        sdn.revive_switch(victim);
        let revived = sdn.switch(victim).unwrap();
        assert_eq!(
            revived.config(),
            expected,
            "revival must recompute the Lemma 1 capacity, not inherit stale state"
        );
        assert_eq!(revived.rules().len(), 0, "revived switch starts empty");
        // The revived switch rejoins the deployment and ends up managed again.
        sdn.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("recovery after switch revival");
        assert!(!sdn.switch(victim).unwrap().managers().is_empty());
    }

    /// The dirty-tracking contract: across arbitrary interleavings of faults,
    /// revivals, corruption, and simulation time, the memoized legitimacy report
    /// must be indistinguishable from a from-scratch recompute.
    #[test]
    fn cached_legitimacy_equals_fresh_recompute_under_random_faults() {
        use sdn_rng::Rng;
        for seed in 0..5u64 {
            let topology = builders::ring(8, 2);
            let mut sdn = SdnNetwork::new(
                topology,
                ControllerConfig::for_network(2, 8),
                HarnessConfig::default()
                    .with_task_delay(SimDuration::from_millis(100))
                    .with_seed(seed),
            );
            let mut rng = Rng::seed_from_u64(seed ^ 0xF00D);
            for step in 0..40 {
                let switches = sdn.switch_ids();
                let controllers = sdn.controller_ids();
                let s = switches[rng.gen_range(0..switches.len() as u64) as usize];
                let c = controllers[rng.gen_range(0..controllers.len() as u64) as usize];
                match rng.gen_range(0..8u32) {
                    0 => sdn.run_for(SimDuration::from_millis(rng.gen_range(10..300u64))),
                    1 => sdn.fail_switch(s),
                    2 => sdn.revive_switch(s),
                    3 => sdn.fail_controller(c),
                    4 => sdn.revive_controller(c),
                    5 => {
                        let i = rng.gen_range(0..switches.len() as u64) as usize;
                        let j = (i + 1) % switches.len();
                        sdn.fail_link(switches[i], switches[j]);
                    }
                    6 => {
                        let i = rng.gen_range(0..switches.len() as u64) as usize;
                        let j = (i + 1) % switches.len();
                        sdn.restore_link(switches[i], switches[j]);
                    }
                    _ => {
                        if let Some(sw) = sdn.switch_mut(s) {
                            sw.corrupt_clear();
                        }
                    }
                }
                // First query may serve a memoized report, second recomputes: any
                // stale cache key would make them diverge.
                let cached = sdn.legitimacy_report();
                let fresh = sdn.legitimacy_report_fresh();
                assert_eq!(cached, fresh, "cache divergence at seed {seed} step {step}");
                // A repeat query with no intervening event serves the cache; it must
                // still match.
                assert_eq!(sdn.legitimacy_report(), fresh);
            }
        }
    }

    #[test]
    fn accessors_are_consistent() {
        let sdn = small_net();
        assert_eq!(sdn.controller_ids().len(), 2);
        assert_eq!(sdn.switch_ids().len(), 5);
        assert_eq!(sdn.live_controller_ids().len(), 2);
        assert_eq!(sdn.live_switch_ids().len(), 5);
        assert!(sdn.controller(sdn.controller_ids()[0]).is_some());
        assert!(sdn.switch(sdn.switch_ids()[0]).is_some());
        assert!(sdn.controller(sdn.switch_ids()[0]).is_none());
        assert_eq!(sdn.topology().switch_count(), 5);
        assert_eq!(sdn.controller_config().n_controllers, 2);
        assert_eq!(sdn.harness_config().seed, 3);
    }
}
