//! Simulation node wrappers: how controllers and switches live inside `sdn-netsim`.
//!
//! [`ControllerNode`] runs the do-forever loop on a timer (the paper's *task delay*) and
//! originates in-band packets; [`SwitchNode`] applies command batches addressed to it
//! and forwards everything else hop by hop according to its own rule table. Neither node
//! type can talk to anything but its direct neighbors — the simulator enforces it — so
//! the control plane is in-band by construction.

use crate::config::HarnessConfig;
use crate::controller::Controller;
use crate::packet::{ControlPacket, PacketBody};
use sdn_netsim::{Context, Node, SimDuration, TimerId};
use sdn_switch::AbstractSwitch;
use sdn_topology::NodeId;

/// Timer identifier of the controller's do-forever loop.
const TASK_TIMER: TimerId = TimerId(1);

/// A Renaissance controller attached to the simulated network.
#[derive(Clone, Debug)]
pub struct ControllerNode {
    /// The controller state machine (the algorithm itself).
    pub controller: Controller,
    task_delay: SimDuration,
    packet_ttl: u16,
    /// Number of packets this node dropped because it had no way to route them yet.
    pub unroutable_packets: u64,
}

impl ControllerNode {
    /// Wraps a controller with the harness parameters it needs to schedule itself.
    pub fn new(controller: Controller, harness: &HarnessConfig) -> Self {
        ControllerNode {
            controller,
            task_delay: harness.task_delay,
            packet_ttl: harness.packet_ttl,
            unroutable_packets: 0,
        }
    }

    fn send_packet(
        &mut self,
        ctx: &mut Context<ControlPacket>,
        mut packet: ControlPacket,
        hint: Option<NodeId>,
    ) {
        let dst = packet.dst;
        packet.arrive_at(ctx.id());
        // Prefer the flow plan's candidates, then a direct neighbor, then the hint
        // (typically the neighbor an incoming query arrived from).
        let neighbors = ctx.neighbors();
        let first_hop = self
            .controller
            .first_hop(dst, neighbors)
            .or_else(|| neighbors.contains(&dst).then_some(dst))
            .or_else(|| hint.filter(|h| neighbors.contains(h)));
        match first_hop {
            Some(hop) => ctx.send(hop, packet),
            None => self.unroutable_packets += 1,
        }
    }
}

impl Node<ControlPacket> for ControllerNode {
    fn on_start(&mut self, ctx: &mut Context<ControlPacket>) {
        // Stagger the first iteration a little per controller so that the controllers do
        // not operate in lockstep (the paper's model is fully asynchronous).
        let stagger = SimDuration::from_micros(
            (ctx.id().index() as u64 + 1) * self.task_delay.as_micros() / 8,
        );
        ctx.schedule(stagger, TASK_TIMER);
    }

    fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<ControlPacket>) {
        if timer != TASK_TIMER {
            return;
        }
        let batches = self.controller.iterate(ctx.neighbors());
        for (dst, batch) in batches {
            let packet = ControlPacket::new(
                self.controller.id(),
                dst,
                self.packet_ttl,
                PacketBody::Commands(batch),
            );
            self.send_packet(ctx, packet, None);
        }
        // Jitter the next iteration by up to +/-10% so controllers never run in lockstep
        // (the paper's execution model is fully asynchronous; a perfectly periodic
        // schedule is an artifact of the simulation, not of the algorithm).
        let base = self.task_delay.as_micros().max(1);
        let jitter = (ctx.random() % (base / 5 + 1)) as i64 - (base / 10) as i64;
        let next = SimDuration::from_micros((base as i64 + jitter).max(1) as u64);
        ctx.schedule(next, TASK_TIMER);
    }

    fn on_message(
        &mut self,
        from: NodeId,
        packet: ControlPacket,
        ctx: &mut Context<ControlPacket>,
    ) {
        if packet.dst != self.controller.id() {
            // Controllers do not forward packets; the data plane must route around them.
            self.unroutable_packets += 1;
            return;
        }
        match packet.body {
            PacketBody::Reply(reply) => self.controller.on_reply(reply),
            PacketBody::Commands(batch) => {
                // Another controller's query (Algorithm 2 line 23).
                if let Some(tag) = batch.query_tag() {
                    let reply = self.controller.on_query(batch.from, tag, ctx.neighbors());
                    let packet = ControlPacket::new(
                        self.controller.id(),
                        batch.from,
                        self.packet_ttl,
                        PacketBody::Reply(reply),
                    );
                    self.send_packet(ctx, packet, Some(from));
                }
            }
        }
    }
}

/// An abstract switch attached to the simulated network.
#[derive(Clone, Debug)]
pub struct SwitchNode {
    /// The switch state machine (rule table, manager set, meta tags).
    pub switch: AbstractSwitch,
    packet_ttl: u16,
    /// Packets dropped because no applicable rule, fallback, or bounce-back existed.
    pub undeliverable_packets: u64,
}

impl SwitchNode {
    /// Wraps an abstract switch with the harness parameters it needs.
    pub fn new(switch: AbstractSwitch, harness: &HarnessConfig) -> Self {
        SwitchNode {
            switch,
            packet_ttl: harness.packet_ttl,
            undeliverable_packets: 0,
        }
    }

    /// Forwards a packet that is not addressed to this switch (or a freshly created
    /// reply) using the data-plane rules, falling back to bounce-back when stuck.
    fn forward(&mut self, ctx: &mut Context<ControlPacket>, mut packet: ControlPacket) {
        if !packet.consume_hop() {
            self.undeliverable_packets += 1;
            return;
        }
        packet.arrive_at(self.switch.id());
        let decision = self.switch.next_hop(
            packet.src,
            packet.dst,
            &packet.visited,
            ctx.neighbors(),
            |_| true,
        );
        match decision {
            Some(hop) => ctx.send(hop, packet),
            None => {
                // Bounce back along the DFS trail (data-plane depth-first search).
                match packet.bounce_back() {
                    Some(back) if ctx.is_neighbor(back) => ctx.send(back, packet),
                    _ => self.undeliverable_packets += 1,
                }
            }
        }
    }
}

impl Node<ControlPacket> for SwitchNode {
    fn on_message(
        &mut self,
        _from: NodeId,
        packet: ControlPacket,
        ctx: &mut Context<ControlPacket>,
    ) {
        if packet.dst != self.switch.id() {
            self.forward(ctx, packet);
            return;
        }
        match packet.body {
            PacketBody::Commands(ref batch) => {
                if let Some(reply) = self.switch.apply_batch(batch, ctx.neighbors()) {
                    let reply_packet = ControlPacket::new(
                        self.switch.id(),
                        batch.from,
                        self.packet_ttl,
                        PacketBody::Reply(reply),
                    );
                    self.forward(ctx, reply_packet);
                }
            }
            PacketBody::Reply(_) => {
                // Switches never consume replies; a reply addressed to a switch can only
                // be the product of a corrupted state and is dropped.
                self.undeliverable_packets += 1;
            }
        }
    }
}

/// A node of the simulated SDN: either a controller or a switch.
#[derive(Clone, Debug)]
pub enum SdnNode {
    /// A Renaissance controller.
    Controller(ControllerNode),
    /// An abstract switch.
    Switch(SwitchNode),
}

impl SdnNode {
    /// The controller state machine, if this node is a controller.
    pub fn as_controller(&self) -> Option<&Controller> {
        match self {
            SdnNode::Controller(c) => Some(&c.controller),
            SdnNode::Switch(_) => None,
        }
    }

    /// Mutable access to the controller state machine, if this node is a controller.
    pub fn as_controller_mut(&mut self) -> Option<&mut Controller> {
        match self {
            SdnNode::Controller(c) => Some(&mut c.controller),
            SdnNode::Switch(_) => None,
        }
    }

    /// The switch state machine, if this node is a switch.
    pub fn as_switch(&self) -> Option<&AbstractSwitch> {
        match self {
            SdnNode::Switch(s) => Some(&s.switch),
            SdnNode::Controller(_) => None,
        }
    }

    /// Mutable access to the switch state machine, if this node is a switch.
    pub fn as_switch_mut(&mut self) -> Option<&mut AbstractSwitch> {
        match self {
            SdnNode::Switch(s) => Some(&mut s.switch),
            SdnNode::Controller(_) => None,
        }
    }

    /// The state-machine version counter of whichever role this node plays — the
    /// per-node ingredient of the harness's legitimacy dirty-tracking.
    pub fn state_version(&self) -> u64 {
        match self {
            SdnNode::Controller(c) => c.controller.state_version(),
            SdnNode::Switch(s) => s.switch.state_version(),
        }
    }
}

impl Node<ControlPacket> for SdnNode {
    fn on_start(&mut self, ctx: &mut Context<ControlPacket>) {
        match self {
            SdnNode::Controller(c) => c.on_start(ctx),
            SdnNode::Switch(s) => s.on_start(ctx),
        }
    }

    fn on_message(&mut self, from: NodeId, msg: ControlPacket, ctx: &mut Context<ControlPacket>) {
        match self {
            SdnNode::Controller(c) => c.on_message(from, msg, ctx),
            SdnNode::Switch(s) => s.on_message(from, msg, ctx),
        }
    }

    fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<ControlPacket>) {
        match self {
            SdnNode::Controller(c) => c.on_timer(timer, ctx),
            SdnNode::Switch(s) => s.on_timer(timer, ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ControllerConfig;
    use sdn_switch::SwitchConfig;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn sdn_node_accessors() {
        let harness = HarnessConfig::default();
        let controller = Controller::new(n(0), ControllerConfig::for_network(1, 2));
        let switch = AbstractSwitch::new(n(1), SwitchConfig::default());
        let mut cn = SdnNode::Controller(ControllerNode::new(controller, &harness));
        let mut sn = SdnNode::Switch(SwitchNode::new(switch, &harness));
        assert!(cn.as_controller().is_some());
        assert!(cn.as_switch().is_none());
        assert!(cn.as_controller_mut().is_some());
        assert!(sn.as_switch().is_some());
        assert!(sn.as_controller().is_none());
        assert!(sn.as_switch_mut().is_some());
    }
}
