//! Declarative scenario API: compose a topology, configurations, a typed fault
//! schedule, traffic workloads, and probes — then execute the whole experiment with a
//! single event-driven runner, repeated over multiple seeds.
//!
//! The paper's evaluation (Section 6) is ~18 distinct experiments; before this module
//! each was a hand-wired binary with its own imperative fault calls and polling loops.
//! A [`Scenario`] expresses the same experiments declaratively:
//!
//! * a **topology** — one of the paper's networks by name, or any custom
//!   [`NamedTopology`](sdn_topology::NamedTopology),
//! * **configurations** — [`ControllerConfig`](crate::ControllerConfig) and
//!   [`HarnessConfig`](crate::HarnessConfig), with builder-style overrides,
//! * a typed [`FaultSchedule`] — time-stamped [`FaultEvent`]s with per-seed-resolved
//!   victim selectors (fail-stops, link removals, transient corruption, revivals),
//! * [`Workload`]s — tick-driven traffic models (the iperf/Reno workload lives in
//!   `sdn-traffic`),
//! * [`Probe`]s — named observables sampled on a schedule,
//! * **repetition** — [`ScenarioBuilder::runs`] executes the scenario over consecutive
//!   seeds and aggregates the per-run reports into a [`ScenarioReport`].
//!
//! The old [`SdnNetwork`](crate::SdnNetwork) fault-injection and `run_until_legitimate`
//! methods remain available as the escape hatch the runner itself is built on.
//!
//! # Example
//!
//! A composite experiment — a random safe link removal plus a concurrent controller
//! crash five (simulated) seconds after bootstrap — over two seeds:
//!
//! ```
//! use renaissance::scenario::{ControllerSelector, FaultEvent, LinkSelector, Probe, Scenario};
//! use sdn_netsim::SimDuration;
//!
//! let report = Scenario::builder("composite-failure")
//!     .network("B4")
//!     .controllers(3)
//!     .task_delay(SimDuration::from_millis(200))
//!     .fault_at(SimDuration::from_secs(5), FaultEvent::RemoveLink(LinkSelector::RandomSafe { count: 1 }))
//!     .fault_at(SimDuration::from_secs(5), FaultEvent::FailController(ControllerSelector::Random { count: 1 }))
//!     .probe(Probe::total_rules())
//!     .runs(2)
//!     .run();
//! assert_eq!(report.runs.len(), 2);
//! assert!(report.all_converged());
//! assert!(report.recovery_digest().mean() > 0.0);
//! ```

mod probe;
mod report;
mod runner;
mod schedule;
mod workload;

pub use probe::{Probe, ProbeKeyArg, ProbeSeries};
pub use report::{
    InjectedFault, MetricDelta, RecoveryRecord, ReportDelta, RunReport, ScenarioReport,
};
pub use runner::ScenarioRunner;
pub use schedule::{
    mid_path_link, ControllerSelector, DegradeSpec, Endpoints, FaultContext, FaultEvent,
    FaultSchedule, LinkSelector, PartitionSpec, SwitchSelector,
};
pub use sdn_metrics::{
    CsvSink, Digest, Fanout, JsonLinesSink, MemorySink, MetricKey, Namespace, Polarity, Recorder,
    Unit,
};
pub use workload::{NamedSeries, Workload, WorkloadReport, WorkloadTick};

use crate::config::{ControllerConfig, HarnessConfig};
use crate::harness::SdnNetwork;
use sdn_netsim::SimDuration;
use sdn_topology::{builders, NamedTopology};

/// Whether the control plane keeps running while workloads execute.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ControlPlane {
    /// The simulator advances normally: controllers observe faults and repair flows
    /// (the paper's "with recovery" mode, Figure 15).
    #[default]
    Live,
    /// After bootstrap the simulator clock stands still: faults mutate the data plane
    /// but controllers never react, so only pre-installed kappa-fault-resilient backup
    /// paths carry traffic (the paper's "without recovery" mode, Figure 16).
    Frozen,
}

/// How the scenario obtains its topology for each run.
#[derive(Clone, Debug)]
pub(crate) enum TopologySpec {
    /// One of the paper's networks, built by name with `controllers` controllers.
    Named(String),
    /// An explicit topology, cloned per run.
    Custom(Box<NamedTopology>),
}

impl TopologySpec {
    pub(crate) fn label(&self) -> String {
        match self {
            TopologySpec::Named(name) => name.clone(),
            TopologySpec::Custom(topology) => topology.name.clone(),
        }
    }

    pub(crate) fn build(&self, controllers: usize) -> NamedTopology {
        match self {
            TopologySpec::Named(name) => builders::by_name(name, controllers),
            TopologySpec::Custom(topology) => (**topology).clone(),
        }
    }
}

/// Factory producing a fresh workload instance for each seeded run.
///
/// `Send + Sync` so a scenario can be shared across the parallel runner's worker
/// threads; the produced [`Workload`] itself is created, driven, and dropped entirely
/// inside one worker, so it needs no bounds of its own.
pub type WorkloadFactory = Box<dyn Fn() -> Box<dyn Workload> + Send + Sync>;

/// An end-of-run summary statistic: a pure function of the final network state.
pub type SummaryFn = fn(&SdnNetwork) -> f64;

/// Conversion shim for [`ScenarioBuilder::summary`]: accepts a typed [`MetricKey`] or
/// a bare `&str`/`String` name (registered as a count-valued key in the scenario
/// namespace with neutral polarity).
pub struct SummaryKeyArg(MetricKey);

impl From<MetricKey> for SummaryKeyArg {
    fn from(key: MetricKey) -> Self {
        SummaryKeyArg(key)
    }
}
impl From<&str> for SummaryKeyArg {
    fn from(name: &str) -> Self {
        SummaryKeyArg(MetricKey::custom(Namespace::Scenario, name))
    }
}
impl From<String> for SummaryKeyArg {
    fn from(name: String) -> Self {
        SummaryKeyArg(MetricKey::custom(Namespace::Scenario, name))
    }
}

/// A fully described experiment, ready to [`run`](Scenario::run).
///
/// Built with [`Scenario::builder`]; executed by a [`ScenarioRunner`].
pub struct Scenario {
    pub(crate) name: String,
    pub(crate) topology: TopologySpec,
    pub(crate) controllers: usize,
    pub(crate) controller_config: Option<ControllerConfig>,
    pub(crate) tune: Option<fn(ControllerConfig) -> ControllerConfig>,
    pub(crate) harness: HarnessConfig,
    pub(crate) schedule: FaultSchedule,
    pub(crate) probes: Vec<Probe>,
    pub(crate) sample_every: SimDuration,
    pub(crate) workloads: Vec<WorkloadFactory>,
    pub(crate) summaries: Vec<(MetricKey, SummaryFn)>,
    pub(crate) runs: usize,
    pub(crate) seed_base: Option<u64>,
    pub(crate) threads: Option<usize>,
    pub(crate) timeout: SimDuration,
    pub(crate) check_every: SimDuration,
    pub(crate) control_plane: ControlPlane,
}

impl Scenario {
    /// Starts building a scenario with the given display name.
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder {
            name: name.into(),
            topology: None,
            controllers: 3,
            controller_config: None,
            tune: None,
            harness: HarnessConfig::default(),
            schedule: FaultSchedule::new(),
            probes: Vec::new(),
            sample_every: SimDuration::from_secs(1),
            workloads: Vec::new(),
            summaries: Vec::new(),
            runs: 1,
            seed_base: None,
            threads: None,
            timeout: SimDuration::from_secs(1_200),
            check_every: SimDuration::from_millis(250),
            control_plane: ControlPlane::Live,
        }
    }

    /// This scenario's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The name of the topology the scenario runs on.
    pub fn network_name(&self) -> String {
        self.topology.label()
    }

    /// The base seed of the first run; run `i` uses `base + i`.
    pub fn base_seed(&self) -> u64 {
        self.seed_base.unwrap_or(self.harness.seed)
    }

    /// Executes the scenario over all its seeds and aggregates the reports.
    pub fn run(&self) -> ScenarioReport {
        ScenarioRunner::new(self).run()
    }
}

/// Fluent builder for [`Scenario`]s — the entry point of the declarative API.
pub struct ScenarioBuilder {
    name: String,
    topology: Option<TopologySpec>,
    controllers: usize,
    controller_config: Option<ControllerConfig>,
    tune: Option<fn(ControllerConfig) -> ControllerConfig>,
    harness: HarnessConfig,
    schedule: FaultSchedule,
    probes: Vec<Probe>,
    sample_every: SimDuration,
    workloads: Vec<WorkloadFactory>,
    summaries: Vec<(MetricKey, SummaryFn)>,
    runs: usize,
    seed_base: Option<u64>,
    threads: Option<usize>,
    timeout: SimDuration,
    check_every: SimDuration,
    control_plane: ControlPlane,
}

impl ScenarioBuilder {
    /// Runs on one of the paper's networks by name (`"B4"`, `"Clos"`, `"Telstra"`,
    /// `"AT&T"`, `"EBONE"`), built fresh for each run with
    /// [`controllers`](Self::controllers) controllers.
    pub fn network(mut self, name: impl Into<String>) -> Self {
        self.topology = Some(TopologySpec::Named(name.into()));
        self
    }

    /// Runs on an explicit topology (cloned per run). The controller count is taken
    /// from the topology itself.
    pub fn topology(mut self, topology: NamedTopology) -> Self {
        self.controllers = topology.controller_count();
        self.topology = Some(TopologySpec::Custom(Box::new(topology)));
        self
    }

    /// Number of controllers to attach when building a named network (default 3).
    pub fn controllers(mut self, controllers: usize) -> Self {
        self.controllers = controllers;
        self
    }

    /// Replaces the derived [`ControllerConfig`] wholesale. Without this, each run uses
    /// [`ControllerConfig::for_network`] for its topology.
    pub fn controller_config(mut self, config: ControllerConfig) -> Self {
        self.controller_config = Some(config);
        self
    }

    /// Applies a transformation to the (derived or explicit) controller configuration,
    /// e.g. `ControllerConfig::non_adaptive`. A plain function pointer keeps the
    /// scenario reusable across runs.
    pub fn tune_controllers(mut self, tune: fn(ControllerConfig) -> ControllerConfig) -> Self {
        self.tune = Some(tune);
        self
    }

    /// Replaces the harness configuration (task delay, detection delay, packet TTL).
    /// The per-run seed still comes from [`runs`](Self::runs)/[`seeds_from`](Self::seeds_from).
    pub fn harness_config(mut self, config: HarnessConfig) -> Self {
        self.harness = config;
        self
    }

    /// Overrides the controller task delay (the paper's 500 ms default, Figure 7's
    /// sweep parameter).
    pub fn task_delay(mut self, delay: SimDuration) -> Self {
        self.harness = self.harness.with_task_delay(delay);
        self
    }

    /// Adds a fault event at `offset` after the bootstrap instant. Events at equal
    /// offsets form one batch with a single recovery measurement.
    pub fn fault_at(mut self, offset: SimDuration, event: FaultEvent) -> Self {
        self.schedule = self.schedule.at(offset, event);
        self
    }

    /// Replaces the whole fault schedule.
    pub fn schedule(mut self, schedule: FaultSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Attaches a probe, sampled every [`sample_probes_every`](Self::sample_probes_every).
    pub fn probe(mut self, probe: Probe) -> Self {
        self.probes.push(probe);
        self
    }

    /// Probe sampling period (default: one simulated second).
    pub fn sample_probes_every(mut self, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "probe sampling period must be non-zero");
        self.sample_every = period;
        self
    }

    /// Attaches a workload; the factory builds a fresh instance per run. The factory
    /// must be `Send + Sync` so the parallel runner can invoke it from any worker
    /// thread; the workload instance itself stays on the worker that created it.
    pub fn workload(
        mut self,
        factory: impl Fn() -> Box<dyn Workload> + Send + Sync + 'static,
    ) -> Self {
        self.workloads.push(Box::new(factory));
        self
    }

    /// Registers an end-of-run summary statistic under a typed [`MetricKey`],
    /// evaluated once per run when the run finishes. A bare name is accepted as a
    /// shorthand for a count-valued key in the scenario namespace.
    pub fn summary(mut self, key: impl Into<SummaryKeyArg>, f: fn(&SdnNetwork) -> f64) -> Self {
        self.summaries.push((key.into().0, f));
        self
    }

    /// Number of seeded repetitions (default 1). Run `i` uses seed `base + i`.
    pub fn runs(mut self, runs: usize) -> Self {
        self.runs = runs.max(1);
        self
    }

    /// Base seed for the repetitions (default: the harness configuration's seed).
    pub fn seeds_from(mut self, base: u64) -> Self {
        self.seed_base = Some(base);
        self
    }

    /// Number of worker threads the runner fans the seeded repetitions out over
    /// (clamped to at least 1). Without an explicit value the runner honours the
    /// `RENAISSANCE_THREADS` environment variable and otherwise uses
    /// [`std::thread::available_parallelism`]. The aggregated [`ScenarioReport`] is
    /// bit-identical regardless of the thread count: every seeded run is fully
    /// self-contained and reports are merged back in seed order.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Convergence timeout applied to the bootstrap and to each recovery wait
    /// (default 1200 simulated seconds — the paper's slowest bootstrap is ~2 minutes).
    pub fn timeout(mut self, timeout: SimDuration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Legitimacy probing period — also the measurement resolution (default 250 ms).
    pub fn check_every(mut self, period: SimDuration) -> Self {
        assert!(
            !period.is_zero(),
            "legitimacy check period must be non-zero"
        );
        self.check_every = period;
        self
    }

    /// Selects whether controllers keep running during workloads (default
    /// [`ControlPlane::Live`]).
    pub fn control_plane(mut self, mode: ControlPlane) -> Self {
        self.control_plane = mode;
        self
    }

    /// Finalizes the scenario.
    ///
    /// # Panics
    ///
    /// Panics if no topology was specified via [`network`](Self::network) or
    /// [`topology`](Self::topology).
    pub fn build(self) -> Scenario {
        let topology = self
            .topology
            // stancheck: allow(unwrap-expect) — documented builder contract (see `# Panics`): a scenario without a topology is a programming error, and the fluent builder API has no Result channel
            .expect("Scenario requires a topology: call .network(name) or .topology(t)");
        Scenario {
            name: self.name,
            topology,
            controllers: self.controllers,
            controller_config: self.controller_config,
            tune: self.tune,
            harness: self.harness,
            schedule: self.schedule,
            probes: self.probes,
            sample_every: self.sample_every,
            workloads: self.workloads,
            summaries: self.summaries,
            runs: self.runs,
            seed_base: self.seed_base,
            threads: self.threads,
            timeout: self.timeout,
            check_every: self.check_every,
            control_plane: self.control_plane,
        }
    }

    /// Builds and immediately executes the scenario.
    pub fn run(self) -> ScenarioReport {
        self.build().run()
    }
}
