//! Typed, time-stamped fault schedules.
//!
//! A [`FaultSchedule`] is a list of [`FaultEvent`]s at offsets relative to the moment
//! the network first reaches a legitimate state (the paper injects every fault into an
//! already-stabilized network). Events carry *selectors* rather than concrete victims,
//! so one declarative scenario covers the paper's randomized experiments: the runner
//! resolves selectors per seeded run, deterministically.

use crate::faults::{CorruptionPlan, FaultInjector};
use crate::harness::SdnNetwork;
use crate::legitimacy;
use sdn_netsim::{BurstLoss, LinkConfig, SimDuration};
use sdn_rng::Rng;
use sdn_topology::{paths, FatTreeLayout, NodeId};
use std::collections::BTreeMap;

/// How a fault event picks its controller victim(s).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControllerSelector {
    /// A concrete controller.
    Id(NodeId),
    /// The controller at this index of [`SdnNetwork::controller_ids`].
    Index(usize),
    /// `count` random live controllers — but never all of them, so the control-plane
    /// task stays solvable (the paper's Figures 10/11 always leave one controller).
    Random {
        /// How many controllers fail simultaneously.
        count: usize,
    },
}

/// How a fault event picks its switch victim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchSelector {
    /// A concrete switch.
    Id(NodeId),
    /// A random live switch whose removal keeps the rest of the network connected
    /// (the paper's Figure 12 experiment also always stays connected).
    Random,
}

/// Endpoints of a data-plane path, used by [`LinkSelector::MidPath`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoints {
    /// Two concrete nodes.
    Nodes(NodeId, NodeId),
    /// The two switches at maximal distance in the switch graph — where the paper
    /// attaches its iperf hosts (Section 6.4.3).
    FarthestSwitches,
}

impl Endpoints {
    /// Resolves the endpoints against a concrete network.
    pub fn resolve(&self, net: &SdnNetwork) -> Option<(NodeId, NodeId)> {
        match *self {
            Endpoints::Nodes(a, b) => Some((a, b)),
            Endpoints::FarthestSwitches => {
                paths::farthest_pair(&net.topology().switch_graph).map(|(a, b, _)| (a, b))
            }
        }
    }
}

/// How a fault event picks the link(s) it acts on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkSelector {
    /// A concrete link.
    Between(NodeId, NodeId),
    /// `count` random links whose removal keeps the network in-band connected
    /// (Figures 13/14).
    RandomSafe {
        /// How many links are picked simultaneously.
        count: usize,
    },
    /// The link closest to the middle of the current in-band data-plane path between
    /// the endpoints, preferring links whose removal keeps the topology connected —
    /// the paper's Figures 15/16 mid-path failure.
    MidPath(Endpoints),
    /// Every in-pod uplink of one random rack (edge switch) of a fat-tree —
    /// a correlated top-of-rack failure domain. Resolves to nothing on
    /// topologies without fat-tree coordinates.
    SameRack,
    /// Every intra-pod link of one random fat-tree pod (the agg↔edge bipartite
    /// block) — a correlated pod-wide failure domain. Resolves to nothing on
    /// topologies without fat-tree coordinates.
    SamePod,
    /// The links degraded by the most recent `DegradeLink` event.
    LastDegraded,
}

/// How a link's quality degrades under a [`FaultEvent::DegradeLink`] — the gray
/// failure: the link stays part of `Gc` (no failure detector fires) but drops,
/// delays, or reorders traffic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradeSpec {
    /// Flat per-packet loss probability (ignored when `burst` is set: the burst
    /// process then owns the loss decision).
    pub loss: f64,
    /// Optional two-state burst-loss process; bursty links draw from a dedicated
    /// per-link RNG stream in the simulator, keeping runs interleaving-independent.
    pub burst: Option<BurstLoss>,
    /// Extra jitter added on top of the default link's jitter bound.
    pub extra_jitter: SimDuration,
    /// Degrade only the `a -> b` direction of each selected link, leaving the
    /// reverse direction clean — the asymmetric gray failure.
    pub asymmetric: bool,
}

impl DegradeSpec {
    /// Flat i.i.d. loss at probability `loss`, both directions.
    pub fn flat(loss: f64) -> Self {
        DegradeSpec {
            loss,
            burst: None,
            extra_jitter: SimDuration::ZERO,
            asymmetric: false,
        }
    }

    /// The canonical gray link of the issue: ~30% of packets dropped in bursts
    /// (Gilbert channel, mean burst ≈ 3 packets) in one direction only.
    pub fn gray() -> Self {
        DegradeSpec {
            loss: 0.0,
            burst: Some(BurstLoss::gilbert(0.15, 0.35, 1.0)),
            extra_jitter: SimDuration::ZERO,
            asymmetric: true,
        }
    }

    /// Makes the degradation symmetric (both directions).
    pub fn symmetric(mut self) -> Self {
        self.asymmetric = false;
        self
    }

    /// Adds jitter on top of the default link's jitter bound.
    pub fn with_extra_jitter(mut self, jitter: SimDuration) -> Self {
        self.extra_jitter = jitter;
        self
    }

    /// The concrete link configuration of a degraded link, derived from the
    /// network's default link behaviour.
    pub fn link_config(&self, base: LinkConfig) -> LinkConfig {
        let mut cfg = base.with_jitter(base.jitter + self.extra_jitter);
        cfg = match self.burst {
            Some(burst) => cfg.with_burst(burst),
            None => cfg.without_burst().with_loss(self.loss),
        };
        cfg
    }

    /// Short human-readable summary for fault descriptions.
    pub fn describe(&self) -> String {
        let loss = match self.burst {
            Some(burst) => format!("bursty loss ~{:.0}%", burst.stationary_loss() * 100.0),
            None => format!("loss {:.0}%", self.loss * 100.0),
        };
        let dir = if self.asymmetric { ", one-way" } else { "" };
        format!("{loss}{dir}")
    }
}

/// How a [`FaultEvent::Partition`] splits the network.
#[derive(Clone, Debug, PartialEq)]
pub enum PartitionSpec {
    /// Two connected halves grown around the first two live controllers by
    /// multi-source BFS (ties go to the first seed), so each side keeps a
    /// controller and can re-stabilize while partitioned. Resolves to nothing
    /// when fewer than two controllers are alive.
    Halves,
    /// Explicit node groups; every `Gc` link whose endpoints land in different
    /// groups is cut. Nodes listed in several groups keep their first assignment;
    /// unlisted nodes belong to no group and keep all their links.
    Groups(Vec<Vec<NodeId>>),
}

/// One typed fault, to be applied at a scheduled instant.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// Fail-stop of one or more controllers (Figures 10/11).
    FailController(ControllerSelector),
    /// Fail-stop of a switch (Figure 12).
    FailSwitch(SwitchSelector),
    /// Permanent removal of link(s) from `Gc` (Figures 13/14).
    RemoveLink(LinkSelector),
    /// Temporary link failure — the link stays part of `Gc`.
    FailLink(LinkSelector),
    /// Restores a concrete temporarily-failed link.
    RestoreLink(NodeId, NodeId),
    /// Restores every link taken down by the most recent `FailLink` event.
    RestoreLastFailedLinks,
    /// Adds a brand-new link to `Gc`.
    AddLink(NodeId, NodeId),
    /// Revives a concrete controller with fresh (empty) state (Lemma 8).
    ReviveController(NodeId),
    /// Revives the controller taken down by the most recent `FailController` event.
    ReviveLastFailedController,
    /// Revives a concrete switch with empty configuration.
    ReviveSwitch(NodeId),
    /// Revives the switch taken down by the most recent `FailSwitch` event.
    ReviveLastFailedSwitch,
    /// Arbitrary transient state corruption (the Theorem 2 experiments).
    CorruptState(CorruptionPlan),
    /// Degrades link quality without failing the link (gray failure): the link
    /// stays in `Gc`, no failure detector fires, but packets drop/delay per the
    /// spec. Victims are recorded for [`LinkSelector::LastDegraded`].
    DegradeLink(LinkSelector, DegradeSpec),
    /// Removes the quality overrides from the selected links, returning them to
    /// the default behaviour.
    RestoreLinkQuality(LinkSelector),
    /// Cuts the network into groups by transiently failing every crossing link.
    /// With `heal_after` set, [`FaultSchedule::batches`] schedules a matching
    /// [`FaultEvent::HealPartition`] that much later.
    Partition {
        /// How the groups are chosen.
        groups: PartitionSpec,
        /// Delay until the automatic heal, measured from the partition instant.
        heal_after: Option<SimDuration>,
    },
    /// Restores every link cut by the most recent `Partition` event.
    HealPartition,
    /// A link that goes down and comes back `count` times, `period` apart (down
    /// for the first half of each period). Expanded by [`FaultSchedule::batches`]
    /// into [`FaultEvent::FlapPhase`] pairs; the selector is resolved once, on
    /// the first down-phase, so every flap hits the same links.
    FlapLink {
        /// Which link(s) flap.
        selector: LinkSelector,
        /// Length of one down-then-up cycle.
        period: SimDuration,
        /// Number of cycles.
        count: u32,
    },
    /// One half-cycle of an expanded [`FaultEvent::FlapLink`]. Generated by
    /// [`FaultSchedule::batches`]; schedule `FlapLink` instead of this directly.
    FlapPhase {
        /// Identifier tying the phases of one flapping link together.
        flap: u32,
        /// The original selector, resolved on the first down-phase.
        selector: LinkSelector,
        /// `true` for the down half-cycle, `false` for the up half-cycle.
        down: bool,
    },
    /// A rolling restart of the controller fleet: controllers at indices
    /// `0..count` fail-stop one at a time, `interval` apart, each reviving with
    /// fresh state after `down_for` (the rolling-upgrade drill). Expanded by
    /// [`FaultSchedule::batches`] into fail/revive pairs.
    RollingControllerRestart {
        /// Gap between consecutive controller restarts.
        interval: SimDuration,
        /// How long each controller stays down.
        down_for: SimDuration,
        /// How many controllers restart (clamped to the fleet size at apply time).
        count: usize,
    },
    /// Revives the controller at this index of [`SdnNetwork::controller_ids`]
    /// with fresh state. Generated by the `RollingControllerRestart` expansion.
    ReviveControllerIndex(usize),
}

/// A time-ordered list of fault events, offsets relative to the bootstrap instant.
///
/// # Example
///
/// ```
/// use renaissance::scenario::{ControllerSelector, FaultEvent, FaultSchedule, LinkSelector};
/// use sdn_netsim::SimDuration;
///
/// let schedule = FaultSchedule::new()
///     .at(SimDuration::from_secs(5), FaultEvent::RemoveLink(LinkSelector::RandomSafe { count: 2 }))
///     .at(SimDuration::from_secs(5), FaultEvent::FailController(ControllerSelector::Random { count: 1 }));
/// assert_eq!(schedule.len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<(SimDuration, FaultEvent)>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Adds an event at `offset` after the bootstrap instant. Events at equal offsets
    /// form one *batch*: they are applied together and recovery is measured once for
    /// the whole batch.
    pub fn at(mut self, offset: SimDuration, event: FaultEvent) -> Self {
        self.events.push((offset, event));
        self
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events grouped into batches by offset, sorted by offset (stable: insertion
    /// order is kept within a batch).
    ///
    /// Compound events are expanded here: `FlapLink` becomes `FlapPhase` pairs
    /// (the flap id is the event's insertion index, so repeated phases share
    /// their resolved victims), `Partition { heal_after: Some(..) }` gains a
    /// `HealPartition`, and `RollingControllerRestart` becomes staggered
    /// fail/revive pairs.
    pub fn batches(&self) -> Vec<(SimDuration, Vec<FaultEvent>)> {
        let mut expanded: Vec<(SimDuration, FaultEvent)> = Vec::new();
        for (idx, (offset, event)) in self.events.iter().enumerate() {
            match event {
                FaultEvent::FlapLink {
                    selector,
                    period,
                    count,
                } => {
                    let period_us = period.as_micros();
                    for i in 0..*count {
                        let down_at = *offset + SimDuration::from_micros(period_us * i as u64);
                        let up_at = down_at + SimDuration::from_micros(period_us / 2);
                        expanded.push((
                            down_at,
                            FaultEvent::FlapPhase {
                                flap: idx as u32,
                                selector: *selector,
                                down: true,
                            },
                        ));
                        expanded.push((
                            up_at,
                            FaultEvent::FlapPhase {
                                flap: idx as u32,
                                selector: *selector,
                                down: false,
                            },
                        ));
                    }
                }
                FaultEvent::Partition { groups, heal_after } => {
                    expanded.push((
                        *offset,
                        FaultEvent::Partition {
                            groups: groups.clone(),
                            heal_after: *heal_after,
                        },
                    ));
                    if let Some(delay) = heal_after {
                        expanded.push((*offset + *delay, FaultEvent::HealPartition));
                    }
                }
                FaultEvent::RollingControllerRestart {
                    interval,
                    down_for,
                    count,
                } => {
                    let interval_us = interval.as_micros();
                    for i in 0..*count {
                        let fail_at = *offset + SimDuration::from_micros(interval_us * i as u64);
                        expanded.push((
                            fail_at,
                            FaultEvent::FailController(ControllerSelector::Index(i)),
                        ));
                        expanded.push((fail_at + *down_for, FaultEvent::ReviveControllerIndex(i)));
                    }
                }
                other => expanded.push((*offset, other.clone())),
            }
        }
        expanded.sort_by_key(|&(offset, _)| offset);
        let mut batches: Vec<(SimDuration, Vec<FaultEvent>)> = Vec::new();
        for (offset, event) in expanded {
            match batches.last_mut() {
                Some((at, events)) if *at == offset => events.push(event),
                _ => batches.push((offset, vec![event])),
            }
        }
        batches
    }
}

/// Per-run state the fault executor threads through event applications: deterministic
/// randomness plus the victims of the most recent events (for the `*LastFailed*`
/// targets).
#[derive(Debug)]
pub struct FaultContext {
    rng: Rng,
    injector: FaultInjector,
    /// Links taken down by the most recent `FailLink` event.
    pub last_failed_links: Vec<(NodeId, NodeId)>,
    /// Controller taken down most recently.
    pub last_failed_controller: Option<NodeId>,
    /// Switch taken down most recently.
    pub last_failed_switch: Option<NodeId>,
    /// Links degraded by the most recent `DegradeLink` event.
    pub last_degraded_links: Vec<(NodeId, NodeId)>,
    /// Links cut by the most recent `Partition` event, restored by `HealPartition`.
    pub partitioned_links: Vec<(NodeId, NodeId)>,
    /// Victims of each flapping link, resolved on its first down-phase so every
    /// subsequent phase of the same flap hits the same links.
    flap_targets: BTreeMap<u32, Vec<(NodeId, NodeId)>>,
}

impl FaultContext {
    /// Creates a context for one seeded run. Equal seeds resolve selectors to equal
    /// victims.
    pub fn new(seed: u64) -> Self {
        FaultContext {
            rng: Rng::seed_from_u64(seed ^ 0x5CEA_A210),
            injector: FaultInjector::new(seed ^ 0xFA17),
            last_failed_links: Vec::new(),
            last_failed_controller: None,
            last_failed_switch: None,
            last_degraded_links: Vec::new(),
            partitioned_links: Vec::new(),
            flap_targets: BTreeMap::new(),
        }
    }

    /// Applies one event to `net`, resolving selectors, and returns a human-readable
    /// description of everything that was actually done.
    pub fn apply(&mut self, net: &mut SdnNetwork, event: &FaultEvent) -> Vec<String> {
        let mut done = Vec::new();
        match event {
            FaultEvent::FailController(selector) => {
                for victim in self.resolve_controllers(net, *selector) {
                    net.fail_controller(victim);
                    self.last_failed_controller = Some(victim);
                    done.push(format!("fail-stop controller {victim}"));
                }
            }
            FaultEvent::FailSwitch(selector) => {
                if let Some(victim) = self.resolve_switch(net, *selector) {
                    net.fail_switch(victim);
                    self.last_failed_switch = Some(victim);
                    done.push(format!("fail-stop switch {victim}"));
                }
            }
            FaultEvent::RemoveLink(selector) => {
                for (a, b) in self.resolve_links(net, *selector) {
                    net.remove_link(a, b);
                    done.push(format!("remove link {a}-{b}"));
                }
            }
            FaultEvent::FailLink(selector) => {
                let links = self.resolve_links(net, *selector);
                if !links.is_empty() {
                    self.last_failed_links = links.clone();
                }
                for (a, b) in links {
                    net.fail_link(a, b);
                    done.push(format!("fail link {a}-{b}"));
                }
            }
            FaultEvent::RestoreLink(a, b) => {
                let (a, b) = (*a, *b);
                net.restore_link(a, b);
                done.push(format!("restore link {a}-{b}"));
            }
            FaultEvent::RestoreLastFailedLinks => {
                for (a, b) in std::mem::take(&mut self.last_failed_links) {
                    net.restore_link(a, b);
                    done.push(format!("restore link {a}-{b}"));
                }
            }
            FaultEvent::AddLink(a, b) => {
                let (a, b) = (*a, *b);
                net.add_link(a, b);
                done.push(format!("add link {a}-{b}"));
            }
            FaultEvent::ReviveController(id) => {
                let id = *id;
                net.revive_controller(id);
                done.push(format!("revive controller {id}"));
            }
            FaultEvent::ReviveLastFailedController => {
                if let Some(id) = self.last_failed_controller.take() {
                    net.revive_controller(id);
                    done.push(format!("revive controller {id}"));
                }
            }
            FaultEvent::ReviveSwitch(id) => {
                let id = *id;
                net.revive_switch(id);
                done.push(format!("revive switch {id}"));
            }
            FaultEvent::ReviveLastFailedSwitch => {
                if let Some(id) = self.last_failed_switch.take() {
                    net.revive_switch(id);
                    done.push(format!("revive switch {id}"));
                }
            }
            FaultEvent::CorruptState(plan) => {
                let mutations = self.injector.corrupt(net, *plan);
                done.push(format!("corrupt state ({mutations} mutations)"));
            }
            FaultEvent::DegradeLink(selector, spec) => {
                let links = self.resolve_links(net, *selector);
                if !links.is_empty() {
                    self.last_degraded_links = links.clone();
                }
                let cfg = spec.link_config(net.default_link_config());
                let what = spec.describe();
                for (a, b) in links {
                    let known = if spec.asymmetric {
                        net.set_link_config_directed(a, b, cfg)
                    } else {
                        net.set_link_config(a, b, cfg)
                    };
                    let note = if known { "" } else { ", unknown link" };
                    done.push(format!("degrade link {a}-{b} ({what}{note})"));
                }
            }
            FaultEvent::RestoreLinkQuality(selector) => {
                for (a, b) in self.resolve_links(net, *selector) {
                    net.clear_link_config(a, b);
                    done.push(format!("restore link quality {a}-{b}"));
                }
            }
            FaultEvent::Partition { groups, .. } => {
                let cut = partition_cut(net, groups);
                let n_groups = match groups {
                    PartitionSpec::Halves => 2,
                    PartitionSpec::Groups(g) => g.len(),
                };
                for &(a, b) in &cut {
                    net.fail_link(a, b);
                }
                done.push(format!(
                    "partition into {n_groups} groups ({} links cut)",
                    cut.len()
                ));
                self.partitioned_links = cut;
            }
            FaultEvent::HealPartition => {
                let links = std::mem::take(&mut self.partitioned_links);
                let n = links.len();
                for (a, b) in links {
                    net.restore_link(a, b);
                }
                done.push(format!("heal partition ({n} links restored)"));
            }
            FaultEvent::FlapLink { selector, .. } => {
                // Compound event: `batches()` expands it into `FlapPhase`s; applying
                // it directly (e.g. a schedule handed around unexpanded) does the
                // first down-phase so the fault is at least visible.
                done.extend(self.apply(
                    net,
                    &FaultEvent::FlapPhase {
                        flap: u32::MAX,
                        selector: *selector,
                        down: true,
                    },
                ));
            }
            FaultEvent::FlapPhase {
                flap,
                selector,
                down,
            } => {
                let (flap, down) = (*flap, *down);
                let links = match self.flap_targets.get(&flap) {
                    Some(links) => links.clone(),
                    None => {
                        let links = self.resolve_links(net, *selector);
                        self.flap_targets.insert(flap, links.clone());
                        links
                    }
                };
                for (a, b) in links {
                    if down {
                        net.fail_link(a, b);
                        done.push(format!("flap link {a}-{b} down"));
                    } else {
                        net.restore_link(a, b);
                        done.push(format!("flap link {a}-{b} up"));
                    }
                }
            }
            FaultEvent::RollingControllerRestart { .. } => {
                // Compound event: expanded by `batches()`. Applied directly it
                // restarts the first controller immediately.
                done.extend(self.apply(
                    net,
                    &FaultEvent::FailController(ControllerSelector::Index(0)),
                ));
            }
            FaultEvent::ReviveControllerIndex(i) => {
                if let Some(&id) = net.controller_ids().get(*i) {
                    net.revive_controller(id);
                    done.push(format!("revive controller {id} (rolling restart)"));
                }
            }
        }
        done
    }

    fn resolve_controllers(
        &mut self,
        net: &SdnNetwork,
        selector: ControllerSelector,
    ) -> Vec<NodeId> {
        match selector {
            ControllerSelector::Id(id) => vec![id],
            ControllerSelector::Index(i) => {
                let ids = net.controller_ids();
                ids.get(i).copied().into_iter().collect()
            }
            ControllerSelector::Random { count } => {
                let mut candidates = net.live_controller_ids();
                // Never kill every controller: the task needs at least one.
                let kill = count.min(candidates.len().saturating_sub(1));
                let mut victims = Vec::with_capacity(kill);
                for _ in 0..kill {
                    let idx = self.rng.gen_range(0..candidates.len());
                    victims.push(candidates.remove(idx));
                }
                victims
            }
        }
    }

    fn resolve_switch(&mut self, net: &SdnNetwork, selector: SwitchSelector) -> Option<NodeId> {
        match selector {
            SwitchSelector::Id(id) => Some(id),
            SwitchSelector::Random => {
                let switches = net.live_switch_ids();
                if switches.is_empty() {
                    return None;
                }
                let graph = net.sim().topology();
                let mut candidates: Vec<NodeId> = switches
                    .iter()
                    .copied()
                    .filter(|&s| {
                        let pruned = graph.without_nodes(&[s]);
                        paths::is_connected(&pruned)
                    })
                    .collect();
                if candidates.is_empty() {
                    candidates = switches;
                }
                Some(candidates[self.rng.gen_range(0..candidates.len())])
            }
        }
    }

    fn resolve_links(&mut self, net: &SdnNetwork, selector: LinkSelector) -> Vec<(NodeId, NodeId)> {
        match selector {
            LinkSelector::Between(a, b) => vec![(a, b)],
            LinkSelector::RandomSafe { count } => self.injector.random_safe_links(net, count),
            LinkSelector::MidPath(endpoints) => {
                let Some((src, dst)) = endpoints.resolve(net) else {
                    return Vec::new();
                };
                mid_path_link(net, src, dst).into_iter().collect()
            }
            LinkSelector::SameRack => {
                let Some(layout) = FatTreeLayout::detect(net.topology()) else {
                    return Vec::new();
                };
                let pod = self.rng.gen_range(0..layout.pod_count());
                let rack = self.rng.gen_range(0..layout.racks_per_pod());
                layout.rack_links(pod, rack)
            }
            LinkSelector::SamePod => {
                let Some(layout) = FatTreeLayout::detect(net.topology()) else {
                    return Vec::new();
                };
                let pod = self.rng.gen_range(0..layout.pod_count());
                layout.pod_links(pod)
            }
            LinkSelector::LastDegraded => std::mem::take(&mut self.last_degraded_links),
        }
    }
}

/// The set of `Gc` links to cut for a partition: every link whose endpoints are
/// assigned to different groups. `Halves` grows two connected regions around the
/// first two live controllers by multi-source BFS with ties to the first seed —
/// the lexicographic `(distance, seed)` assignment makes every region connected,
/// so each half keeps a working in-band control plane while partitioned.
fn partition_cut(net: &SdnNetwork, spec: &PartitionSpec) -> Vec<(NodeId, NodeId)> {
    let graph = net.sim().topology();
    let mut group: BTreeMap<NodeId, usize> = BTreeMap::new();
    match spec {
        PartitionSpec::Halves => {
            let controllers = net.live_controller_ids();
            if controllers.len() < 2 {
                return Vec::new();
            }
            let trees: Vec<paths::BfsTree> = controllers[..2]
                .iter()
                .map(|&seed| paths::BfsTree::compute(graph, seed))
                .collect();
            for node in graph.nodes() {
                let best = trees
                    .iter()
                    .enumerate()
                    .filter_map(|(i, tree)| tree.distance(node).map(|d| (d, i)))
                    .min();
                if let Some((_, i)) = best {
                    group.insert(node, i);
                }
            }
        }
        PartitionSpec::Groups(groups) => {
            for (i, members) in groups.iter().enumerate() {
                for &node in members {
                    group.entry(node).or_insert(i);
                }
            }
        }
    }
    graph
        .links()
        .filter_map(|link| {
            let (a, b) = (link.a, link.b);
            match (group.get(&a), group.get(&b)) {
                (Some(ga), Some(gb)) if ga != gb => Some((a, b)),
                _ => None,
            }
        })
        .collect()
}

/// The link closest to the middle of the current in-band path from `src` to `dst`,
/// preferring links whose removal keeps the topology connected (the paper chooses a
/// link "such that it enables a backup path").
pub fn mid_path_link(net: &SdnNetwork, src: NodeId, dst: NodeId) -> Option<(NodeId, NodeId)> {
    let operational = net.sim().operational_graph();
    let path = legitimacy::route_in_band(net, operational, src, dst)?;
    if path.len() < 2 {
        return None;
    }
    let mid = path.len() / 2;
    // Try the middle link first, then walk outwards until a safe link is found.
    let mut candidates: Vec<usize> = (0..path.len() - 1).collect();
    candidates.sort_by_key(|&i| i.abs_diff(mid.saturating_sub(1)));
    for i in candidates {
        let (a, b) = (path[i], path[i + 1]);
        let mut graph = net.sim().topology().clone();
        graph.remove_link(a, b);
        if paths::is_connected(&graph) {
            return Some((a, b));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ControllerConfig, HarnessConfig};
    use sdn_topology::builders;

    fn bootstrapped() -> SdnNetwork {
        let topology = builders::ring(5, 2);
        let mut net = SdnNetwork::new(
            topology,
            ControllerConfig::for_network(2, 5),
            HarnessConfig::default()
                .with_task_delay(SimDuration::from_millis(100))
                .with_seed(3),
        );
        net.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("bootstrap");
        net
    }

    #[test]
    fn schedule_batches_group_equal_offsets_in_order() {
        let schedule = FaultSchedule::new()
            .at(
                SimDuration::from_secs(10),
                FaultEvent::RestoreLastFailedLinks,
            )
            .at(
                SimDuration::from_secs(5),
                FaultEvent::FailLink(LinkSelector::RandomSafe { count: 1 }),
            )
            .at(
                SimDuration::from_secs(5),
                FaultEvent::FailController(ControllerSelector::Index(1)),
            );
        let batches = schedule.batches();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].0, SimDuration::from_secs(5));
        assert_eq!(batches[0].1.len(), 2);
        assert!(matches!(batches[0].1[0], FaultEvent::FailLink(_)));
        assert_eq!(batches[1].0, SimDuration::from_secs(10));
        assert!(!schedule.is_empty());
        assert_eq!(schedule.len(), 3);
    }

    #[test]
    fn selectors_resolve_deterministically() {
        let net = bootstrapped();
        let mut a = FaultContext::new(9);
        let mut b = FaultContext::new(9);
        assert_eq!(
            a.resolve_controllers(&net, ControllerSelector::Random { count: 1 }),
            b.resolve_controllers(&net, ControllerSelector::Random { count: 1 }),
        );
        assert_eq!(
            a.resolve_switch(&net, SwitchSelector::Random),
            b.resolve_switch(&net, SwitchSelector::Random),
        );
        assert_eq!(
            a.resolve_links(&net, LinkSelector::RandomSafe { count: 2 }),
            b.resolve_links(&net, LinkSelector::RandomSafe { count: 2 }),
        );
    }

    #[test]
    fn random_controller_selector_never_kills_everyone() {
        let net = bootstrapped();
        let mut ctx = FaultContext::new(5);
        let victims = ctx.resolve_controllers(&net, ControllerSelector::Random { count: 99 });
        assert_eq!(victims.len(), net.controller_ids().len() - 1);
    }

    #[test]
    fn fail_and_restore_last_failed_links_round_trip() {
        let mut net = bootstrapped();
        let mut ctx = FaultContext::new(7);
        let done = ctx.apply(
            &mut net,
            &FaultEvent::FailLink(LinkSelector::RandomSafe { count: 1 }),
        );
        assert_eq!(done.len(), 1);
        assert_eq!(ctx.last_failed_links.len(), 1);
        let (a, b) = ctx.last_failed_links[0];
        assert!(!net.sim().link_is_operational(a, b));
        let done = ctx.apply(&mut net, &FaultEvent::RestoreLastFailedLinks);
        assert_eq!(done.len(), 1);
        assert!(net.sim().link_is_operational(a, b));
        assert!(ctx.last_failed_links.is_empty());
    }

    #[test]
    fn mid_path_link_is_on_the_path_and_safe() {
        let net = bootstrapped();
        let (src, dst) = Endpoints::FarthestSwitches
            .resolve(&net)
            .expect("endpoints");
        let (a, b) = mid_path_link(&net, src, dst).expect("mid-path link");
        assert!(net.sim().topology().has_link(a, b));
        let mut graph = net.sim().topology().clone();
        graph.remove_link(a, b);
        assert!(paths::is_connected(&graph));
    }

    #[test]
    fn degrade_and_restore_quality_round_trip() {
        let mut net = bootstrapped();
        let mut ctx = FaultContext::new(13);
        let done = ctx.apply(
            &mut net,
            &FaultEvent::DegradeLink(LinkSelector::RandomSafe { count: 2 }, DegradeSpec::gray()),
        );
        assert_eq!(done.len(), 2);
        assert!(done[0].starts_with("degrade link"), "{:?}", done);
        assert!(done[0].contains("bursty loss"), "{:?}", done);
        assert_eq!(ctx.last_degraded_links.len(), 2);
        // Gray links stay operational: no failure detector fires.
        for &(a, b) in &ctx.last_degraded_links {
            assert!(net.sim().link_is_operational(a, b));
        }
        assert_eq!(net.link_config_warnings(), 0);
        let done = ctx.apply(
            &mut net,
            &FaultEvent::RestoreLinkQuality(LinkSelector::LastDegraded),
        );
        assert_eq!(done.len(), 2);
        assert!(done[0].starts_with("restore link quality"));
        assert!(ctx.last_degraded_links.is_empty());
    }

    #[test]
    fn partition_halves_cuts_and_heals() {
        let mut net = bootstrapped();
        let mut ctx = FaultContext::new(17);
        let done = ctx.apply(
            &mut net,
            &FaultEvent::Partition {
                groups: PartitionSpec::Halves,
                heal_after: None,
            },
        );
        assert_eq!(done.len(), 1);
        assert!(done[0].starts_with("partition into 2 groups"));
        assert!(!ctx.partitioned_links.is_empty());
        let cut = ctx.partitioned_links.clone();
        for &(a, b) in &cut {
            assert!(!net.sim().link_is_operational(a, b));
        }
        let done = ctx.apply(&mut net, &FaultEvent::HealPartition);
        assert!(done[0].starts_with("heal partition"));
        for &(a, b) in &cut {
            assert!(net.sim().link_is_operational(a, b));
        }
        assert!(ctx.partitioned_links.is_empty());
    }

    #[test]
    fn explicit_partition_groups_cut_only_crossing_links() {
        let mut net = bootstrapped();
        let mut ctx = FaultContext::new(19);
        // ring(5, 2): controllers 0-1, switches 2-6 in a ring with the controllers
        // attached. Split one switch off from everything else.
        let all: Vec<NodeId> = net.topology().graph.nodes().collect();
        let lone = net.topology().switches[0];
        let rest: Vec<NodeId> = all.iter().copied().filter(|&n| n != lone).collect();
        ctx.apply(
            &mut net,
            &FaultEvent::Partition {
                groups: PartitionSpec::Groups(vec![vec![lone], rest]),
                heal_after: None,
            },
        );
        assert_eq!(
            ctx.partitioned_links.len(),
            net.topology().graph.degree(lone)
        );
        for &(a, b) in &ctx.partitioned_links {
            assert!(a == lone || b == lone);
        }
    }

    #[test]
    fn flap_link_expands_into_phase_batches() {
        let schedule = FaultSchedule::new().at(
            SimDuration::from_secs(2),
            FaultEvent::FlapLink {
                selector: LinkSelector::RandomSafe { count: 1 },
                period: SimDuration::from_secs(4),
                count: 3,
            },
        );
        let batches = schedule.batches();
        // 3 flaps × (down + up) = 6 batches at 2, 4, 6, 8, 10, 12 s.
        assert_eq!(batches.len(), 6);
        for (i, (offset, events)) in batches.iter().enumerate() {
            assert_eq!(*offset, SimDuration::from_secs(2 + 2 * i as u64));
            assert_eq!(events.len(), 1);
            match &events[0] {
                FaultEvent::FlapPhase { flap, down, .. } => {
                    assert_eq!(*flap, 0);
                    assert_eq!(*down, i % 2 == 0);
                }
                other => panic!("expected FlapPhase, got {other:?}"),
            }
        }
    }

    #[test]
    fn flap_phases_hit_the_same_link_every_cycle() {
        let mut net = bootstrapped();
        let mut ctx = FaultContext::new(23);
        let selector = LinkSelector::RandomSafe { count: 1 };
        let down = |ctx: &mut FaultContext, net: &mut SdnNetwork| {
            ctx.apply(
                net,
                &FaultEvent::FlapPhase {
                    flap: 7,
                    selector,
                    down: true,
                },
            )
        };
        let first = down(&mut ctx, &mut net);
        ctx.apply(
            &mut net,
            &FaultEvent::FlapPhase {
                flap: 7,
                selector,
                down: false,
            },
        );
        let second = down(&mut ctx, &mut net);
        assert_eq!(first, second, "the same link must flap every cycle");
    }

    #[test]
    fn rolling_restart_expands_into_fail_revive_pairs() {
        let schedule = FaultSchedule::new().at(
            SimDuration::from_secs(1),
            FaultEvent::RollingControllerRestart {
                interval: SimDuration::from_secs(10),
                down_for: SimDuration::from_secs(4),
                count: 2,
            },
        );
        let batches = schedule.batches();
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[0].0, SimDuration::from_secs(1));
        assert!(matches!(
            batches[0].1[0],
            FaultEvent::FailController(ControllerSelector::Index(0))
        ));
        assert_eq!(batches[1].0, SimDuration::from_secs(5));
        assert!(matches!(
            batches[1].1[0],
            FaultEvent::ReviveControllerIndex(0)
        ));
        assert_eq!(batches[2].0, SimDuration::from_secs(11));
        assert!(matches!(
            batches[2].1[0],
            FaultEvent::FailController(ControllerSelector::Index(1))
        ));
        assert_eq!(batches[3].0, SimDuration::from_secs(15));
    }

    #[test]
    fn partition_heal_after_schedules_heal_batch() {
        let schedule = FaultSchedule::new().at(
            SimDuration::from_secs(2),
            FaultEvent::Partition {
                groups: PartitionSpec::Halves,
                heal_after: Some(SimDuration::from_secs(8)),
            },
        );
        let batches = schedule.batches();
        assert_eq!(batches.len(), 2);
        assert!(matches!(batches[0].1[0], FaultEvent::Partition { .. }));
        assert_eq!(batches[1].0, SimDuration::from_secs(10));
        assert!(matches!(batches[1].1[0], FaultEvent::HealPartition));
    }

    #[test]
    fn rack_and_pod_selectors_resolve_on_fat_trees_only() {
        let topology = builders::fat_tree(4, 2);
        let mut net = SdnNetwork::new(
            topology,
            ControllerConfig::for_network(2, 20),
            HarnessConfig::default()
                .with_task_delay(SimDuration::from_millis(100))
                .with_seed(4),
        );
        net.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("bootstrap");
        let mut ctx = FaultContext::new(29);
        let rack = ctx.resolve_links(&net, LinkSelector::SameRack);
        // One edge switch has k/2 = 2 in-pod uplinks.
        assert_eq!(rack.len(), 2);
        let common: Vec<NodeId> = rack.iter().map(|&(_, e)| e).collect();
        assert!(
            common.windows(2).all(|w| w[0] == w[1]),
            "one rack = one edge"
        );
        let pod = ctx.resolve_links(&net, LinkSelector::SamePod);
        assert_eq!(pod.len(), 4, "k/2 * k/2 intra-pod links");
        for (a, b) in pod {
            assert!(net.sim().topology().has_link(a, b));
        }
        // Determinism: equal seeds pick equal racks.
        let mut a = FaultContext::new(31);
        let mut b = FaultContext::new(31);
        assert_eq!(
            a.resolve_links(&net, LinkSelector::SameRack),
            b.resolve_links(&net, LinkSelector::SameRack)
        );
        // Non-fat-tree topologies resolve to nothing.
        let ring_net = bootstrapped();
        assert!(ctx
            .resolve_links(&ring_net, LinkSelector::SameRack)
            .is_empty());
        assert!(ctx
            .resolve_links(&ring_net, LinkSelector::SamePod)
            .is_empty());
    }

    #[test]
    fn corrupt_state_event_reports_mutations() {
        let mut net = bootstrapped();
        let mut ctx = FaultContext::new(11);
        let done = ctx.apply(&mut net, &FaultEvent::CorruptState(CorruptionPlan::light()));
        assert_eq!(done.len(), 1);
        assert!(done[0].starts_with("corrupt state ("));
        assert!(!net.is_legitimate());
    }
}
