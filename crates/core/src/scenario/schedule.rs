//! Typed, time-stamped fault schedules.
//!
//! A [`FaultSchedule`] is a list of [`FaultEvent`]s at offsets relative to the moment
//! the network first reaches a legitimate state (the paper injects every fault into an
//! already-stabilized network). Events carry *selectors* rather than concrete victims,
//! so one declarative scenario covers the paper's randomized experiments: the runner
//! resolves selectors per seeded run, deterministically.

use crate::faults::{CorruptionPlan, FaultInjector};
use crate::harness::SdnNetwork;
use crate::legitimacy;
use sdn_netsim::SimDuration;
use sdn_rng::Rng;
use sdn_topology::{paths, NodeId};

/// How a fault event picks its controller victim(s).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControllerSelector {
    /// A concrete controller.
    Id(NodeId),
    /// The controller at this index of [`SdnNetwork::controller_ids`].
    Index(usize),
    /// `count` random live controllers — but never all of them, so the control-plane
    /// task stays solvable (the paper's Figures 10/11 always leave one controller).
    Random {
        /// How many controllers fail simultaneously.
        count: usize,
    },
}

/// How a fault event picks its switch victim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchSelector {
    /// A concrete switch.
    Id(NodeId),
    /// A random live switch whose removal keeps the rest of the network connected
    /// (the paper's Figure 12 experiment also always stays connected).
    Random,
}

/// Endpoints of a data-plane path, used by [`LinkSelector::MidPath`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoints {
    /// Two concrete nodes.
    Nodes(NodeId, NodeId),
    /// The two switches at maximal distance in the switch graph — where the paper
    /// attaches its iperf hosts (Section 6.4.3).
    FarthestSwitches,
}

impl Endpoints {
    /// Resolves the endpoints against a concrete network.
    pub fn resolve(&self, net: &SdnNetwork) -> Option<(NodeId, NodeId)> {
        match *self {
            Endpoints::Nodes(a, b) => Some((a, b)),
            Endpoints::FarthestSwitches => {
                paths::farthest_pair(&net.topology().switch_graph).map(|(a, b, _)| (a, b))
            }
        }
    }
}

/// How a fault event picks the link(s) it acts on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkSelector {
    /// A concrete link.
    Between(NodeId, NodeId),
    /// `count` random links whose removal keeps the network in-band connected
    /// (Figures 13/14).
    RandomSafe {
        /// How many links are picked simultaneously.
        count: usize,
    },
    /// The link closest to the middle of the current in-band data-plane path between
    /// the endpoints, preferring links whose removal keeps the topology connected —
    /// the paper's Figures 15/16 mid-path failure.
    MidPath(Endpoints),
}

/// One typed fault, to be applied at a scheduled instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// Fail-stop of one or more controllers (Figures 10/11).
    FailController(ControllerSelector),
    /// Fail-stop of a switch (Figure 12).
    FailSwitch(SwitchSelector),
    /// Permanent removal of link(s) from `Gc` (Figures 13/14).
    RemoveLink(LinkSelector),
    /// Temporary link failure — the link stays part of `Gc`.
    FailLink(LinkSelector),
    /// Restores a concrete temporarily-failed link.
    RestoreLink(NodeId, NodeId),
    /// Restores every link taken down by the most recent `FailLink` event.
    RestoreLastFailedLinks,
    /// Adds a brand-new link to `Gc`.
    AddLink(NodeId, NodeId),
    /// Revives a concrete controller with fresh (empty) state (Lemma 8).
    ReviveController(NodeId),
    /// Revives the controller taken down by the most recent `FailController` event.
    ReviveLastFailedController,
    /// Revives a concrete switch with empty configuration.
    ReviveSwitch(NodeId),
    /// Revives the switch taken down by the most recent `FailSwitch` event.
    ReviveLastFailedSwitch,
    /// Arbitrary transient state corruption (the Theorem 2 experiments).
    CorruptState(CorruptionPlan),
}

/// A time-ordered list of fault events, offsets relative to the bootstrap instant.
///
/// # Example
///
/// ```
/// use renaissance::scenario::{ControllerSelector, FaultEvent, FaultSchedule, LinkSelector};
/// use sdn_netsim::SimDuration;
///
/// let schedule = FaultSchedule::new()
///     .at(SimDuration::from_secs(5), FaultEvent::RemoveLink(LinkSelector::RandomSafe { count: 2 }))
///     .at(SimDuration::from_secs(5), FaultEvent::FailController(ControllerSelector::Random { count: 1 }));
/// assert_eq!(schedule.len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<(SimDuration, FaultEvent)>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Adds an event at `offset` after the bootstrap instant. Events at equal offsets
    /// form one *batch*: they are applied together and recovery is measured once for
    /// the whole batch.
    pub fn at(mut self, offset: SimDuration, event: FaultEvent) -> Self {
        self.events.push((offset, event));
        self
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events grouped into batches by offset, sorted by offset (stable: insertion
    /// order is kept within a batch).
    pub fn batches(&self) -> Vec<(SimDuration, Vec<FaultEvent>)> {
        let mut sorted = self.events.clone();
        sorted.sort_by_key(|&(offset, _)| offset);
        let mut batches: Vec<(SimDuration, Vec<FaultEvent>)> = Vec::new();
        for (offset, event) in sorted {
            match batches.last_mut() {
                Some((at, events)) if *at == offset => events.push(event),
                _ => batches.push((offset, vec![event])),
            }
        }
        batches
    }
}

/// Per-run state the fault executor threads through event applications: deterministic
/// randomness plus the victims of the most recent events (for the `*LastFailed*`
/// targets).
#[derive(Debug)]
pub struct FaultContext {
    rng: Rng,
    injector: FaultInjector,
    /// Links taken down by the most recent `FailLink` event.
    pub last_failed_links: Vec<(NodeId, NodeId)>,
    /// Controller taken down most recently.
    pub last_failed_controller: Option<NodeId>,
    /// Switch taken down most recently.
    pub last_failed_switch: Option<NodeId>,
}

impl FaultContext {
    /// Creates a context for one seeded run. Equal seeds resolve selectors to equal
    /// victims.
    pub fn new(seed: u64) -> Self {
        FaultContext {
            rng: Rng::seed_from_u64(seed ^ 0x5CEA_A210),
            injector: FaultInjector::new(seed ^ 0xFA17),
            last_failed_links: Vec::new(),
            last_failed_controller: None,
            last_failed_switch: None,
        }
    }

    /// Applies one event to `net`, resolving selectors, and returns a human-readable
    /// description of everything that was actually done.
    pub fn apply(&mut self, net: &mut SdnNetwork, event: &FaultEvent) -> Vec<String> {
        let mut done = Vec::new();
        match *event {
            FaultEvent::FailController(selector) => {
                for victim in self.resolve_controllers(net, selector) {
                    net.fail_controller(victim);
                    self.last_failed_controller = Some(victim);
                    done.push(format!("fail-stop controller {victim}"));
                }
            }
            FaultEvent::FailSwitch(selector) => {
                if let Some(victim) = self.resolve_switch(net, selector) {
                    net.fail_switch(victim);
                    self.last_failed_switch = Some(victim);
                    done.push(format!("fail-stop switch {victim}"));
                }
            }
            FaultEvent::RemoveLink(selector) => {
                for (a, b) in self.resolve_links(net, selector) {
                    net.remove_link(a, b);
                    done.push(format!("remove link {a}-{b}"));
                }
            }
            FaultEvent::FailLink(selector) => {
                let links = self.resolve_links(net, selector);
                if !links.is_empty() {
                    self.last_failed_links = links.clone();
                }
                for (a, b) in links {
                    net.fail_link(a, b);
                    done.push(format!("fail link {a}-{b}"));
                }
            }
            FaultEvent::RestoreLink(a, b) => {
                net.restore_link(a, b);
                done.push(format!("restore link {a}-{b}"));
            }
            FaultEvent::RestoreLastFailedLinks => {
                for (a, b) in std::mem::take(&mut self.last_failed_links) {
                    net.restore_link(a, b);
                    done.push(format!("restore link {a}-{b}"));
                }
            }
            FaultEvent::AddLink(a, b) => {
                net.add_link(a, b);
                done.push(format!("add link {a}-{b}"));
            }
            FaultEvent::ReviveController(id) => {
                net.revive_controller(id);
                done.push(format!("revive controller {id}"));
            }
            FaultEvent::ReviveLastFailedController => {
                if let Some(id) = self.last_failed_controller.take() {
                    net.revive_controller(id);
                    done.push(format!("revive controller {id}"));
                }
            }
            FaultEvent::ReviveSwitch(id) => {
                net.revive_switch(id);
                done.push(format!("revive switch {id}"));
            }
            FaultEvent::ReviveLastFailedSwitch => {
                if let Some(id) = self.last_failed_switch.take() {
                    net.revive_switch(id);
                    done.push(format!("revive switch {id}"));
                }
            }
            FaultEvent::CorruptState(plan) => {
                let mutations = self.injector.corrupt(net, plan);
                done.push(format!("corrupt state ({mutations} mutations)"));
            }
        }
        done
    }

    fn resolve_controllers(
        &mut self,
        net: &SdnNetwork,
        selector: ControllerSelector,
    ) -> Vec<NodeId> {
        match selector {
            ControllerSelector::Id(id) => vec![id],
            ControllerSelector::Index(i) => {
                let ids = net.controller_ids();
                ids.get(i).copied().into_iter().collect()
            }
            ControllerSelector::Random { count } => {
                let mut candidates = net.live_controller_ids();
                // Never kill every controller: the task needs at least one.
                let kill = count.min(candidates.len().saturating_sub(1));
                let mut victims = Vec::with_capacity(kill);
                for _ in 0..kill {
                    let idx = self.rng.gen_range(0..candidates.len());
                    victims.push(candidates.remove(idx));
                }
                victims
            }
        }
    }

    fn resolve_switch(&mut self, net: &SdnNetwork, selector: SwitchSelector) -> Option<NodeId> {
        match selector {
            SwitchSelector::Id(id) => Some(id),
            SwitchSelector::Random => {
                let switches = net.live_switch_ids();
                if switches.is_empty() {
                    return None;
                }
                let graph = net.sim().topology();
                let mut candidates: Vec<NodeId> = switches
                    .iter()
                    .copied()
                    .filter(|&s| {
                        let pruned = graph.without_nodes(&[s]);
                        paths::is_connected(&pruned)
                    })
                    .collect();
                if candidates.is_empty() {
                    candidates = switches;
                }
                Some(candidates[self.rng.gen_range(0..candidates.len())])
            }
        }
    }

    fn resolve_links(&mut self, net: &SdnNetwork, selector: LinkSelector) -> Vec<(NodeId, NodeId)> {
        match selector {
            LinkSelector::Between(a, b) => vec![(a, b)],
            LinkSelector::RandomSafe { count } => self.injector.random_safe_links(net, count),
            LinkSelector::MidPath(endpoints) => {
                let Some((src, dst)) = endpoints.resolve(net) else {
                    return Vec::new();
                };
                mid_path_link(net, src, dst).into_iter().collect()
            }
        }
    }
}

/// The link closest to the middle of the current in-band path from `src` to `dst`,
/// preferring links whose removal keeps the topology connected (the paper chooses a
/// link "such that it enables a backup path").
pub fn mid_path_link(net: &SdnNetwork, src: NodeId, dst: NodeId) -> Option<(NodeId, NodeId)> {
    let operational = net.sim().operational_graph();
    let path = legitimacy::route_in_band(net, operational, src, dst)?;
    if path.len() < 2 {
        return None;
    }
    let mid = path.len() / 2;
    // Try the middle link first, then walk outwards until a safe link is found.
    let mut candidates: Vec<usize> = (0..path.len() - 1).collect();
    candidates.sort_by_key(|&i| i.abs_diff(mid.saturating_sub(1)));
    for i in candidates {
        let (a, b) = (path[i], path[i + 1]);
        let mut graph = net.sim().topology().clone();
        graph.remove_link(a, b);
        if paths::is_connected(&graph) {
            return Some((a, b));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ControllerConfig, HarnessConfig};
    use sdn_topology::builders;

    fn bootstrapped() -> SdnNetwork {
        let topology = builders::ring(5, 2);
        let mut net = SdnNetwork::new(
            topology,
            ControllerConfig::for_network(2, 5),
            HarnessConfig::default()
                .with_task_delay(SimDuration::from_millis(100))
                .with_seed(3),
        );
        net.run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("bootstrap");
        net
    }

    #[test]
    fn schedule_batches_group_equal_offsets_in_order() {
        let schedule = FaultSchedule::new()
            .at(
                SimDuration::from_secs(10),
                FaultEvent::RestoreLastFailedLinks,
            )
            .at(
                SimDuration::from_secs(5),
                FaultEvent::FailLink(LinkSelector::RandomSafe { count: 1 }),
            )
            .at(
                SimDuration::from_secs(5),
                FaultEvent::FailController(ControllerSelector::Index(1)),
            );
        let batches = schedule.batches();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].0, SimDuration::from_secs(5));
        assert_eq!(batches[0].1.len(), 2);
        assert!(matches!(batches[0].1[0], FaultEvent::FailLink(_)));
        assert_eq!(batches[1].0, SimDuration::from_secs(10));
        assert!(!schedule.is_empty());
        assert_eq!(schedule.len(), 3);
    }

    #[test]
    fn selectors_resolve_deterministically() {
        let net = bootstrapped();
        let mut a = FaultContext::new(9);
        let mut b = FaultContext::new(9);
        assert_eq!(
            a.resolve_controllers(&net, ControllerSelector::Random { count: 1 }),
            b.resolve_controllers(&net, ControllerSelector::Random { count: 1 }),
        );
        assert_eq!(
            a.resolve_switch(&net, SwitchSelector::Random),
            b.resolve_switch(&net, SwitchSelector::Random),
        );
        assert_eq!(
            a.resolve_links(&net, LinkSelector::RandomSafe { count: 2 }),
            b.resolve_links(&net, LinkSelector::RandomSafe { count: 2 }),
        );
    }

    #[test]
    fn random_controller_selector_never_kills_everyone() {
        let net = bootstrapped();
        let mut ctx = FaultContext::new(5);
        let victims = ctx.resolve_controllers(&net, ControllerSelector::Random { count: 99 });
        assert_eq!(victims.len(), net.controller_ids().len() - 1);
    }

    #[test]
    fn fail_and_restore_last_failed_links_round_trip() {
        let mut net = bootstrapped();
        let mut ctx = FaultContext::new(7);
        let done = ctx.apply(
            &mut net,
            &FaultEvent::FailLink(LinkSelector::RandomSafe { count: 1 }),
        );
        assert_eq!(done.len(), 1);
        assert_eq!(ctx.last_failed_links.len(), 1);
        let (a, b) = ctx.last_failed_links[0];
        assert!(!net.sim().link_is_operational(a, b));
        let done = ctx.apply(&mut net, &FaultEvent::RestoreLastFailedLinks);
        assert_eq!(done.len(), 1);
        assert!(net.sim().link_is_operational(a, b));
        assert!(ctx.last_failed_links.is_empty());
    }

    #[test]
    fn mid_path_link_is_on_the_path_and_safe() {
        let net = bootstrapped();
        let (src, dst) = Endpoints::FarthestSwitches
            .resolve(&net)
            .expect("endpoints");
        let (a, b) = mid_path_link(&net, src, dst).expect("mid-path link");
        assert!(net.sim().topology().has_link(a, b));
        let mut graph = net.sim().topology().clone();
        graph.remove_link(a, b);
        assert!(paths::is_connected(&graph));
    }

    #[test]
    fn corrupt_state_event_reports_mutations() {
        let mut net = bootstrapped();
        let mut ctx = FaultContext::new(11);
        let done = ctx.apply(&mut net, &FaultEvent::CorruptState(CorruptionPlan::light()));
        assert_eq!(done.len(), 1);
        assert!(done[0].starts_with("corrupt state ("));
        assert!(!net.is_legitimate());
    }
}
