//! The event-driven scenario executor.
//!
//! One [`ScenarioRunner`] run replaces the bespoke bootstrap/inject/poll loops the
//! experiment binaries used to hand-roll: a single agenda merges fault batches,
//! workload ticks, probe samples, and legitimacy checks, and the simulator is advanced
//! from one agenda instant to the next. Legitimacy is still evaluated on the
//! scenario's `check_every` cadence — measurement resolution is unchanged from the
//! polling days, so results are bit-identical with equal seeds (the scenario
//! regression test relies on this).

use super::report::{InjectedFault, RecoveryRecord, RunReport, ScenarioReport};
use super::schedule::FaultContext;
use super::workload::{Workload, WorkloadTick};
use super::{ControlPlane, ProbeSeries, Scenario};
use crate::config::ControllerConfig;
use crate::harness::SdnNetwork;
use sdn_netsim::{SimDuration, SimTime};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

// The parallel path shares one `&Scenario` across scoped worker threads and sends each
// worker's `RunReport` back to the caller; these compile-time assertions are the audit
// that every type crossing a thread boundary actually carries the required bound. They
// transitively cover the whole netsim/core data model (`SdnNetwork` embeds the
// simulator, topology, controllers, and switches).
const fn assert_send<T: Send>() {}
const fn assert_sync<T: Sync>() {}
const _: () = {
    assert_sync::<Scenario>();
    assert_send::<Scenario>();
    assert_send::<RunReport>();
    assert_send::<ScenarioReport>();
    assert_send::<SdnNetwork>();
};

/// Executes a [`Scenario`] over its configured seeds.
pub struct ScenarioRunner<'a> {
    scenario: &'a Scenario,
}

impl<'a> ScenarioRunner<'a> {
    /// Creates a runner for `scenario`.
    pub fn new(scenario: &'a Scenario) -> Self {
        ScenarioRunner { scenario }
    }

    /// Runs every seed and aggregates the per-run reports.
    ///
    /// Seeds fan out over [`worker_count`](Self::worker_count) scoped threads; each
    /// seeded run is fully self-contained (its own network, RNG, and workloads), and
    /// the per-run reports are merged back in seed order, so the result is bit-identical
    /// to a sequential execution no matter how many workers run.
    pub fn run(&self) -> ScenarioReport {
        let base = self.scenario.base_seed();
        let runs = self.scenario.runs;
        let workers = self.worker_count().min(runs).max(1);
        let mut report = ScenarioReport {
            scenario: self.scenario.name.clone(),
            network: self.scenario.topology.label(),
            runs: Vec::with_capacity(runs),
        };
        if workers <= 1 {
            for i in 0..runs {
                report.runs.push(self.run_seed(base + i as u64));
            }
        } else {
            report.runs = self.run_parallel(base, runs, workers);
        }
        report
    }

    /// The number of worker threads [`run`](Self::run) uses, before clamping to the
    /// number of runs: an explicit [`ScenarioBuilder::threads`](super::ScenarioBuilder::threads)
    /// wins, then a positive integer in the `RENAISSANCE_THREADS` environment variable,
    /// then [`std::thread::available_parallelism`].
    pub fn worker_count(&self) -> usize {
        if let Some(threads) = self.scenario.threads {
            return threads.max(1);
        }
        if let Some(threads) = std::env::var("RENAISSANCE_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
        {
            return threads;
        }
        // Host core count sizes the worker pool only: every seed is an independent
        // run and reports merge back in seed order, so the count never reaches
        // simulation state.
        // stancheck: allow(thread-identity) — worker-pool sizing only; bit-identity is enforced by the parallel==sequential property test
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The scoped-thread fan-out: workers pull the next seed index off a shared atomic
    /// counter and deposit the finished report into that index's slot, which preserves
    /// seed order without any cross-run coordination.
    fn run_parallel(&self, base: u64, runs: usize, workers: usize) -> Vec<RunReport> {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<RunReport>>> = (0..runs).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= runs {
                        break;
                    }
                    let run = self.run_seed(base + i as u64);
                    // A poisoned slot means another worker panicked mid-run; this
                    // slot's own report is still valid, so recover the guard.
                    *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(run);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    // stancheck: allow(unwrap-expect) — infallible by construction: thread::scope re-raises worker panics before this drain runs, so every claimed slot was filled
                    .expect("worker completed every claimed seed")
            })
            .collect()
    }

    /// Runs the scenario once with an explicit seed.
    pub fn run_seed(&self, seed: u64) -> RunReport {
        SingleRun::new(self.scenario, seed).execute()
    }
}

/// One agenda entry of the post-bootstrap phase. Offsets are relative to the bootstrap
/// instant; `order` breaks ties at equal offsets: workload ticks observe the pre-fault
/// state, then workloads finish, then fault batches fire.
struct AgendaItem {
    offset: SimDuration,
    order: u8,
    kind: AgendaKind,
}

enum AgendaKind {
    Tick { workload: usize, tick: WorkloadTick },
    Finish { workload: usize },
    Batch { index: usize },
}

struct SingleRun<'a> {
    sc: &'a Scenario,
    seed: u64,
    net: SdnNetwork,
    ctx: FaultContext,
    workloads: Vec<Box<dyn Workload>>,
    probe_series: Vec<ProbeSeries>,
    next_probe: Option<SimTime>,
    /// The run's logical clock: equals the simulator clock in live mode, advances
    /// virtually past the bootstrap instant in frozen mode.
    clock: SimTime,
    report: RunReport,
}

impl<'a> SingleRun<'a> {
    fn new(sc: &'a Scenario, seed: u64) -> Self {
        let topology = sc.topology.build(sc.controllers);
        let controller_config = sc.controller_config.unwrap_or_else(|| {
            ControllerConfig::for_network(topology.controller_count(), topology.switch_count())
        });
        let controller_config = match sc.tune {
            Some(tune) => tune(controller_config),
            None => controller_config,
        };
        let harness = sc.harness.with_seed(seed);
        let net = SdnNetwork::new(topology, controller_config, harness);
        let probe_series = sc
            .probes
            .iter()
            .map(|p| ProbeSeries::new(p.key().clone()))
            .collect();
        let next_probe = if sc.probes.is_empty() {
            None
        } else {
            Some(net.now())
        };
        SingleRun {
            sc,
            seed,
            net,
            ctx: FaultContext::new(seed),
            workloads: sc.workloads.iter().map(|factory| factory()).collect(),
            probe_series,
            next_probe,
            clock: SimTime::ZERO,
            report: RunReport {
                seed,
                ..RunReport::default()
            },
        }
    }

    fn execute(mut self) -> RunReport {
        let bootstrap = self.bootstrap();
        self.report.bootstrap_s = bootstrap.map(|d| d.as_secs_f64());
        if bootstrap.is_some() {
            self.post_bootstrap();
        }
        self.finalize()
    }

    /// Phase A: from the initial (empty-configuration) state to the first legitimate
    /// state. Semantically identical to `SdnNetwork::run_until_legitimate` — legitimacy
    /// is checked every `check_every` — with probe samples interleaved.
    fn bootstrap(&mut self) -> Option<SimDuration> {
        let started = self.net.now();
        let deadline = started + self.sc.timeout;
        loop {
            if self.net.is_legitimate() {
                return Some(self.net.now() - started);
            }
            if self.net.now() >= deadline {
                return None;
            }
            let target = self.net.now() + self.sc.check_every;
            self.advance_to(target, true);
        }
    }

    /// Phase B: workloads, scheduled faults, and recovery measurements, all relative to
    /// the bootstrap instant.
    fn post_bootstrap(&mut self) {
        let origin = self.net.now();
        let live = self.sc.control_plane == ControlPlane::Live;

        for workload in &mut self.workloads {
            workload.start(&mut self.net);
        }
        let agenda = self.build_agenda();
        let batches = self.sc.schedule.batches();

        let mut idx = 0usize;
        // Time of the fault batch we are currently measuring recovery for, plus the
        // instant of its next legitimacy check.
        let mut awaiting: Option<SimTime> = None;
        let mut next_check = SimTime::ZERO;
        loop {
            let agenda_at = agenda.get(idx).map(|item| origin + item.offset);
            // A check step carries the fault instant it is measuring recovery for, so
            // no later lookup into `awaiting` is needed (or can be wrong).
            let check_at = if live {
                awaiting.map(|since| (next_check, since))
            } else {
                None
            };
            let step = match (agenda_at, check_at) {
                (None, None) => break,
                (Some(a), Some((c, since))) if c <= a => Step::Check(c, since),
                (Some(a), _) => Step::Agenda(a),
                (None, Some((c, since))) => Step::Check(c, since),
            };
            match step {
                Step::Check(at, since) => {
                    self.advance_to(at, live);
                    if self.net.is_legitimate() {
                        self.report.recoveries.push(RecoveryRecord {
                            fault_at_s: (since - origin).as_secs_f64(),
                            recovered_in_s: Some((at - since).as_secs_f64()),
                        });
                        awaiting = None;
                    } else if at >= since + self.sc.timeout {
                        self.report.recoveries.push(RecoveryRecord {
                            fault_at_s: (since - origin).as_secs_f64(),
                            recovered_in_s: None,
                        });
                        awaiting = None;
                    } else {
                        next_check = at + self.sc.check_every;
                    }
                }
                Step::Agenda(at) => {
                    self.advance_to(at, live);
                    let item = &agenda[idx];
                    idx += 1;
                    match item.kind {
                        AgendaKind::Tick { workload, tick } => {
                            self.workloads[workload].tick(&mut self.net, tick);
                        }
                        AgendaKind::Finish { workload } => {
                            let report = self.workloads[workload].finish(&mut self.net);
                            self.report.workloads.push(report);
                        }
                        AgendaKind::Batch { index } => {
                            // A new batch interrupts any still-pending recovery wait.
                            if let Some(since) = awaiting.take() {
                                self.report.recoveries.push(RecoveryRecord {
                                    fault_at_s: (since - origin).as_secs_f64(),
                                    recovered_in_s: None,
                                });
                            }
                            let (offset, events) = &batches[index];
                            for event in events {
                                for description in self.ctx.apply(&mut self.net, event) {
                                    self.report.injected.push(InjectedFault {
                                        at_s: offset.as_secs_f64(),
                                        description,
                                    });
                                }
                            }
                            if live {
                                awaiting = Some(at);
                                next_check = at;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Builds the sorted post-bootstrap agenda from workload windows and fault batches.
    fn build_agenda(&self) -> Vec<AgendaItem> {
        let mut items = Vec::new();
        for (wi, workload) in self.workloads.iter().enumerate() {
            let interval = workload.tick_interval();
            assert!(
                !interval.is_zero(),
                "workload '{}' has a zero tick interval",
                workload.label()
            );
            let ticks = workload.duration().as_micros() / interval.as_micros();
            let mut offset = SimDuration::ZERO;
            for k in 1..=ticks {
                offset += interval;
                items.push(AgendaItem {
                    offset,
                    order: 0,
                    kind: AgendaKind::Tick {
                        workload: wi,
                        tick: WorkloadTick {
                            index: k as u32,
                            elapsed: offset,
                        },
                    },
                });
            }
            items.push(AgendaItem {
                offset,
                order: 1,
                kind: AgendaKind::Finish { workload: wi },
            });
        }
        for (bi, (offset, _)) in self.sc.schedule.batches().iter().enumerate() {
            items.push(AgendaItem {
                offset: *offset,
                order: 2,
                kind: AgendaKind::Batch { index: bi },
            });
        }
        items.sort_by_key(|item| (item.offset, item.order));
        items
    }

    /// Brings the run to `target`: samples every probe instant up to `target`, and (in
    /// live mode) advances the simulator. In frozen mode the simulator clock stands
    /// still and probe timestamps advance virtually.
    fn advance_to(&mut self, target: SimTime, live: bool) {
        while let Some(at) = self.next_probe {
            if at > target {
                break;
            }
            if live {
                self.net.run_until(at);
            }
            for (probe, series) in self.sc.probes.iter().zip(&mut self.probe_series) {
                series.push(at.as_secs_f64(), probe.sample(&self.net));
            }
            self.next_probe = Some(at + self.sc.sample_every);
        }
        if live {
            self.net.run_until(target);
        }
        self.clock = self.clock.max(target);
    }

    /// One last probe sample at the end of the run, so every series reflects the final
    /// state even when the run ends between two scheduled samples.
    fn sample_probes_at_end(&mut self) {
        if self.sc.probes.is_empty() {
            return;
        }
        let at = self.clock.as_secs_f64();
        if self.probe_series[0].times_s.last() == Some(&at) {
            return;
        }
        for (probe, series) in self.sc.probes.iter().zip(&mut self.probe_series) {
            series.push(at, probe.sample(&self.net));
        }
    }

    fn finalize(mut self) -> RunReport {
        self.sample_probes_at_end();
        for (key, f) in &self.sc.summaries {
            self.report.summaries.push((key.clone(), f(&self.net)));
        }
        self.report.probes = self.probe_series;
        self.report.final_legitimate = self.net.is_legitimate();
        self.report.total_rules = self.net.total_rules();
        self.report.max_rules_per_switch = self.net.max_rules_per_switch();
        self.report.messages_sent = self.net.metrics().total_sent();
        self.report.events_processed = self.net.sim().events_processed();
        self.report.sim_end_s = self.net.now().as_secs_f64();
        self.report.seed = self.seed;
        self.report
    }
}

enum Step {
    Agenda(SimTime),
    /// Legitimacy check at `.0`, measuring recovery from the fault at `.1`.
    Check(SimTime, SimTime),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{
        ControllerSelector, Endpoints, FaultEvent, LinkSelector, MetricKey, Namespace, Probe,
        Scenario, SwitchSelector,
    };
    use sdn_topology::builders;

    fn small(name: &str) -> crate::scenario::ScenarioBuilder {
        Scenario::builder(name)
            .topology(builders::ring(5, 2))
            .task_delay(SimDuration::from_millis(100))
            .check_every(SimDuration::from_millis(100))
            .timeout(SimDuration::from_secs(120))
    }

    #[test]
    fn bootstrap_only_scenario_measures_bootstrap() {
        let report = small("bootstrap").runs(2).run();
        assert_eq!(report.network, "Ring-5");
        assert_eq!(report.runs.len(), 2);
        assert!(report.all_converged());
        let digest = report.bootstrap_digest();
        assert_eq!(digest.len(), 2);
        assert!(digest.min() > 0.0);
        // Different seeds are recorded per run.
        assert_ne!(report.runs[0].seed, report.runs[1].seed);
    }

    #[test]
    fn scenario_matches_direct_harness_run() {
        // The runner's bootstrap must be bit-identical to the polling escape hatch.
        let report = small("parity").seeds_from(3).run();
        let topology = builders::ring(5, 2);
        let mut direct = SdnNetwork::new(
            topology,
            ControllerConfig::for_network(2, 5),
            crate::HarnessConfig::default()
                .with_task_delay(SimDuration::from_millis(100))
                .with_seed(3),
        );
        let elapsed = direct
            .run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("bootstrap");
        assert_eq!(report.runs[0].bootstrap_s, Some(elapsed.as_secs_f64()));
    }

    #[test]
    fn fault_batches_produce_recovery_records() {
        let report = small("controller-failure")
            .fault_at(
                SimDuration::ZERO,
                FaultEvent::FailController(ControllerSelector::Index(1)),
            )
            .run();
        let run = &report.runs[0];
        assert_eq!(run.recoveries.len(), 1);
        assert_eq!(run.recoveries[0].fault_at_s, 0.0);
        assert!(run.recoveries[0].recovered_in_s.unwrap() > 0.0);
        assert_eq!(run.injected.len(), 1);
        assert!(run.injected[0].description.contains("fail-stop controller"));
        assert!(run.final_legitimate);
    }

    #[test]
    fn temporary_link_failure_and_restore_are_two_batches() {
        let report = small("flap")
            .fault_at(
                SimDuration::ZERO,
                FaultEvent::FailLink(LinkSelector::RandomSafe { count: 1 }),
            )
            .fault_at(
                SimDuration::from_secs(30),
                FaultEvent::RestoreLastFailedLinks,
            )
            .run();
        let run = &report.runs[0];
        assert_eq!(run.recoveries.len(), 2);
        assert!(run.recoveries.iter().all(|r| r.recovered_in_s.is_some()));
        assert!(run.final_legitimate);
    }

    #[test]
    fn probes_sample_through_the_run() {
        let report = small("probed")
            .probe(Probe::legitimacy())
            .probe(Probe::total_rules())
            .sample_probes_every(SimDuration::from_millis(500))
            .fault_at(
                SimDuration::ZERO,
                FaultEvent::FailSwitch(SwitchSelector::Random),
            )
            .run();
        let run = &report.runs[0];
        let legitimacy = run
            .probe(&MetricKey::LEGITIMACY)
            .expect("legitimacy series");
        assert!(legitimacy.values.len() > 2);
        // First sample is at t=0 with an un-bootstrapped (illegitimate) network.
        assert_eq!(legitimacy.times_s[0], 0.0);
        assert_eq!(legitimacy.values[0], 0.0);
        // It ends legitimate after recovery.
        assert_eq!(legitimacy.last(), Some(1.0));
        let rules = run
            .probe(&MetricKey::TOTAL_RULES)
            .expect("total_rules series");
        assert!(rules.last().unwrap() > 0.0);
    }

    #[test]
    fn mid_path_removal_with_fixed_endpoints_recovers() {
        let report = small("mid-path")
            .fault_at(
                SimDuration::from_secs(2),
                FaultEvent::RemoveLink(LinkSelector::MidPath(Endpoints::FarthestSwitches)),
            )
            .run();
        let run = &report.runs[0];
        assert_eq!(run.injected.len(), 1);
        assert!(run.injected[0].description.contains("remove link"));
        assert!(run.recoveries[0].recovered_in_s.is_some());
    }

    #[test]
    fn frozen_control_plane_skips_recovery_tracking() {
        let report = small("frozen")
            .control_plane(ControlPlane::Frozen)
            .fault_at(
                SimDuration::from_secs(1),
                FaultEvent::RemoveLink(LinkSelector::RandomSafe { count: 1 }),
            )
            .run();
        let run = &report.runs[0];
        assert!(run.bootstrap_s.is_some());
        assert_eq!(run.injected.len(), 1);
        // No recovery record: the control plane never ran after the fault.
        assert!(run.recoveries.is_empty());
        // The simulated clock did not advance past the bootstrap instant.
        assert_eq!(run.sim_end_s, run.bootstrap_s.unwrap());
    }

    /// A scenario exercising every report channel: faults, probes, workloads, and
    /// summaries, over several seeds. Used to prove parallel/sequential bit-identity.
    fn determinism_scenario() -> crate::scenario::ScenarioBuilder {
        struct CountingWorkload {
            ticks: Vec<f64>,
        }
        impl crate::scenario::Workload for CountingWorkload {
            fn label(&self) -> String {
                "counting".to_string()
            }
            fn duration(&self) -> SimDuration {
                SimDuration::from_secs(3)
            }
            fn start(&mut self, _net: &mut SdnNetwork) {}
            fn tick(&mut self, net: &mut SdnNetwork, tick: crate::scenario::WorkloadTick) {
                self.ticks
                    .push(tick.index as f64 + net.total_rules() as f64);
            }
            fn finish(&mut self, _net: &mut SdnNetwork) -> crate::scenario::WorkloadReport {
                let mut report = crate::scenario::WorkloadReport::new("counting");
                report.push_series("ticks", std::mem::take(&mut self.ticks));
                report
            }
        }
        small("determinism")
            .runs(4)
            .seeds_from(17)
            .fault_at(
                SimDuration::from_secs(1),
                FaultEvent::FailController(ControllerSelector::Random { count: 1 }),
            )
            .fault_at(
                SimDuration::from_secs(2),
                FaultEvent::FailLink(LinkSelector::RandomSafe { count: 1 }),
            )
            .probe(Probe::legitimacy())
            .probe(Probe::total_rules())
            .sample_probes_every(SimDuration::from_millis(500))
            .workload(|| Box::new(CountingWorkload { ticks: Vec::new() }))
            .summary("live_switches", |net| net.live_switch_ids().len() as f64)
    }

    #[test]
    fn parallel_report_is_bit_identical_to_sequential() {
        // The tentpole guarantee: fanning seeds over worker threads must not change a
        // single bit of the aggregated report — same victims, recovery times, probe
        // series, workload series, and end state, merged in seed order.
        let sequential = determinism_scenario().threads(1).run();
        let parallel = determinism_scenario().threads(4).run();
        assert_eq!(sequential, parallel);
        // The typed digests derived from the reports inherit that bit-identity:
        // per-run values reduce in seed order regardless of worker count.
        assert_eq!(sequential.bootstrap_digest(), parallel.bootstrap_digest());
        assert_eq!(sequential.recovery_digest(), parallel.recovery_digest());
        let key = MetricKey::custom(Namespace::Scenario, "live_switches");
        assert_eq!(sequential.metric_digest(&key), parallel.metric_digest(&key));
        assert!(!parallel.metric_digest(&key).is_empty());
        assert_eq!(parallel.runs.len(), 4);
        let seeds: Vec<u64> = parallel.runs.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![17, 18, 19, 20], "reports merged in seed order");
        assert!(parallel.runs.iter().any(|r| !r.recoveries.is_empty()));
        assert!(parallel
            .runs
            .iter()
            .all(|r| r.workload("counting").is_some()));
    }

    /// A scenario over the whole gray-failure family: bursty asymmetric link
    /// degradation, a healing partition, a flapping link, and a quality restore.
    fn gray_scenario() -> crate::scenario::ScenarioBuilder {
        use crate::scenario::{DegradeSpec, PartitionSpec};
        small("gray-failure")
            .runs(3)
            .seeds_from(41)
            .fault_at(
                SimDuration::from_secs(1),
                FaultEvent::DegradeLink(LinkSelector::RandomSafe { count: 2 }, DegradeSpec::gray()),
            )
            .fault_at(
                SimDuration::from_secs(4),
                FaultEvent::Partition {
                    groups: PartitionSpec::Halves,
                    heal_after: Some(SimDuration::from_secs(8)),
                },
            )
            .fault_at(
                SimDuration::from_secs(16),
                FaultEvent::FlapLink {
                    selector: LinkSelector::RandomSafe { count: 1 },
                    period: SimDuration::from_secs(4),
                    count: 2,
                },
            )
            .fault_at(
                SimDuration::from_secs(26),
                FaultEvent::RestoreLinkQuality(LinkSelector::LastDegraded),
            )
            .probe(Probe::legitimacy())
            .sample_probes_every(SimDuration::from_millis(500))
    }

    #[test]
    fn gray_failure_report_is_bit_identical_across_threads_and_repeats() {
        // The satellite guarantee: the full ScenarioReport — fault victims,
        // recovery times, probe series — of a gray-failure scenario must not
        // change with the worker count or across repeated executions, because
        // burst links draw from per-link RNG streams.
        let sequential = gray_scenario().threads(1).run();
        let parallel = gray_scenario().threads(4).run();
        let repeat = gray_scenario().threads(4).run();
        assert_eq!(sequential, parallel);
        assert_eq!(parallel, repeat);
        // Sanity: the whole family actually fired.
        let injected: Vec<&str> = sequential.runs[0]
            .injected
            .iter()
            .map(|f| f.description.as_str())
            .collect();
        assert!(injected.iter().any(|d| d.starts_with("degrade link")));
        assert!(injected.iter().any(|d| d.starts_with("partition into")));
        assert!(injected.iter().any(|d| d.starts_with("heal partition")));
        assert!(injected.iter().any(|d| d.starts_with("flap link")));
        assert!(injected
            .iter()
            .any(|d| d.starts_with("restore link quality")));
        assert!(sequential.runs.iter().all(|r| r.bootstrap_s.is_some()));
        // Every fault batch produced a recovery record (converged or timed out).
        assert!(sequential.runs.iter().all(|r| !r.recoveries.is_empty()));
    }

    #[test]
    fn worker_count_prefers_explicit_threads() {
        let two = determinism_scenario().threads(2).build();
        assert_eq!(ScenarioRunner::new(&two).worker_count(), 2);
        // threads(0) clamps to one worker instead of deadlocking on zero.
        let zero = determinism_scenario().threads(0).build();
        assert_eq!(ScenarioRunner::new(&zero).worker_count(), 1);
        // Without an override the count comes from the environment/hardware: >= 1.
        let auto = determinism_scenario().build();
        assert!(ScenarioRunner::new(&auto).worker_count() >= 1);
    }

    #[test]
    fn more_workers_than_runs_is_fine() {
        let wide = small("wide").runs(2).seeds_from(5).threads(16).run();
        let narrow = small("narrow").runs(2).seeds_from(5).threads(1).run();
        assert_eq!(wide.runs.len(), 2);
        for (w, n) in wide.runs.iter().zip(&narrow.runs) {
            assert_eq!(w, n);
        }
    }

    #[test]
    fn summaries_are_evaluated_at_end_of_run() {
        let key = MetricKey::custom(Namespace::Scenario, "live_switches");
        let report = small("summarized")
            .summary(key.clone(), |net| net.live_switch_ids().len() as f64)
            .run();
        assert_eq!(report.runs[0].metric(&key), Some(5.0));
        assert_eq!(report.metric_digest(&key).mean(), 5.0);
        // The aggregate view exposes bootstrap plus every summary key.
        let digests = report.metric_digests();
        assert_eq!(digests[0].0, MetricKey::BOOTSTRAP_TIME);
        assert!(digests.iter().any(|(k, d)| k == &key && d.len() == 1));
    }
}
