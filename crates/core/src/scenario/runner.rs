//! The event-driven scenario executor.
//!
//! One [`ScenarioRunner`] run replaces the bespoke bootstrap/inject/poll loops the
//! experiment binaries used to hand-roll: a single agenda merges fault batches,
//! workload ticks, probe samples, and legitimacy checks, and the simulator is advanced
//! from one agenda instant to the next. Legitimacy is still evaluated on the
//! scenario's `check_every` cadence — measurement resolution is unchanged from the
//! polling days, so results are bit-identical with equal seeds (the scenario
//! regression test relies on this).

use super::report::{InjectedFault, RecoveryRecord, RunReport, ScenarioReport};
use super::schedule::FaultContext;
use super::workload::{Workload, WorkloadTick};
use super::{ControlPlane, ProbeSeries, Scenario};
use crate::config::ControllerConfig;
use crate::harness::SdnNetwork;
use sdn_netsim::{SimDuration, SimTime};

/// Executes a [`Scenario`] over its configured seeds.
pub struct ScenarioRunner<'a> {
    scenario: &'a Scenario,
}

impl<'a> ScenarioRunner<'a> {
    /// Creates a runner for `scenario`.
    pub fn new(scenario: &'a Scenario) -> Self {
        ScenarioRunner { scenario }
    }

    /// Runs every seed and aggregates the per-run reports.
    pub fn run(&self) -> ScenarioReport {
        let base = self.scenario.base_seed();
        let mut report = ScenarioReport {
            scenario: self.scenario.name.clone(),
            network: self.scenario.topology.label(),
            runs: Vec::with_capacity(self.scenario.runs),
        };
        for i in 0..self.scenario.runs {
            report.runs.push(self.run_seed(base + i as u64));
        }
        report
    }

    /// Runs the scenario once with an explicit seed.
    pub fn run_seed(&self, seed: u64) -> RunReport {
        SingleRun::new(self.scenario, seed).execute()
    }
}

/// One agenda entry of the post-bootstrap phase. Offsets are relative to the bootstrap
/// instant; `order` breaks ties at equal offsets: workload ticks observe the pre-fault
/// state, then workloads finish, then fault batches fire.
struct AgendaItem {
    offset: SimDuration,
    order: u8,
    kind: AgendaKind,
}

enum AgendaKind {
    Tick { workload: usize, tick: WorkloadTick },
    Finish { workload: usize },
    Batch { index: usize },
}

struct SingleRun<'a> {
    sc: &'a Scenario,
    seed: u64,
    net: SdnNetwork,
    ctx: FaultContext,
    workloads: Vec<Box<dyn Workload>>,
    probe_series: Vec<ProbeSeries>,
    next_probe: Option<SimTime>,
    /// The run's logical clock: equals the simulator clock in live mode, advances
    /// virtually past the bootstrap instant in frozen mode.
    clock: SimTime,
    report: RunReport,
}

impl<'a> SingleRun<'a> {
    fn new(sc: &'a Scenario, seed: u64) -> Self {
        let topology = sc.topology.build(sc.controllers);
        let controller_config = sc.controller_config.unwrap_or_else(|| {
            ControllerConfig::for_network(topology.controller_count(), topology.switch_count())
        });
        let controller_config = match sc.tune {
            Some(tune) => tune(controller_config),
            None => controller_config,
        };
        let harness = sc.harness.with_seed(seed);
        let net = SdnNetwork::new(topology, controller_config, harness);
        let probe_series = sc
            .probes
            .iter()
            .map(|p| ProbeSeries::new(p.name()))
            .collect();
        let next_probe = if sc.probes.is_empty() {
            None
        } else {
            Some(net.now())
        };
        SingleRun {
            sc,
            seed,
            net,
            ctx: FaultContext::new(seed),
            workloads: sc.workloads.iter().map(|factory| factory()).collect(),
            probe_series,
            next_probe,
            clock: SimTime::ZERO,
            report: RunReport {
                seed,
                ..RunReport::default()
            },
        }
    }

    fn execute(mut self) -> RunReport {
        let bootstrap = self.bootstrap();
        self.report.bootstrap_s = bootstrap.map(|d| d.as_secs_f64());
        if bootstrap.is_some() {
            self.post_bootstrap();
        }
        self.finalize()
    }

    /// Phase A: from the initial (empty-configuration) state to the first legitimate
    /// state. Semantically identical to `SdnNetwork::run_until_legitimate` — legitimacy
    /// is checked every `check_every` — with probe samples interleaved.
    fn bootstrap(&mut self) -> Option<SimDuration> {
        let started = self.net.now();
        let deadline = started + self.sc.timeout;
        loop {
            if self.net.is_legitimate() {
                return Some(self.net.now() - started);
            }
            if self.net.now() >= deadline {
                return None;
            }
            let target = self.net.now() + self.sc.check_every;
            self.advance_to(target, true);
        }
    }

    /// Phase B: workloads, scheduled faults, and recovery measurements, all relative to
    /// the bootstrap instant.
    fn post_bootstrap(&mut self) {
        let origin = self.net.now();
        let live = self.sc.control_plane == ControlPlane::Live;

        for workload in &mut self.workloads {
            workload.start(&mut self.net);
        }
        let agenda = self.build_agenda();
        let batches = self.sc.schedule.batches();

        let mut idx = 0usize;
        // Time of the fault batch we are currently measuring recovery for, plus the
        // instant of its next legitimacy check.
        let mut awaiting: Option<SimTime> = None;
        let mut next_check = SimTime::ZERO;
        loop {
            let agenda_at = agenda.get(idx).map(|item| origin + item.offset);
            let check_at = if live {
                awaiting.map(|_| next_check)
            } else {
                None
            };
            let step = match (agenda_at, check_at) {
                (None, None) => break,
                (Some(a), Some(c)) if c <= a => Step::Check(c),
                (Some(a), _) => Step::Agenda(a),
                (None, Some(c)) => Step::Check(c),
            };
            match step {
                Step::Check(at) => {
                    self.advance_to(at, live);
                    let since = awaiting.expect("check scheduled while not awaiting");
                    if self.net.is_legitimate() {
                        self.report.recoveries.push(RecoveryRecord {
                            fault_at_s: (since - origin).as_secs_f64(),
                            recovered_in_s: Some((at - since).as_secs_f64()),
                        });
                        awaiting = None;
                    } else if at >= since + self.sc.timeout {
                        self.report.recoveries.push(RecoveryRecord {
                            fault_at_s: (since - origin).as_secs_f64(),
                            recovered_in_s: None,
                        });
                        awaiting = None;
                    } else {
                        next_check = at + self.sc.check_every;
                    }
                }
                Step::Agenda(at) => {
                    self.advance_to(at, live);
                    let item = &agenda[idx];
                    idx += 1;
                    match item.kind {
                        AgendaKind::Tick { workload, tick } => {
                            self.workloads[workload].tick(&mut self.net, tick);
                        }
                        AgendaKind::Finish { workload } => {
                            let report = self.workloads[workload].finish(&mut self.net);
                            self.report.workloads.push(report);
                        }
                        AgendaKind::Batch { index } => {
                            // A new batch interrupts any still-pending recovery wait.
                            if let Some(since) = awaiting.take() {
                                self.report.recoveries.push(RecoveryRecord {
                                    fault_at_s: (since - origin).as_secs_f64(),
                                    recovered_in_s: None,
                                });
                            }
                            let (offset, events) = &batches[index];
                            for event in events {
                                for description in self.ctx.apply(&mut self.net, event) {
                                    self.report.injected.push(InjectedFault {
                                        at_s: offset.as_secs_f64(),
                                        description,
                                    });
                                }
                            }
                            if live {
                                awaiting = Some(at);
                                next_check = at;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Builds the sorted post-bootstrap agenda from workload windows and fault batches.
    fn build_agenda(&self) -> Vec<AgendaItem> {
        let mut items = Vec::new();
        for (wi, workload) in self.workloads.iter().enumerate() {
            let interval = workload.tick_interval();
            assert!(
                !interval.is_zero(),
                "workload '{}' has a zero tick interval",
                workload.label()
            );
            let ticks = workload.duration().as_micros() / interval.as_micros();
            let mut offset = SimDuration::ZERO;
            for k in 1..=ticks {
                offset += interval;
                items.push(AgendaItem {
                    offset,
                    order: 0,
                    kind: AgendaKind::Tick {
                        workload: wi,
                        tick: WorkloadTick {
                            index: k as u32,
                            elapsed: offset,
                        },
                    },
                });
            }
            items.push(AgendaItem {
                offset,
                order: 1,
                kind: AgendaKind::Finish { workload: wi },
            });
        }
        for (bi, (offset, _)) in self.sc.schedule.batches().iter().enumerate() {
            items.push(AgendaItem {
                offset: *offset,
                order: 2,
                kind: AgendaKind::Batch { index: bi },
            });
        }
        items.sort_by_key(|item| (item.offset, item.order));
        items
    }

    /// Brings the run to `target`: samples every probe instant up to `target`, and (in
    /// live mode) advances the simulator. In frozen mode the simulator clock stands
    /// still and probe timestamps advance virtually.
    fn advance_to(&mut self, target: SimTime, live: bool) {
        while let Some(at) = self.next_probe {
            if at > target {
                break;
            }
            if live {
                self.net.run_until(at);
            }
            for (probe, series) in self.sc.probes.iter().zip(&mut self.probe_series) {
                series.push(at.as_secs_f64(), probe.sample(&self.net));
            }
            self.next_probe = Some(at + self.sc.sample_every);
        }
        if live {
            self.net.run_until(target);
        }
        self.clock = self.clock.max(target);
    }

    /// One last probe sample at the end of the run, so every series reflects the final
    /// state even when the run ends between two scheduled samples.
    fn sample_probes_at_end(&mut self) {
        if self.sc.probes.is_empty() {
            return;
        }
        let at = self.clock.as_secs_f64();
        if self.probe_series[0].times_s.last() == Some(&at) {
            return;
        }
        for (probe, series) in self.sc.probes.iter().zip(&mut self.probe_series) {
            series.push(at, probe.sample(&self.net));
        }
    }

    fn finalize(mut self) -> RunReport {
        self.sample_probes_at_end();
        for (name, f) in &self.sc.summaries {
            self.report.summaries.push((name.clone(), f(&self.net)));
        }
        self.report.probes = self.probe_series;
        self.report.final_legitimate = self.net.is_legitimate();
        self.report.total_rules = self.net.total_rules();
        self.report.max_rules_per_switch = self.net.max_rules_per_switch();
        self.report.messages_sent = self.net.metrics().total_sent();
        self.report.sim_end_s = self.net.now().as_secs_f64();
        self.report.seed = self.seed;
        self.report
    }
}

enum Step {
    Agenda(SimTime),
    Check(SimTime),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{
        ControllerSelector, Endpoints, FaultEvent, LinkSelector, Probe, Scenario, SwitchSelector,
    };
    use sdn_topology::builders;

    fn small(name: &str) -> crate::scenario::ScenarioBuilder {
        Scenario::builder(name)
            .topology(builders::ring(5, 2))
            .task_delay(SimDuration::from_millis(100))
            .check_every(SimDuration::from_millis(100))
            .timeout(SimDuration::from_secs(120))
    }

    #[test]
    fn bootstrap_only_scenario_measures_bootstrap() {
        let report = small("bootstrap").runs(2).run();
        assert_eq!(report.network, "Ring-5");
        assert_eq!(report.runs.len(), 2);
        assert!(report.all_converged());
        let samples = report.bootstrap_samples();
        assert_eq!(samples.len(), 2);
        assert!(samples.min() > 0.0);
        // Different seeds are recorded per run.
        assert_ne!(report.runs[0].seed, report.runs[1].seed);
    }

    #[test]
    fn scenario_matches_direct_harness_run() {
        // The runner's bootstrap must be bit-identical to the polling escape hatch.
        let report = small("parity").seeds_from(3).run();
        let topology = builders::ring(5, 2);
        let mut direct = SdnNetwork::new(
            topology,
            ControllerConfig::for_network(2, 5),
            crate::HarnessConfig::default()
                .with_task_delay(SimDuration::from_millis(100))
                .with_seed(3),
        );
        let elapsed = direct
            .run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
            .expect("bootstrap");
        assert_eq!(report.runs[0].bootstrap_s, Some(elapsed.as_secs_f64()));
    }

    #[test]
    fn fault_batches_produce_recovery_records() {
        let report = small("controller-failure")
            .fault_at(
                SimDuration::ZERO,
                FaultEvent::FailController(ControllerSelector::Index(1)),
            )
            .run();
        let run = &report.runs[0];
        assert_eq!(run.recoveries.len(), 1);
        assert_eq!(run.recoveries[0].fault_at_s, 0.0);
        assert!(run.recoveries[0].recovered_in_s.unwrap() > 0.0);
        assert_eq!(run.injected.len(), 1);
        assert!(run.injected[0].description.contains("fail-stop controller"));
        assert!(run.final_legitimate);
    }

    #[test]
    fn temporary_link_failure_and_restore_are_two_batches() {
        let report = small("flap")
            .fault_at(
                SimDuration::ZERO,
                FaultEvent::FailLink(LinkSelector::RandomSafe { count: 1 }),
            )
            .fault_at(
                SimDuration::from_secs(30),
                FaultEvent::RestoreLastFailedLinks,
            )
            .run();
        let run = &report.runs[0];
        assert_eq!(run.recoveries.len(), 2);
        assert!(run.recoveries.iter().all(|r| r.recovered_in_s.is_some()));
        assert!(run.final_legitimate);
    }

    #[test]
    fn probes_sample_through_the_run() {
        let report = small("probed")
            .probe(Probe::legitimacy())
            .probe(Probe::total_rules())
            .sample_probes_every(SimDuration::from_millis(500))
            .fault_at(
                SimDuration::ZERO,
                FaultEvent::FailSwitch(SwitchSelector::Random),
            )
            .run();
        let run = &report.runs[0];
        let legitimacy = run.probe("legitimacy").expect("legitimacy series");
        assert!(legitimacy.values.len() > 2);
        // First sample is at t=0 with an un-bootstrapped (illegitimate) network.
        assert_eq!(legitimacy.times_s[0], 0.0);
        assert_eq!(legitimacy.values[0], 0.0);
        // It ends legitimate after recovery.
        assert_eq!(legitimacy.last(), Some(1.0));
        let rules = run.probe("total_rules").expect("total_rules series");
        assert!(rules.last().unwrap() > 0.0);
    }

    #[test]
    fn mid_path_removal_with_fixed_endpoints_recovers() {
        let report = small("mid-path")
            .fault_at(
                SimDuration::from_secs(2),
                FaultEvent::RemoveLink(LinkSelector::MidPath(Endpoints::FarthestSwitches)),
            )
            .run();
        let run = &report.runs[0];
        assert_eq!(run.injected.len(), 1);
        assert!(run.injected[0].description.contains("remove link"));
        assert!(run.recoveries[0].recovered_in_s.is_some());
    }

    #[test]
    fn frozen_control_plane_skips_recovery_tracking() {
        let report = small("frozen")
            .control_plane(ControlPlane::Frozen)
            .fault_at(
                SimDuration::from_secs(1),
                FaultEvent::RemoveLink(LinkSelector::RandomSafe { count: 1 }),
            )
            .run();
        let run = &report.runs[0];
        assert!(run.bootstrap_s.is_some());
        assert_eq!(run.injected.len(), 1);
        // No recovery record: the control plane never ran after the fault.
        assert!(run.recoveries.is_empty());
        // The simulated clock did not advance past the bootstrap instant.
        assert_eq!(run.sim_end_s, run.bootstrap_s.unwrap());
    }

    #[test]
    fn summaries_are_evaluated_at_end_of_run() {
        let report = small("summarized")
            .summary("live_switches", |net| net.live_switch_ids().len() as f64)
            .run();
        assert_eq!(report.runs[0].summary("live_switches"), Some(5.0));
        assert_eq!(report.summary_samples("live_switches").mean(), 5.0);
    }
}
